"""Command-line interface for the P-Store reproduction.

Subcommands
-----------
``generate``
    write a synthetic B2W-like load trace to CSV;
``predict``
    fit SPAR (or a baseline) on a trace and print a forecast;
``plan``
    forecast and run the DP planner, printing the move schedule;
``simulate``
    run the fast capacity simulator for a provisioning strategy;
``experiment``
    run one of the paper's experiments (``--list`` enumerates them, and
    ``--jobs N`` executes the experiment's cell grid through the cached
    sweep executor instead of the serial runner);
``sweep``
    execute an experiment's cell grid across a worker pool with
    content-addressed result caching — re-runs only execute dirty cells
    and interrupted sweeps resume for free (see docs/API.md);
``chaos``
    run a fault-injection scenario (node crashes, stalled transfers,
    forecast drift, ...) against the benchmark and report SLA violations
    and recovery times per strategy (see docs/FAULTS.md);
``check``
    run the correctness harness: the simulated-time lint, the runtime
    invariant tiers, and the cross-engine differential suites (see
    docs/CORRECTNESS.md);
``explain``
    render the causal post-mortem of a recorded run: walk the
    ``chronicle.jsonl`` flight recorder and attribute every
    SLA-violating interval to a fault, migration overhead, an
    under-forecast, or thin planner headroom (see docs/OBSERVABILITY.md).

Run ``pstore <subcommand> --help`` for options.

Every subcommand accepts ``-v/--verbose`` and ``--quiet`` (wired to the
root logging level; results go to stdout, diagnostics to stderr) and
``--telemetry-out DIR``, which records the run's metrics, spans,
events, and causal chronicle and writes ``events.jsonl``,
``spans.jsonl``, ``chronicle.jsonl``, ``metrics.json``, and
``metrics.prom`` into DIR (see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import List, Optional

import numpy as np

from . import PStoreConfig, api, default_config
from .analysis import ascii_table, series_block
from .config import parse_set_overrides
from .core import Planner
from .errors import InfeasiblePlanError, PStoreError
from .telemetry import (
    disable_telemetry,
    enable_telemetry,
    export_run,
    get_telemetry,
    render_dashboard,
)
from .workload import b2w_like_trace
from .workload.io import read_trace_csv, write_trace_csv

logger = logging.getLogger(__name__)


def _common_options() -> argparse.ArgumentParser:
    """Options shared by every subcommand (logging + telemetry)."""
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="increase log verbosity (-v info, -vv debug)",
    )
    common.add_argument(
        "--quiet", action="store_true",
        help="only log errors (overrides --verbose)",
    )
    common.add_argument(
        "--telemetry-out", metavar="DIR", default=None,
        help="record telemetry and write events.jsonl / spans.jsonl / "
        "chronicle.jsonl / metrics.json / metrics.prom into DIR",
    )
    return common


def _setup_logging(args) -> None:
    if args.quiet:
        level = logging.ERROR
    elif args.verbose >= 2:
        level = logging.DEBUG
    elif args.verbose == 1:
        level = logging.INFO
    else:
        level = logging.WARNING
    logging.basicConfig(
        level=level, stream=sys.stderr, format="%(levelname)s %(name)s: %(message)s"
    )
    logging.getLogger().setLevel(level)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pstore",
        description="P-Store: predictive elastic provisioning (SIGMOD'18 reproduction)",
    )
    common = _common_options()
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", parents=[common],
                         help="write a synthetic load trace to CSV")
    gen.add_argument("output", help="output CSV path")
    gen.add_argument("--days", type=int, default=35)
    gen.add_argument("--slot-seconds", type=float, default=300.0)
    gen.add_argument("--seed", type=int, default=7)
    gen.add_argument(
        "--peak-tps",
        type=float,
        default=1450.0,
        help="approximate daily peak in txn/s",
    )

    pred = sub.add_parser("predict", parents=[common],
                          help="forecast a trace with SPAR")
    pred.add_argument("trace", help="input CSV (see `generate`)")
    pred.add_argument("--model", choices=("spar", "arma", "ar"), default="spar")
    pred.add_argument("--train-days", type=int, default=28)
    pred.add_argument("--horizon", type=int, default=12, help="slots ahead")

    plan = sub.add_parser("plan", parents=[common],
                          help="plan reconfigurations for a trace")
    plan.add_argument("trace", help="input CSV")
    plan.add_argument("--config", default=None,
                      help="JSON config file (see PStoreConfig.from_file)")
    plan.add_argument("--train-days", type=int, default=28)
    plan.add_argument("--machines", type=int, default=0,
                      help="current cluster size (0 = fit to current load)")
    plan.add_argument("--horizon", type=int, default=12)

    sim = sub.add_parser("simulate", parents=[common],
                         help="capacity-simulate a strategy")
    sim.add_argument(
        "strategy",
        help="p-store | reactive | static:<N> | simple:<day>/<night>",
    )
    sim.add_argument("--days", type=int, default=14)
    sim.add_argument("--seed", type=int, default=7)
    sim.add_argument("--peak-tps", type=float, default=1450.0)

    exp = sub.add_parser("experiment", parents=[common],
                         help="run a paper experiment")
    exp.add_argument(
        "name", nargs="?", default=None,
        help="experiment id (see --list; heavy experiments warn at "
        "default scale)",
    )
    exp.add_argument(
        "--list", action="store_true", dest="list_experiments",
        help="enumerate the registered experiments and exit",
    )
    exp.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run the experiment's cell grid through the cached sweep "
        "executor with N workers instead of the serial runner",
    )

    swp = sub.add_parser(
        "sweep", parents=[common],
        help="run an experiment's cell grid with caching and workers",
    )
    swp.add_argument("name", help="experiment id (see `experiment --list`)")
    swp.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="worker processes (1 = in-process serial)")
    swp.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache directory (default: .pstore-cache, or "
        "$PSTORE_CACHE_DIR)",
    )
    swp.add_argument(
        "--out", default=None, metavar="DIR",
        help="write manifest.json plus merged events.jsonl and "
        "chronicle.jsonl into DIR",
    )
    swp.add_argument(
        "--force", action="store_true",
        help="re-execute every cell even when cached",
    )
    swp.add_argument(
        "--config", default=None,
        help="JSON config file (see PStoreConfig.from_sources)",
    )
    swp.add_argument(
        "--set", action="append", default=None, metavar="KEY=VALUE",
        dest="overrides",
        help="config override (repeatable, dotted keys allowed, e.g. "
        "--set q=300 --set faults.seed=9)",
    )

    chaos = sub.add_parser(
        "chaos", parents=[common],
        help="inject a fault scenario and report SLA impact + recovery",
    )
    chaos.add_argument(
        "scenario", nargs="?", default=None,
        help="scenario JSON file (default: the built-in "
        "crash-during-migration drill; see docs/FAULTS.md)",
    )
    chaos.add_argument("--days", type=int, default=1,
                       help="evaluation days of benchmark load")
    chaos.add_argument("--seed", type=int, default=21, help="workload seed")
    chaos.add_argument(
        "--no-reactive", action="store_true",
        help="skip the reactive-baseline comparison run",
    )

    check = sub.add_parser(
        "check", parents=[common],
        help="run invariants, differential suites, and the sim-time lint",
    )
    check.add_argument(
        "--level", choices=("cheap", "expensive"), default="expensive",
        help="invariant tier active during the differential runs "
        "(default: expensive)",
    )
    check.add_argument(
        "--suite", action="append", choices=("fast-path", "engines", "migration"),
        default=None, metavar="NAME",
        help="differential suite(s) to run (repeatable; default: all)",
    )
    check.add_argument(
        "--seconds", type=int, default=900,
        help="trace length for the fast-path differential",
    )
    check.add_argument(
        "--skip-lint", action="store_true",
        help="skip the AST lint over the repro package",
    )
    check.add_argument(
        "--inject", choices=("drop-bucket", "perturb-fast-path"), default=None,
        help="deliberately corrupt one path to verify the harness "
        "catches it (the command must then exit nonzero)",
    )

    explain = sub.add_parser(
        "explain", parents=[common],
        help="causal post-mortem of a recorded run's chronicle",
    )
    explain.add_argument(
        "run_dir",
        help="run directory written with --telemetry-out (or a sweep "
        "--out manifest directory, or a chronicle.jsonl path)",
    )
    explain.add_argument(
        "--window", default=None, metavar="T0:T1",
        help="only explain violations/reconfigurations with simulated "
        "time in [T0, T1] seconds (chains still render whole)",
    )
    explain.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the machine-readable report instead of text",
    )
    return parser


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------


def _cmd_generate(args) -> int:
    trace = b2w_like_trace(
        n_days=args.days,
        slot_seconds=args.slot_seconds,
        seed=args.seed,
        base_level=args.peak_tps * args.slot_seconds,
    )
    write_trace_csv(trace, args.output)
    print(f"wrote {trace.describe()} to {args.output}")
    return 0


def _fit_model(name: str, values: np.ndarray, period: int, train_slots: int):
    return api.fit_predictor(name, values[:train_slots], period=period)


def _cmd_predict(args) -> int:
    trace = read_trace_csv(args.trace)
    period = trace.slots_per_day
    train_slots = args.train_days * period
    if train_slots >= len(trace):
        print(
            f"error: trace has {len(trace)} slots; cannot train on "
            f"{args.train_days} days",
            file=sys.stderr,
        )
        return 2
    values = trace.as_rate_per_second()
    logger.info("fitting %s on %d slots (%d days)", args.model, train_slots,
                args.train_days)
    with get_telemetry().tracer.span(
        "predict.forecast", model=args.model, horizon=args.horizon
    ) as span:
        model = _fit_model(args.model, values, period, train_slots)
        forecast = model.predict_horizon(values, args.horizon)
        span.set("predicted_next", float(forecast[0]))
    print(series_block("history (txn/s)", values[-3 * period :]))
    rows = [
        (i + 1, f"{v:,.1f}") for i, v in enumerate(forecast)
    ]
    print(ascii_table(["slots ahead", "forecast txn/s"], rows,
                      title=f"{args.model.upper()} forecast"))
    return 0


def _cmd_plan(args) -> int:
    config = (
        PStoreConfig.from_file(args.config) if args.config else default_config()
    )
    trace = read_trace_csv(args.trace)
    config = config.with_interval(trace.slot_seconds)
    period = trace.slots_per_day
    train_slots = args.train_days * period
    values = trace.as_rate_per_second()
    if train_slots >= len(trace):
        print("error: not enough data after the training window", file=sys.stderr)
        return 2
    logger.info("fitting SPAR on %d slots, planning %d ahead", train_slots,
                args.horizon)
    with get_telemetry().tracer.span(
        "predict.forecast", model="spar", horizon=args.horizon
    ) as span:
        model = _fit_model("spar", values, period, train_slots)
        forecast = model.predict_horizon(values, args.horizon)
        span.set("predicted_next", float(forecast[0]))
    inflated = forecast * config.prediction_inflation
    current_load = float(values[-1])
    machines = args.machines or config.servers_for_load(current_load * 1.1)

    print(f"current load {current_load:,.0f} txn/s on {machines} machines")
    try:
        with get_telemetry().tracer.span(
            "plan.dp", machines=machines, horizon=args.horizon
        ) as span:
            schedule = Planner(config).plan(
                list(inflated), machines, current_load=current_load
            )
            span.set(
                "n_moves", sum(1 for m in schedule.moves if not m.is_noop)
            )
    except InfeasiblePlanError as infeasible:
        print(
            f"no feasible plan: scale out reactively to "
            f"{infeasible.required_machines} machines"
        )
        return 1
    print(schedule.describe())
    first = schedule.first_real_move
    if first is None:
        print("=> no reconfiguration needed within the horizon")
    else:
        direction = "out" if first.is_scale_out else "in"
        print(
            f"=> first move: scale {direction} {first.before} -> "
            f"{first.after} starting at interval {first.start}"
        )
    return 0


def _cmd_simulate(args) -> int:
    logger.info("simulating %s for %d days (seed %d)", args.strategy,
                args.days, args.seed)
    result = api.run(
        strategy=args.strategy,
        days=args.days,
        seed=args.seed,
        peak_tps=args.peak_tps,
    )
    detail = result.detail
    print(series_block("load (txn/s)", detail.load_tps))
    print(series_block("machines", detail.machines))
    print()
    print(detail.summary())
    return 0


def _cmd_experiment(args) -> int:
    from .experiments.registry import get_experiment, list_experiments

    if args.list_experiments:
        rows = [
            (
                defn.name,
                "grid" if defn.has_grid else "-",
                "heavy" if defn.heavy else "",
                defn.title,
            )
            for defn in list_experiments()
        ]
        print(ascii_table(
            ["id", "cells", "scale", "title"], rows,
            title="registered experiments",
        ))
        return 0
    if args.name is None:
        print("error: give an experiment id or --list", file=sys.stderr)
        return 2
    defn = get_experiment(args.name)
    if args.jobs > 1:
        if not defn.has_grid:
            print(
                f"error: experiment {defn.name!r} declares no cell grid; "
                "run it without --jobs",
                file=sys.stderr,
            )
            return 2
        result = api.sweep(args.name, jobs=args.jobs)
        for label in sorted(result.payloads):
            print(f"{label}: {_payload_line(result.payloads[label])}")
        print()
        print(result.summary())
        return 0
    if defn.heavy:
        logger.warning(
            "experiment %s runs minutes at default scale", defn.name
        )
    result = defn.run()
    print(defn.render(result))
    return 0


def _payload_line(payload) -> str:
    """One compact line for a cell payload (skip the digest blobs)."""
    if not isinstance(payload, dict):
        return str(payload)
    parts = []
    for key, value in payload.items():
        if key in ("series_sha", "chronicle", "rows", "points"):
            continue
        if isinstance(value, float):
            parts.append(f"{key}={value:.4g}")
        elif isinstance(value, (str, int, bool)):
            parts.append(f"{key}={value}")
    return " ".join(parts)


def _cmd_sweep(args) -> int:
    config = PStoreConfig.from_sources(
        file=args.config,
        overrides=parse_set_overrides(args.overrides or []),
    )
    logger.info("sweeping %s with %d job(s)", args.name, args.jobs)
    result = api.sweep(
        args.name,
        config=config,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        force=args.force,
        record_events=bool(args.out),
    )
    for label in sorted(result.payloads):
        print(f"{label}: {_payload_line(result.payloads[label])}")
    print()
    print(result.summary())
    if args.out:
        paths = result.detail.write_manifest(args.out)
        for kind, path in sorted(paths.items()):
            logger.info("wrote %s -> %s", kind, path)
    return 0


def _cmd_chaos(args) -> int:
    from .experiments.chaos import run_chaos
    from .faults import FaultScenario

    scenario = (
        FaultScenario.from_file(args.scenario) if args.scenario else None
    )
    logger.info("running chaos scenario over %d eval day(s)", args.days)
    result = run_chaos(
        scenario=scenario,
        eval_days=args.days,
        seed=args.seed,
        include_reactive=not args.no_reactive,
    )

    scenario = result.scenario
    print(f"scenario: {scenario.name} "
          f"({len(scenario)} faults, seed {scenario.seed})")
    for spec in scenario.faults:
        trigger = (
            f"t={spec.at_time:,.0f}s"
            if spec.at_time is not None
            else f"migration #{spec.on_migration}"
        )
        label = f" [{spec.label}]" if spec.label else ""
        print(f"  - {spec.kind} @ {trigger}{label}")
    print()

    violation_rows = result.violation_rows()
    quantiles = sorted(next(iter(violation_rows.values())))
    rows = [
        (label, *(violations[q] for q in quantiles))
        for label, violations in violation_rows.items()
    ]
    print(ascii_table(
        ["strategy"] + [f"p{int(q)} viol s" for q in quantiles],
        rows,
        title="SLA violation seconds",
    ))

    for label, run in result.runs.items():
        print()
        print(f"[{label}] avg machines {run.result.average_machines:.2f}, "
              f"{run.result.moves_started} moves, "
              f"{run.result.emergencies} emergency")
        print(run.report())
    print()
    print(f"converged: {'yes' if result.all_converged else 'NO'}")
    return 0 if result.all_converged else 1


def _cmd_check(args) -> int:
    from .check import check_scope, differential
    from .check import lint as lint_mod

    failures = 0
    if not args.skip_lint:
        issues = lint_mod.lint_package()
        for issue in issues:
            print(f"lint: {issue}", file=sys.stderr)
        if issues:
            failures += len(issues)
        else:
            print("lint: ok")

    suites = args.suite or list(differential.SUITES)
    logger.info("running differential suites %s at level %s", suites, args.level)
    with check_scope(args.level):
        report = differential.run_suite(
            suites=suites, seconds=args.seconds, inject=args.inject
        )
    print(report.describe())
    failures += len(report.failures)
    if failures:
        print(f"error: {failures} check(s) failed", file=sys.stderr)
        return 1
    print("all checks passed")
    return 0


def _parse_window(spec: Optional[str]):
    """``T0:T1`` -> (float, float); None passes through."""
    if spec is None:
        return None
    parts = spec.split(":")
    if len(parts) != 2:
        raise PStoreError(
            f"--window wants T0:T1 (seconds), got {spec!r}"
        )
    try:
        return float(parts[0]), float(parts[1])
    except ValueError:
        raise PStoreError(
            f"--window bounds must be numbers, got {spec!r}"
        ) from None


def _cmd_explain(args) -> int:
    import json as json_mod

    from .analysis import explain_run, render_explain

    report = explain_run(args.run_dir, window=_parse_window(args.window))
    if args.as_json:
        print(json_mod.dumps(report.to_dict(), indent=1, sort_keys=True))
    else:
        print(render_explain(report), end="")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "predict": _cmd_predict,
    "plan": _cmd_plan,
    "simulate": _cmd_simulate,
    "experiment": _cmd_experiment,
    "sweep": _cmd_sweep,
    "chaos": _cmd_chaos,
    "check": _cmd_check,
    "explain": _cmd_explain,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    _setup_logging(args)
    recording = bool(args.telemetry_out)
    if recording:
        enable_telemetry()
        logger.info("telemetry enabled, artifacts will go to %s",
                    args.telemetry_out)
    try:
        try:
            code = _COMMANDS[args.command](args)
        except (PStoreError, OSError) as error:
            # Expected failure modes (bad inputs, missing files, invalid
            # configs) exit nonzero with one line, not a traceback.
            print(f"error: {error}", file=sys.stderr)
            code = 1
        if recording:
            tel = get_telemetry()
            try:
                paths = export_run(tel, args.telemetry_out)
                for kind, path in sorted(paths.items()):
                    logger.info("wrote %s -> %s", kind, path)
                if args.command == "simulate" and code == 0:
                    print()
                    print(render_dashboard(tel))
            except OSError as error:
                print(
                    f"error: cannot write telemetry to "
                    f"{args.telemetry_out}: {error}",
                    file=sys.stderr,
                )
                code = code or 1
        return code
    finally:
        if recording:
            disable_telemetry()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
