"""Command-line interface for the P-Store reproduction.

Subcommands
-----------
``generate``
    write a synthetic B2W-like load trace to CSV;
``predict``
    fit SPAR (or a baseline) on a trace and print a forecast;
``plan``
    forecast and run the DP planner, printing the move schedule;
``simulate``
    run the fast capacity simulator for a provisioning strategy;
``experiment``
    run one of the paper's experiments (``--list`` enumerates them, and
    ``--jobs N`` executes the experiment's cell grid through the cached
    sweep executor instead of the serial runner);
``sweep``
    execute an experiment's cell grid across a worker pool with
    content-addressed result caching — re-runs only execute dirty cells
    and interrupted sweeps resume for free (see docs/API.md);
``chaos``
    run a fault-injection scenario (node crashes, stalled transfers,
    forecast drift, ...) against the benchmark and report SLA violations
    and recovery times per strategy (see docs/FAULTS.md);
``check``
    run the correctness harness: the simulated-time lint, the runtime
    invariant tiers, and the cross-engine differential suites (see
    docs/CORRECTNESS.md);
``explain``
    render the causal post-mortem of a recorded run: walk the
    ``chronicle.jsonl`` flight recorder and attribute every
    SLA-violating interval to a fault, migration overhead, an
    under-forecast, or thin planner headroom (see docs/OBSERVABILITY.md);
``serve``
    run the always-on control plane: ingest a live load-report stream
    (trace replay, newline-JSON stdin/file, or TCP), refit and re-plan
    online with accuracy-triggered fallback, optionally serve
    ``/status`` + ``/metrics`` over HTTP, and flush a full run directory
    on SIGINT (see docs/SERVICE.md);
``cache``
    manage the sweep result cache (``cache gc`` evicts by age/size and
    reports reclaimed bytes).

Run ``pstore <subcommand> --help`` for options.

Every subcommand accepts ``-v/--verbose`` and ``--quiet`` (wired to the
root logging level; results go to stdout, diagnostics to stderr) and
``--telemetry-out DIR``, which records the run's metrics, spans,
events, and causal chronicle and writes ``events.jsonl``,
``spans.jsonl``, ``chronicle.jsonl``, ``metrics.json``, and
``metrics.prom`` into DIR (see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import List, Optional

import numpy as np

from . import PStoreConfig, api, default_config
from .analysis import ascii_table, series_block
from .config import parse_set_overrides
from .core import Planner
from .errors import InfeasiblePlanError, PStoreError
from .telemetry import (
    disable_telemetry,
    enable_telemetry,
    export_run,
    get_telemetry,
    render_dashboard,
)
from .prediction import get_predictor_spec, registered_predictors
from .workload import b2w_like_trace
from .workload.io import read_trace_csv, write_trace_csv

logger = logging.getLogger(__name__)


def _forecast_model_choices() -> tuple:
    """Registry predictors buildable from a bare history series (the
    oracle needs the future, so the CLI cannot offer it)."""
    return tuple(
        name
        for name in registered_predictors()
        if not get_predictor_spec(name).needs_truth
    )


def _common_options() -> argparse.ArgumentParser:
    """Options shared by every subcommand (logging + telemetry)."""
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="increase log verbosity (-v info, -vv debug)",
    )
    common.add_argument(
        "--quiet", action="store_true",
        help="only log errors (overrides --verbose)",
    )
    common.add_argument(
        "--telemetry-out", metavar="DIR", default=None,
        help="record telemetry and write events.jsonl / spans.jsonl / "
        "chronicle.jsonl / metrics.json / metrics.prom into DIR",
    )
    return common


def _setup_logging(args) -> None:
    if args.quiet:
        level = logging.ERROR
    elif args.verbose >= 2:
        level = logging.DEBUG
    elif args.verbose == 1:
        level = logging.INFO
    else:
        level = logging.WARNING
    logging.basicConfig(
        level=level, stream=sys.stderr, format="%(levelname)s %(name)s: %(message)s"
    )
    logging.getLogger().setLevel(level)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pstore",
        description="P-Store: predictive elastic provisioning (SIGMOD'18 reproduction)",
    )
    common = _common_options()
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", parents=[common],
                         help="write a synthetic load trace to CSV")
    gen.add_argument("output", help="output CSV path")
    gen.add_argument("--days", type=int, default=35)
    gen.add_argument("--slot-seconds", type=float, default=300.0)
    gen.add_argument("--seed", type=int, default=7)
    gen.add_argument(
        "--peak-tps",
        type=float,
        default=1450.0,
        help="approximate daily peak in txn/s",
    )

    pred = sub.add_parser("predict", parents=[common],
                          help="forecast a trace with SPAR")
    pred.add_argument("trace", help="input CSV (see `generate`)")
    pred.add_argument(
        "--model", choices=_forecast_model_choices(), default="spar",
        help="registry predictor to fit (see docs/PREDICTORS.md)",
    )
    pred.add_argument("--train-days", type=int, default=28)
    pred.add_argument("--horizon", type=int, default=12, help="slots ahead")

    plan = sub.add_parser("plan", parents=[common],
                          help="plan reconfigurations for a trace")
    plan.add_argument("trace", help="input CSV")
    plan.add_argument("--config", default=None,
                      help="JSON config file (see PStoreConfig.from_file)")
    plan.add_argument("--train-days", type=int, default=28)
    plan.add_argument("--machines", type=int, default=0,
                      help="current cluster size (0 = fit to current load)")
    plan.add_argument("--horizon", type=int, default=12)

    sim = sub.add_parser("simulate", parents=[common],
                         help="capacity-simulate a strategy")
    sim.add_argument(
        "strategy",
        help="p-store | reactive | static:<N> | simple:<day>/<night>",
    )
    sim.add_argument("--days", type=int, default=14)
    sim.add_argument("--seed", type=int, default=7)
    sim.add_argument("--peak-tps", type=float, default=1450.0)

    exp = sub.add_parser("experiment", parents=[common],
                         help="run a paper experiment")
    exp.add_argument(
        "name", nargs="?", default=None,
        help="experiment id (see --list; heavy experiments warn at "
        "default scale)",
    )
    exp.add_argument(
        "--list", action="store_true", dest="list_experiments",
        help="enumerate the registered experiments and exit",
    )
    exp.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run the experiment's cell grid through the cached sweep "
        "executor with N workers instead of the serial runner",
    )

    swp = sub.add_parser(
        "sweep", parents=[common],
        help="run an experiment's cell grid with caching and workers",
    )
    swp.add_argument("name", help="experiment id (see `experiment --list`)")
    swp.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="worker processes (1 = in-process serial)")
    swp.add_argument(
        "--backend", choices=("auto", "serial", "process", "tensor"),
        default="auto",
        help="how dirty cells execute: serial (inline), process (worker "
        "pool), tensor (batch the whole grid through the vectorised "
        "engine; non-tensorizable cells fall back to inline).  auto "
        "picks tensor when every cell supports it",
    )
    swp.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache directory (default: .pstore-cache, or "
        "$PSTORE_CACHE_DIR)",
    )
    swp.add_argument(
        "--out", default=None, metavar="DIR",
        help="write manifest.json plus merged events.jsonl and "
        "chronicle.jsonl into DIR",
    )
    swp.add_argument(
        "--force", action="store_true",
        help="re-execute every cell even when cached",
    )
    swp.add_argument(
        "--config", default=None,
        help="JSON config file (see PStoreConfig.from_sources)",
    )
    swp.add_argument(
        "--set", action="append", default=None, metavar="KEY=VALUE",
        dest="overrides",
        help="config override (repeatable, dotted keys allowed, e.g. "
        "--set q=300 --set faults.seed=9)",
    )

    chaos = sub.add_parser(
        "chaos", parents=[common],
        help="inject a fault scenario and report SLA impact + recovery",
    )
    chaos.add_argument(
        "scenario", nargs="?", default=None,
        help="scenario JSON file (default: the built-in "
        "crash-during-migration drill; see docs/FAULTS.md)",
    )
    chaos.add_argument("--days", type=int, default=1,
                       help="evaluation days of benchmark load")
    chaos.add_argument("--seed", type=int, default=21, help="workload seed")
    chaos.add_argument(
        "--no-reactive", action="store_true",
        help="skip the reactive-baseline comparison run",
    )

    check = sub.add_parser(
        "check", parents=[common],
        help="run invariants, differential suites, and the sim-time lint",
    )
    check.add_argument(
        "--level", choices=("cheap", "expensive"), default="expensive",
        help="invariant tier active during the differential runs "
        "(default: expensive)",
    )
    check.add_argument(
        "--suite", action="append",
        choices=("fast-path", "engines", "migration", "tensor",
                 "serve-resume"),
        default=None, metavar="NAME",
        help="differential suite(s) to run (repeatable; default: all)",
    )
    check.add_argument(
        "--seconds", type=int, default=900,
        help="trace length for the fast-path differential",
    )
    check.add_argument(
        "--skip-lint", action="store_true",
        help="skip the AST lint over the repro package",
    )
    check.add_argument(
        "--inject",
        choices=("drop-bucket", "perturb-fast-path", "perturb-tensor",
                 "perturb-serve-resume"),
        default=None,
        help="deliberately corrupt one path to verify the harness "
        "catches it (the command must then exit nonzero)",
    )

    explain = sub.add_parser(
        "explain", parents=[common],
        help="causal post-mortem of a recorded run's chronicle",
    )
    explain.add_argument(
        "run_dir",
        help="run directory written with --telemetry-out (or a sweep "
        "--out manifest directory, or a chronicle.jsonl path)",
    )
    explain.add_argument(
        "--window", default=None, metavar="T0:T1",
        help="only explain violations/reconfigurations with simulated "
        "time in [T0, T1] seconds (chains still render whole)",
    )
    explain.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the machine-readable report instead of text",
    )

    srv = sub.add_parser(
        "serve", parents=[common],
        help="run the always-on predictive provisioning control plane",
    )
    srv.add_argument(
        "--source", default="replay:b2w",
        help="load-report source: replay:b2w | replay:<trace.csv> | "
        "file:<reports.jsonl> | stdin | tcp:<port> (default: replay:b2w)",
    )
    srv.add_argument(
        "--speed", type=float, default=60.0,
        help="replay acceleration: simulated seconds per wall second "
        "(0 = no pacing, run flat out; default: 60)",
    )
    srv.add_argument("--days", type=int, default=2,
                     help="synthetic replay length after training")
    srv.add_argument(
        "--train-days", type=int, default=1,
        help="trace prefix for the offline predictor fit "
        "(0 = learn fully online)",
    )
    srv.add_argument("--seed", type=int, default=7)
    srv.add_argument("--peak-tps", type=float, default=1450.0)
    srv.add_argument(
        "--slot-seconds", type=float, default=300.0,
        help="planner interval for non-replay sources",
    )
    srv.add_argument(
        "--predictor", choices=_forecast_model_choices(), default="ar",
        help="forecast model from the predictor registry (spar needs "
        "--train-days >= 2; ar is the responsive default for short "
        "replays; see docs/PREDICTORS.md)",
    )
    srv.add_argument(
        "--error-trigger", default="mape:0.35", metavar="SPEC",
        help="unscheduled-replan trigger over rolling forecast error, "
        "e.g. mape:0.3 or mape:0.3,bias:0.25; 'off' disables "
        "(default: mape:0.35)",
    )
    srv.add_argument(
        "--trigger-min-pairs", type=int, default=12,
        help="scored forecast/actual pairs required before the trigger "
        "may fire",
    )
    srv.add_argument(
        "--http-port", type=int, default=None, metavar="PORT",
        help="serve /status /metrics /chronicle/tail /plan on PORT "
        "(default: no HTTP)",
    )
    srv.add_argument("--machines", type=int, default=2,
                     help="initial cluster size")
    srv.add_argument("--max-machines", type=int, default=None)
    srv.add_argument(
        "--out", default="serve-out", metavar="DIR",
        help="run directory flushed on drain/SIGINT "
        "(events/spans/chronicle/metrics; 'none' disables)",
    )
    srv.add_argument(
        "--status-every", type=int, default=12,
        help="print a dashboard line every N closed intervals "
        "(0 = never)",
    )
    srv.add_argument(
        "--checkpoint", default=None, metavar="DIR",
        help="persist full plane state to DIR after every closed "
        "interval (atomic snapshot + incremental chronicle log)",
    )
    srv.add_argument(
        "--resume", default=None, metavar="DIR",
        help="restore mid-stream state from DIR before serving "
        "(implies --checkpoint DIR)",
    )
    srv.add_argument(
        "--node-timeout", type=int, default=12, metavar="N",
        help="evict a reporting node once its clock trails the fastest "
        "node by more than N intervals, so one dead node cannot freeze "
        "the watermark (0 = never evict; default: 12)",
    )
    srv.add_argument(
        "--ingest-token", default=None, metavar="TOKEN",
        help="shared secret a tcp:<port> feeder must send as its first "
        "line (default: no auth)",
    )
    srv.add_argument(
        "--ingest-queue", type=int, default=1024, metavar="N",
        help="bounded tcp ingest queue; full = per-connection "
        "backpressure (default: 1024)",
    )
    srv.add_argument(
        "--ingest-max-line", type=int, default=65536, metavar="BYTES",
        help="tcp report lines longer than this close the connection "
        "(default: 65536)",
    )
    srv.add_argument(
        "--ingest-max-rate", type=float, default=0.0, metavar="RPS",
        help="per-connection tcp report rate cap, reports/second "
        "(0 = unlimited; default: 0)",
    )

    cache = sub.add_parser(
        "cache", parents=[common],
        help="manage the sweep result cache",
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    gc = cache_sub.add_parser(
        "gc", parents=[common],
        help="evict cache entries by age and/or total size",
    )
    gc.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache root (default: .pstore-cache, or $PSTORE_CACHE_DIR)",
    )
    gc.add_argument(
        "--max-bytes", default=None, metavar="SIZE",
        help="keep the cache under SIZE (suffixes K/M/G, e.g. 500M)",
    )
    gc.add_argument(
        "--max-age", default=None, metavar="AGE",
        help="evict entries older than AGE (suffixes s/m/h/d, e.g. 7d)",
    )
    gc.add_argument(
        "--dry-run", action="store_true",
        help="report what would be evicted without deleting",
    )
    return parser


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------


def _cmd_generate(args) -> int:
    trace = b2w_like_trace(
        n_days=args.days,
        slot_seconds=args.slot_seconds,
        seed=args.seed,
        base_level=args.peak_tps * args.slot_seconds,
    )
    write_trace_csv(trace, args.output)
    print(f"wrote {trace.describe()} to {args.output}")
    return 0


def _fit_model(name: str, values: np.ndarray, period: int, train_slots: int):
    # Seasonal predictors take the trace's day length; history-window
    # models (ar/arma/naive) declare no period and get none.
    spec = get_predictor_spec(name)
    kwargs = {"period": period} if spec.accepts("period") else {}
    return api.fit_predictor(name, values[:train_slots], **kwargs)


def _cmd_predict(args) -> int:
    trace = read_trace_csv(args.trace)
    period = trace.slots_per_day
    train_slots = args.train_days * period
    if train_slots >= len(trace):
        print(
            f"error: trace has {len(trace)} slots; cannot train on "
            f"{args.train_days} days",
            file=sys.stderr,
        )
        return 2
    values = trace.as_rate_per_second()
    logger.info("fitting %s on %d slots (%d days)", args.model, train_slots,
                args.train_days)
    with get_telemetry().tracer.span(
        "predict.forecast", model=args.model, horizon=args.horizon
    ) as span:
        model = _fit_model(args.model, values, period, train_slots)
        forecast = model.predict_horizon(values, args.horizon)
        span.set("predicted_next", float(forecast[0]))
    print(series_block("history (txn/s)", values[-3 * period :]))
    rows = [
        (i + 1, f"{v:,.1f}") for i, v in enumerate(forecast)
    ]
    print(ascii_table(["slots ahead", "forecast txn/s"], rows,
                      title=f"{args.model.upper()} forecast"))
    return 0


def _cmd_plan(args) -> int:
    config = (
        PStoreConfig.from_file(args.config) if args.config else default_config()
    )
    trace = read_trace_csv(args.trace)
    config = config.with_interval(trace.slot_seconds)
    period = trace.slots_per_day
    train_slots = args.train_days * period
    values = trace.as_rate_per_second()
    if train_slots >= len(trace):
        print("error: not enough data after the training window", file=sys.stderr)
        return 2
    logger.info("fitting SPAR on %d slots, planning %d ahead", train_slots,
                args.horizon)
    with get_telemetry().tracer.span(
        "predict.forecast", model="spar", horizon=args.horizon
    ) as span:
        model = _fit_model("spar", values, period, train_slots)
        forecast = model.predict_horizon(values, args.horizon)
        span.set("predicted_next", float(forecast[0]))
    inflated = forecast * config.prediction_inflation
    current_load = float(values[-1])
    machines = args.machines or config.servers_for_load(current_load * 1.1)

    print(f"current load {current_load:,.0f} txn/s on {machines} machines")
    try:
        with get_telemetry().tracer.span(
            "plan.dp", machines=machines, horizon=args.horizon
        ) as span:
            schedule = Planner(config).plan(
                list(inflated), machines, current_load=current_load
            )
            span.set(
                "n_moves", sum(1 for m in schedule.moves if not m.is_noop)
            )
    except InfeasiblePlanError as infeasible:
        print(
            f"no feasible plan: scale out reactively to "
            f"{infeasible.required_machines} machines"
        )
        return 1
    print(schedule.describe())
    first = schedule.first_real_move
    if first is None:
        print("=> no reconfiguration needed within the horizon")
    else:
        direction = "out" if first.is_scale_out else "in"
        print(
            f"=> first move: scale {direction} {first.before} -> "
            f"{first.after} starting at interval {first.start}"
        )
    return 0


def _cmd_simulate(args) -> int:
    logger.info("simulating %s for %d days (seed %d)", args.strategy,
                args.days, args.seed)
    result = api.run(
        strategy=args.strategy,
        days=args.days,
        seed=args.seed,
        peak_tps=args.peak_tps,
    )
    detail = result.detail
    print(series_block("load (txn/s)", detail.load_tps))
    print(series_block("machines", detail.machines))
    print()
    print(detail.summary())
    return 0


def _cmd_experiment(args) -> int:
    from .experiments.registry import get_experiment, list_experiments

    if args.list_experiments:
        rows = [
            (
                defn.name,
                "grid" if defn.has_grid else "-",
                "heavy" if defn.heavy else "",
                defn.title,
            )
            for defn in list_experiments()
        ]
        print(ascii_table(
            ["id", "cells", "scale", "title"], rows,
            title="registered experiments",
        ))
        return 0
    if args.name is None:
        print("error: give an experiment id or --list", file=sys.stderr)
        return 2
    defn = get_experiment(args.name)
    if args.jobs > 1:
        if not defn.has_grid:
            print(
                f"error: experiment {defn.name!r} declares no cell grid; "
                "run it without --jobs",
                file=sys.stderr,
            )
            return 2
        result = api.sweep(args.name, jobs=args.jobs)
        for label in sorted(result.payloads):
            print(f"{label}: {_payload_line(result.payloads[label])}")
        print()
        print(result.summary())
        return 0
    if defn.heavy:
        logger.warning(
            "experiment %s runs minutes at default scale", defn.name
        )
    result = defn.run()
    print(defn.render(result))
    return 0


def _payload_line(payload) -> str:
    """One compact line for a cell payload (skip the digest blobs)."""
    if not isinstance(payload, dict):
        return str(payload)
    parts = []
    for key, value in payload.items():
        if key in ("series_sha", "chronicle", "rows", "points"):
            continue
        if isinstance(value, float):
            parts.append(f"{key}={value:.4g}")
        elif isinstance(value, (str, int, bool)):
            parts.append(f"{key}={value}")
    return " ".join(parts)


def _cmd_sweep(args) -> int:
    config = PStoreConfig.from_sources(
        file=args.config,
        overrides=parse_set_overrides(args.overrides or []),
    )
    logger.info(
        "sweeping %s with %d job(s), backend=%s",
        args.name, args.jobs, args.backend,
    )
    result = api.sweep(
        args.name,
        config=config,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        force=args.force,
        record_events=bool(args.out),
        backend=args.backend,
    )
    for label in sorted(result.payloads):
        print(f"{label}: {_payload_line(result.payloads[label])}")
    print()
    print(result.summary())
    if args.out:
        paths = result.detail.write_manifest(args.out)
        for kind, path in sorted(paths.items()):
            logger.info("wrote %s -> %s", kind, path)
    return 0


def _cmd_chaos(args) -> int:
    from .experiments.chaos import run_chaos
    from .faults import FaultScenario

    scenario = (
        FaultScenario.from_file(args.scenario) if args.scenario else None
    )
    logger.info("running chaos scenario over %d eval day(s)", args.days)
    result = run_chaos(
        scenario=scenario,
        eval_days=args.days,
        seed=args.seed,
        include_reactive=not args.no_reactive,
    )

    scenario = result.scenario
    print(f"scenario: {scenario.name} "
          f"({len(scenario)} faults, seed {scenario.seed})")
    for spec in scenario.faults:
        trigger = (
            f"t={spec.at_time:,.0f}s"
            if spec.at_time is not None
            else f"migration #{spec.on_migration}"
        )
        label = f" [{spec.label}]" if spec.label else ""
        print(f"  - {spec.kind} @ {trigger}{label}")
    print()

    violation_rows = result.violation_rows()
    quantiles = sorted(next(iter(violation_rows.values())))
    rows = [
        (label, *(violations[q] for q in quantiles))
        for label, violations in violation_rows.items()
    ]
    print(ascii_table(
        ["strategy"] + [f"p{int(q)} viol s" for q in quantiles],
        rows,
        title="SLA violation seconds",
    ))

    for label, run in result.runs.items():
        print()
        print(f"[{label}] avg machines {run.result.average_machines:.2f}, "
              f"{run.result.moves_started} moves, "
              f"{run.result.emergencies} emergency")
        print(run.report())
    print()
    print(f"converged: {'yes' if result.all_converged else 'NO'}")
    return 0 if result.all_converged else 1


def _cmd_check(args) -> int:
    from .check import check_scope, differential
    from .check import lint as lint_mod

    failures = 0
    if not args.skip_lint:
        issues = lint_mod.lint_package()
        for issue in issues:
            print(f"lint: {issue}", file=sys.stderr)
        if issues:
            failures += len(issues)
        else:
            print("lint: ok")

    suites = args.suite or list(differential.SUITES)
    logger.info("running differential suites %s at level %s", suites, args.level)
    with check_scope(args.level):
        report = differential.run_suite(
            suites=suites, seconds=args.seconds, inject=args.inject
        )
    print(report.describe())
    failures += len(report.failures)
    if failures:
        print(f"error: {failures} check(s) failed", file=sys.stderr)
        return 1
    print("all checks passed")
    return 0


def _parse_window(spec: Optional[str]):
    """``T0:T1`` -> (float, float); None passes through."""
    if spec is None:
        return None
    parts = spec.split(":")
    if len(parts) != 2:
        raise PStoreError(
            f"--window wants T0:T1 (seconds), got {spec!r}"
        )
    try:
        return float(parts[0]), float(parts[1])
    except ValueError:
        raise PStoreError(
            f"--window bounds must be numbers, got {spec!r}"
        ) from None


def _cmd_explain(args) -> int:
    import json as json_mod

    from .analysis import explain_run, render_explain

    report = explain_run(args.run_dir, window=_parse_window(args.window))
    if args.as_json:
        print(json_mod.dumps(report.to_dict(), indent=1, sort_keys=True))
    else:
        print(render_explain(report), end="")
    return 0


def _parse_size(text: Optional[str]) -> Optional[int]:
    """``500M`` / ``2G`` / ``1048576`` -> bytes."""
    if text is None:
        return None
    spec = text.strip().upper()
    factor = 1
    for suffix, mult in (("K", 1024), ("M", 1024 ** 2), ("G", 1024 ** 3)):
        if spec.endswith(suffix):
            factor, spec = mult, spec[:-1]
            break
    try:
        return int(float(spec) * factor)
    except ValueError:
        raise PStoreError(f"bad size {text!r} (want e.g. 500M, 2G)") from None


def _parse_age(text: Optional[str]) -> Optional[float]:
    """``7d`` / ``12h`` / ``30m`` / ``90s`` -> seconds."""
    if text is None:
        return None
    spec = text.strip().lower()
    factor = 1.0
    for suffix, mult in (("s", 1.0), ("m", 60.0), ("h", 3600.0), ("d", 86400.0)):
        if spec.endswith(suffix):
            factor, spec = mult, spec[:-1]
            break
    try:
        return float(spec) * factor
    except ValueError:
        raise PStoreError(f"bad age {text!r} (want e.g. 7d, 12h)") from None


def _cmd_cache(args) -> int:
    from .runner.cache import ResultCache, default_cache_root

    root = args.cache_dir or default_cache_root()
    cache = ResultCache(root)
    stats = cache.gc(
        max_bytes=_parse_size(args.max_bytes),
        max_age_seconds=_parse_age(args.max_age),
        dry_run=args.dry_run,
    )
    verb = "would reclaim" if args.dry_run else "reclaimed"
    print(
        f"{verb} {stats['reclaimed_bytes']:,} bytes "
        f"({stats['removed']} of {stats['scanned']} entries) from {root}; "
        f"{stats['kept']} entries / {stats['kept_bytes']:,} bytes kept"
    )
    return 0


def _serve_predictor(args, trace, period: int):
    """Build the (Online-wrapped) forecast model for ``pstore serve``."""
    from .prediction.online import OnlinePredictor

    train_slots = 0
    if trace is not None and args.train_days > 0:
        train_slots = int(args.train_days * trace.slots_per_day)
        if train_slots >= len(trace):
            raise PStoreError(
                f"trace has {len(trace)} slots; cannot train on "
                f"{args.train_days} days"
            )
    spec = get_predictor_spec(args.predictor)
    if args.predictor == "spar" and args.train_days > 0 and args.train_days < 2:
        raise PStoreError(
            "spar needs --train-days >= 2 (one period of history plus one "
            "of targets); use --predictor ar for short replays"
        )
    kwargs = {"period": period} if spec.accepts("period") else {}
    if args.predictor == "spar":
        kwargs["n_periods"] = max(1, min(7, args.train_days - 1))
        kwargs["m_recent"] = min(30, period // 2)
    elif args.predictor == "ar":
        kwargs["order"] = min(30, max(2, period // 8))
    if train_slots:
        values = trace.as_rate_per_second()[:train_slots]
        base = api.fit_predictor(args.predictor, values, **kwargs)
        online = OnlinePredictor(
            base, refit_every=7 * period, max_history=21 * period
        )
        online.fit(values)
        return online, train_slots
    # Fully-online bootstrap: build an unfitted base and let the
    # controller's warmup mode carry until the first fit.
    if args.predictor == "spar":
        kwargs["n_periods"] = 2
    base = spec.build(**kwargs)
    return (
        OnlinePredictor(base, refit_every=7 * period,
                        max_history=21 * period),
        0,
    )


def _cmd_serve(args) -> int:
    import asyncio

    from .serve import (
        ControlPlane,
        ServeOptions,
        parse_error_trigger,
        source_from_spec,
    )
    from .serve.controller import ErrorTrigger

    kind, _, arg = args.source.partition(":")
    trace = None
    if kind == "replay":
        if arg in ("", "b2w"):
            total_days = args.train_days + args.days
            trace = b2w_like_trace(
                n_days=total_days,
                slot_seconds=args.slot_seconds,
                seed=args.seed,
                base_level=args.peak_tps * args.slot_seconds,
            )
        else:
            trace = read_trace_csv(arg)
    slot_seconds = trace.slot_seconds if trace is not None else args.slot_seconds
    config = default_config().with_interval(slot_seconds)
    period = (
        trace.slots_per_day
        if trace is not None
        else max(1, int(round(86_400.0 / slot_seconds)))
    )

    predictor, train_slots = _serve_predictor(args, trace, period)
    if trace is not None and train_slots:
        trace = trace[train_slots:]

    trigger = parse_error_trigger(args.error_trigger)
    if trigger is not None:
        trigger = ErrorTrigger(
            trigger.clauses, tau=1, min_pairs=args.trigger_min_pairs
        )

    source = source_from_spec(
        args.source,
        trace=trace,
        speed=args.speed,
        auth_token=args.ingest_token,
        queue_size=args.ingest_queue,
        max_line_bytes=args.ingest_max_line,
        max_report_rate=args.ingest_max_rate,
    )
    out = None if args.out in (None, "", "none") else args.out
    checkpoint_dir = args.resume if args.resume is not None else args.checkpoint
    options = ServeOptions(
        speed=args.speed,
        http_port=args.http_port,
        out=out,
        initial_machines=args.machines,
        max_machines=args.max_machines,
        status_every=args.status_every,
        quiet=args.quiet,
        checkpoint_dir=checkpoint_dir,
        resume=args.resume is not None,
        node_timeout=args.node_timeout,
    )
    plane = ControlPlane(
        config, predictor, source, trigger=trigger, options=options
    )
    logger.info(
        "serving source=%s speed=%gx trigger=%s http=%s out=%s",
        args.source, args.speed,
        trigger.describe() if trigger else "off",
        args.http_port, out,
    )
    summary = asyncio.run(plane.run())
    print(
        f"served {summary['intervals']} intervals "
        f"({summary['sim_time']:,.0f}s simulated): "
        f"machines={summary['machines']} mode={summary['mode']} "
        f"violations={summary['violations']} moves={summary['moves_started']} "
        f"trigger_fires={summary['trigger_fires']}"
    )
    for name, path in sorted(summary.get("artifacts", {}).items()):
        logger.info("wrote %s -> %s", name, path)
    if summary.get("artifacts"):
        print(f"run directory flushed to {out}/ (pstore explain {out}/)")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "predict": _cmd_predict,
    "plan": _cmd_plan,
    "simulate": _cmd_simulate,
    "experiment": _cmd_experiment,
    "sweep": _cmd_sweep,
    "chaos": _cmd_chaos,
    "check": _cmd_check,
    "explain": _cmd_explain,
    "serve": _cmd_serve,
    "cache": _cmd_cache,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    _setup_logging(args)
    recording = bool(args.telemetry_out)
    # `serve` is always a telemetry producer: its accuracy trigger and
    # chronicle need the live registry, and it flushes its own run
    # directory (--out) on drain.
    needs_telemetry = recording or args.command == "serve"
    if needs_telemetry:
        enable_telemetry()
        if recording:
            logger.info("telemetry enabled, artifacts will go to %s",
                        args.telemetry_out)
    try:
        try:
            code = _COMMANDS[args.command](args)
        except (PStoreError, OSError) as error:
            # Expected failure modes (bad inputs, missing files, invalid
            # configs) exit nonzero with one line, not a traceback.
            print(f"error: {error}", file=sys.stderr)
            code = 1
        except KeyboardInterrupt:
            # Graceful-shutdown path for batch commands: a Ctrl-C must
            # still flush whatever telemetry was recorded (open spans are
            # exported with ``aborted: true``) instead of dropping the
            # run on the floor.  `serve` normally intercepts the signal
            # itself; this is the fallback for everything else.
            print("interrupted", file=sys.stderr)
            code = 130
        if recording:
            tel = get_telemetry()
            try:
                paths = export_run(tel, args.telemetry_out)
                for kind, path in sorted(paths.items()):
                    logger.info("wrote %s -> %s", kind, path)
                if args.command == "simulate" and code == 0:
                    print()
                    print(render_dashboard(tel))
            except OSError as error:
                print(
                    f"error: cannot write telemetry to "
                    f"{args.telemetry_out}: {error}",
                    file=sys.stderr,
                )
                code = code or 1
        return code
    finally:
        if needs_telemetry:
            disable_telemetry()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
