"""Exception hierarchy for the P-Store reproduction.

Every error raised by this package derives from :class:`PStoreError`, so
callers can catch one type at an API boundary.  Subclasses are grouped by
the subsystem that raises them.
"""

from __future__ import annotations


class PStoreError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(PStoreError):
    """A configuration value is missing, inconsistent, or out of range."""


#: Short alias; most call sites read better as ``except ConfigError``.
ConfigError = ConfigurationError


class StrategySpecError(ConfigurationError):
    """A provisioning-strategy spec string or mapping is malformed.

    Raised by :meth:`repro.elasticity.StrategySpec.parse` and
    :meth:`~repro.elasticity.StrategySpec.from_dict` — the one error type
    every consumer of strategy specs (CLI, experiments, fault scenarios)
    has to handle.
    """


class UnknownExperimentError(ConfigurationError):
    """An experiment name is not in :mod:`repro.experiments`' registry."""


class SweepError(PStoreError):
    """A sweep cell failed to execute.

    Completed cells are already persisted in the result cache when this
    is raised, so re-running the sweep resumes from where it stopped.
    """


class PlanningError(PStoreError):
    """The move planner was called with invalid inputs."""


class InfeasiblePlanError(PlanningError):
    """No feasible sequence of moves exists for the predicted load.

    This corresponds to the ``best-moves`` function of the paper returning
    the empty set (Algorithm 1, line 13): the initial cluster is too small
    to scale out in time for the predicted load.  The controller reacts to
    this by scaling out at either the regular or a boosted migration rate
    (Section 4.3.1 of the paper).
    """

    def __init__(self, message: str, required_machines: int = 0):
        super().__init__(message)
        #: Number of machines needed to serve the predicted peak.
        self.required_machines = required_machines


class PredictionError(PStoreError):
    """A prediction model was misused (e.g. predicting before fitting)."""


class NotFittedError(PredictionError):
    """The model must be fitted before it can predict."""


class CatalogError(PStoreError):
    """Schema/catalog misuse: unknown table, duplicate column, bad key."""


class RoutingError(PStoreError):
    """A transaction could not be routed to a partition."""


class TransactionAbort(PStoreError):
    """A stored procedure aborted (business-rule violation, missing row)."""


class MigrationError(PStoreError):
    """The migration subsystem was asked to do something invalid."""


class FaultError(PStoreError):
    """The fault-injection subsystem was misconfigured (unknown fault
    kind, contradictory trigger, invalid scenario file)."""


class SimulationError(PStoreError):
    """The simulator was driven with inconsistent inputs."""


class InvariantViolation(PStoreError):
    """A runtime invariant of :mod:`repro.check` failed.

    Raised by the invariant library when a cross-cutting consistency
    property breaks at runtime — rows lost across a migration commit,
    data fractions not summing to one, negative queue backlog, capacity
    accounting inconsistent with Q/Q̂.  Each raise is paired with an
    ``invariant.violation`` event in the telemetry event log so the
    divergence is auditable after the fact.
    """


class DivergenceError(PStoreError):
    """Two engines that must agree diverged beyond declared tolerance.

    Raised by the differential runner in :mod:`repro.check.differential`
    when the transaction engine and the queueing engine (or the
    vectorized fast path and the scalar loop) disagree on throughput,
    latency, or migration accounting."""


class TelemetryError(PStoreError):
    """The telemetry subsystem was misused (metric type conflicts,
    invalid quantiles, unwritable artifact paths)."""
