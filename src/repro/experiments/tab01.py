"""Experiment: Table 1 — schedule of parallel migrations for 3 -> 14.

Regenerates the paper's worked example: the complete 11-round,
three-phase schedule, with each round's sender -> receiver pairs and the
just-in-time machine allocation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..core.model import avg_machines_allocated
from ..squall import MigrationSchedule, build_migration_schedule, validate_schedule


@dataclass
class Table1Result:
    """The 3 -> 14 schedule and its summary statistics."""

    schedule: MigrationSchedule
    n_rounds: int
    naive_rounds: int           # rounds without the three-phase trick
    average_machines: float
    algorithm4_average: float
    phases: List[Tuple[int, int]]  # (first_round, machines_allocated) steps


def run_table1(before: int = 3, after: int = 14) -> Table1Result:
    """Build and validate the Table 1 schedule."""
    schedule = build_migration_schedule(before, after)
    validate_schedule(schedule)
    smaller = min(before, after)
    delta = abs(after - before)
    naive = -(-delta // smaller) * smaller  # ceil(delta/s) full blocks
    phases: List[Tuple[int, int]] = []
    for idx, allocated in enumerate(schedule.allocation):
        if not phases or phases[-1][1] != allocated:
            phases.append((idx + 1, allocated))
    return Table1Result(
        schedule=schedule,
        n_rounds=schedule.n_rounds,
        naive_rounds=naive,
        average_machines=schedule.average_machines(),
        algorithm4_average=avg_machines_allocated(before, after),
        phases=phases,
    )


# ----------------------------------------------------------------------
# Sweep-cell protocol
# ----------------------------------------------------------------------


def grid(before: int = 3, after: int = 14) -> list:
    from ..runner import RunSpec

    return [
        RunSpec(
            experiment="tab01",
            cell=f"{before}-{after}",
            overrides=(("before", int(before)), ("after", int(after))),
        )
    ]


def run_cell(spec, config) -> dict:
    result = run_table1(
        before=int(spec.option("before", 3)),
        after=int(spec.option("after", 14)),
    )
    return {
        "n_rounds": result.n_rounds,
        "naive_rounds": result.naive_rounds,
        "average_machines": result.average_machines,
        "algorithm4_average": result.algorithm4_average,
    }


def summarize(result: Table1Result) -> str:
    return (
        f"{result.n_rounds} rounds (naive: {result.naive_rounds}), average "
        f"machines {result.average_machines:.2f} "
        f"(Algorithm 4: {result.algorithm4_average:.2f})"
    )
