"""Experiment: Figure 4 — servers allocated and effective capacity
during migration.

For the paper's three scheduling cases (3->5, 3->9, 3->14 with one
partition per server) we tabulate, across the move, the just-in-time
machine allocation and the effective capacity of Eq. 7 — showing how far
effective capacity lags behind the machines physically present for large
moves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..config import default_config
from ..core.model import MoveProfile, move_profile, move_time

#: The three cases shown in the paper's Figure 4.
FIGURE4_CASES: Tuple[Tuple[int, int], ...] = ((3, 5), (3, 9), (3, 14))


@dataclass
class Figure4Case:
    """One move's duration, trajectory, and allocation gap."""

    before: int
    after: int
    duration_in_d: float      # move duration in units of D
    profile: MoveProfile
    max_allocation_gap: float  # max (machines - effcap/Q) across the move


@dataclass
class Figure4Result:
    """Trajectories for the three Fig. 4 migration cases."""

    cases: List[Figure4Case]

    def case(self, before: int, after: int) -> Figure4Case:
        for case in self.cases:
            if (case.before, case.after) == (before, after):
                return case
        raise KeyError((before, after))


def run_figure4(q: float | None = None) -> Figure4Result:
    """Compute allocation and effective-capacity trajectories."""
    q = q if q is not None else default_config().q
    cases = []
    for before, after in FIGURE4_CASES:
        profile = move_profile(before, after, q=q)
        gaps = [
            machines - eff / q
            for machines, eff in zip(profile.machines, profile.eff_cap[1:])
        ]
        cases.append(
            Figure4Case(
                before=before,
                after=after,
                duration_in_d=move_time(before, after),
                profile=profile,
                max_allocation_gap=max(gaps) if gaps else 0.0,
            )
        )
    return Figure4Result(cases=cases)


# ----------------------------------------------------------------------
# Sweep-cell protocol
# ----------------------------------------------------------------------


def grid() -> list:
    from ..runner import RunSpec

    return [
        RunSpec(
            experiment="fig04",
            cell=f"{before}-{after}",
            overrides=(("before", before), ("after", after)),
        )
        for before, after in FIGURE4_CASES
    ]


def run_cell(spec, config) -> dict:
    before = int(spec.option("before"))
    after = int(spec.option("after"))
    result = run_figure4(q=config.q)
    case = result.case(before, after)
    return {
        "before": before,
        "after": after,
        "duration_in_d": case.duration_in_d,
        "max_allocation_gap": case.max_allocation_gap,
    }


def summarize(result: Figure4Result) -> str:
    return "\n".join(
        f"{case.before} -> {case.after}: {case.duration_in_d:.2f} D, max "
        f"allocation gap {case.max_allocation_gap:.2f} machines"
        for case in result.cases
    )
