"""Experiment: ``tensmoke`` — a fast elastic-DBMS grid for the tensor
backend.

Not a paper artefact.  The ``smoke`` grid is capacity-sim based, so it
never touches the queueing engine; this grid is its
:class:`~repro.sim.ElasticDbSimulator` counterpart: four cheap
strategies crossed with two workload seeds over one 96x-compressed
B2W-like day (900 simulated seconds per cell, well under a second of
wall time each).  Every cell declares both ``run_cell`` (serial) and
``tensor_cell`` (batched), which makes the grid the canonical workload
for tensor-vs-serial differentials, the ``sweep_tensor_speedup`` bench,
and the CI tensor smoke job.

The reactive and simple strategies migrate several times per cell, so
the grid exercises the tensor driver's eviction/re-admission path, not
just the quiescent fast path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..elasticity import StrategySpec
from ..sim import ElasticDbSimulator, SimulationResult
from ..workload import b2w_like_trace
from .common import sim_payload

#: Strategy specs crossed with seeds to form the grid (no p-store: the
#: cells stay predictor-free and sub-second).
TENSMOKE_STRATEGIES = (
    "static:4", "static:6", "reactive:patience=8", "simple:6/3",
)

#: Workload seeds (two distinct traces).
TENSMOKE_SEEDS = (3, 9)

#: One day replayed at 96x: 900 simulated seconds, 15 planner slots.
TENSMOKE_SPEEDUP = 96.0
SLOTS_PER_DAY = 15

#: Requests per 60 s slot at the daily peak; at 96x this puts the
#: compressed load in the txn/s band an 8-machine cluster provisions
#: across.
TENSMOKE_BASE_LEVEL = 800.0

#: Engine seed shared across cells (the workload seed varies instead).
ENGINE_SEED = 55


@dataclass
class TensmokeResult:
    """Per-cell simulation results, keyed by cell name."""

    runs: Dict[str, SimulationResult]


def _cell_name(strategy_text: str, seed: int) -> str:
    return f"{strategy_text.replace(':', '-').replace('/', '-')}@{seed}"


def grid(
    strategies: Sequence[str] = TENSMOKE_STRATEGIES,
    seeds: Sequence[int] = TENSMOKE_SEEDS,
) -> List:
    """strategies x seeds cells (8 by default)."""
    from ..runner import RunSpec

    return [
        RunSpec(
            experiment="tensmoke",
            cell=_cell_name(text, seed),
            strategy=text,
            seed=seed,
        )
        for text in strategies
        for seed in seeds
    ]


def _prepare(strategy: StrategySpec, seed: int, config):
    """(simulator, offered, strategy) for one cell — shared by the
    serial and tensor cell runners so both are bit-identical."""
    config = config.with_interval(60.0)
    trace = b2w_like_trace(
        n_days=1,
        slot_seconds=60.0,
        seed=seed,
        base_level=TENSMOKE_BASE_LEVEL,
    )
    offered = trace.compressed(TENSMOKE_SPEEDUP).per_second_rates()
    built = strategy.build(config, slots_per_day=SLOTS_PER_DAY)
    initial = (
        int(strategy.param("machines"))
        if strategy.kind == "static"
        else 4
    )
    simulator = ElasticDbSimulator(
        config, max_machines=8, initial_machines=initial, seed=ENGINE_SEED
    )
    return simulator, offered, built


def run_one(strategy: StrategySpec, seed: int, config) -> SimulationResult:
    """One hermetic elastic-DBMS run of the tensmoke workload."""
    simulator, offered, built = _prepare(strategy, seed, config)
    return simulator.run(offered, built)


def run_cell(spec, config) -> dict:
    result = run_one(
        StrategySpec.parse(spec.strategy), seed=spec.seed, config=config
    )
    return sim_payload(result)


def tensor_cell(spec, config):
    """One cell as a :class:`~repro.sim.tensor.TensorProgram`."""
    from ..sim.tensor import TensorProgram

    simulator, offered, built = _prepare(
        StrategySpec.parse(spec.strategy), spec.seed, config
    )
    return TensorProgram(
        simulator=simulator,
        offered_tps=offered,
        strategy=built,
        label=spec.label,
        finalize=sim_payload,
    )


def run_tensmoke(config=None) -> TensmokeResult:
    """Serial runner: execute the whole grid in-process."""
    from ..config import default_config

    config = config or default_config()
    runs: Dict[str, SimulationResult] = {}
    for text in TENSMOKE_STRATEGIES:
        for seed in TENSMOKE_SEEDS:
            runs[_cell_name(text, seed)] = run_one(
                StrategySpec.parse(text), seed, config
            )
    return TensmokeResult(runs=runs)


def summarize(result: TensmokeResult) -> str:
    return "\n".join(
        f"{name}: {run.summary()}"
        for name, run in sorted(result.runs.items())
    )
