"""Experiment: Section 5's model comparison — SPAR vs ARMA vs AR.

"For example, under tau = 60 minutes, the MRE for predicting the B2W
load is 10.4%, 12.2%, and 12.5% under SPAR, ARMA, and AR, respectively."
The absolute numbers depend on the trace; the *ordering* (SPAR best,
plain AR worst) is the claim this experiment reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..prediction import ArmaPredictor, ArPredictor, SparPredictor
from ..workload import b2w_like_trace


@dataclass
class ModelComparisonResult:
    """MRE per model at the comparison tau."""

    mre_by_model: Dict[str, float]   # model name -> MRE fraction

    @property
    def ordering(self):
        return sorted(self.mre_by_model, key=self.mre_by_model.get)


def run_model_comparison(
    train_days: int = 28,
    eval_days: int = 7,
    tau_minutes: int = 60,
    seed: int = 7,
    stride: int = 31,
) -> ModelComparisonResult:
    """Fit all three models on the same trace; compare tau-ahead MRE."""
    trace = b2w_like_trace(
        n_days=train_days + eval_days, slot_seconds=60.0, seed=seed
    )
    period = trace.slots_per_day
    train = train_days * period
    stop = train + eval_days * period

    models = {
        "SPAR": SparPredictor(period=period, n_periods=7, m_recent=30),
        "ARMA": ArmaPredictor(p=30, q=10),
        "AR": ArPredictor(order=30),
    }
    mre: Dict[str, float] = {}
    for name, model in models.items():
        model.fit(trace.values[:train])
        result = model.backtest(
            trace.values, tau=tau_minutes, start=train, stop=stop, step=stride
        )
        mre[name] = result.mean_relative_error()
    return ModelComparisonResult(mre_by_model=mre)


# ----------------------------------------------------------------------
# Sweep-cell protocol
# ----------------------------------------------------------------------


def grid(tau_minutes: int = 60, seed: int = 7) -> list:
    from ..runner import RunSpec

    return [
        RunSpec(
            experiment="sec5",
            cell=model.lower(),
            seed=seed,
            overrides=(
                ("model", model),
                ("tau_minutes", int(tau_minutes)),
            ),
        )
        for model in ("SPAR", "ARMA", "AR")
    ]


def run_cell(spec, config) -> dict:
    name = str(spec.option("model", "SPAR"))
    trace = b2w_like_trace(n_days=28 + 7, slot_seconds=60.0, seed=spec.seed)
    period = trace.slots_per_day
    train = 28 * period
    stop = train + 7 * period
    models = {
        "SPAR": SparPredictor(period=period, n_periods=7, m_recent=30),
        "ARMA": ArmaPredictor(p=30, q=10),
        "AR": ArPredictor(order=30),
    }
    model = models[name]
    model.fit(trace.values[:train])
    backtest = model.backtest(
        trace.values,
        tau=int(spec.option("tau_minutes", 60)),
        start=train,
        stop=stop,
        step=31,
    )
    return {"model": name, "mre": backtest.mean_relative_error()}


def summarize(result: ModelComparisonResult) -> str:
    ranked = ", ".join(
        f"{name}: {100.0 * result.mre_by_model[name]:.1f}%"
        for name in result.ordering
    )
    return f"MRE at tau=60 min — {ranked} (best first)"
