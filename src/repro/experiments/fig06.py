"""Experiment: Figure 6 — SPAR on the Wikipedia page-view workloads.

Hourly English- and German-language page requests, four weeks of
training, forecast windows of 1-6 hours.  The paper reports errors under
10% up to two hours ahead even for the less predictable German trace,
and within ~13% at six hours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from ..prediction import SparPredictor
from ..workload import wikipedia_like_trace

#: Forecast windows (hours) swept in Fig. 6b.
FIGURE6_TAUS = (1, 2, 3, 4, 5, 6)


@dataclass
class LanguageResult:
    """SPAR accuracy for one Wikipedia edition."""

    language: str
    actual_24h: np.ndarray
    predicted_24h: np.ndarray
    mre_by_tau: Dict[int, float]


@dataclass
class Figure6Result:
    """SPAR accuracy for the English and German editions."""

    english: LanguageResult
    german: LanguageResult


def _evaluate_language(
    language: str,
    train_days: int,
    eval_days: int,
    seed: int,
    taus: Sequence[int],
) -> LanguageResult:
    trace = wikipedia_like_trace(
        n_days=train_days + eval_days, language=language, seed=seed
    )
    period = trace.slots_per_day  # 24 hourly slots
    train = train_days * period
    spar = SparPredictor(period=period, n_periods=7, m_recent=12).fit(
        trace.values[:train]
    )
    track = spar.backtest(
        trace.values, tau=1, start=train, stop=train + period
    )
    mre_by_tau = {
        tau: spar.backtest(
            trace.values,
            tau=tau,
            start=train,
            stop=train + eval_days * period,
        ).mean_relative_error()
        for tau in taus
    }
    return LanguageResult(
        language=language,
        actual_24h=track.actual,
        predicted_24h=track.predicted,
        mre_by_tau=mre_by_tau,
    )


def run_figure6(
    train_days: int = 28,
    eval_days: int = 14,
    seed: int = 11,
    taus: Sequence[int] = FIGURE6_TAUS,
) -> Figure6Result:
    """Evaluate SPAR on both Wikipedia-like hourly traces."""
    return Figure6Result(
        english=_evaluate_language("en", train_days, eval_days, seed, taus),
        german=_evaluate_language("de", train_days, eval_days, seed + 1, taus),
    )


# ----------------------------------------------------------------------
# Sweep-cell protocol
# ----------------------------------------------------------------------


def grid(seed: int = 11, eval_days: int = 14) -> list:
    from ..runner import RunSpec

    return [
        RunSpec(
            experiment="fig06",
            cell=language,
            seed=seed + offset,
            overrides=(
                ("language", language),
                ("eval_days", int(eval_days)),
            ),
        )
        for offset, language in enumerate(("en", "de"))
    ]


def run_cell(spec, config) -> dict:
    result = _evaluate_language(
        str(spec.option("language", "en")),
        train_days=28,
        eval_days=int(spec.option("eval_days", 14)),
        seed=spec.seed,
        taus=FIGURE6_TAUS,
    )
    return {
        "language": result.language,
        "mre_by_tau": {str(t): m for t, m in sorted(result.mre_by_tau.items())},
    }


def summarize(result: Figure6Result) -> str:
    lines = []
    for lang in (result.english, result.german):
        sweep = ", ".join(
            f"{tau}h: {100.0 * mre:.1f}%"
            for tau, mre in sorted(lang.mre_by_tau.items())
        )
        lines.append(f"{lang.language}: {sweep}")
    return "\n".join(lines)
