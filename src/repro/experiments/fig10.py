"""Experiment: Figure 10 — CDFs of the worst 1% of tail latencies.

For each of the four Figure 9 runs, the CDF of the top 1% of per-second
50th/95th/99th percentile latencies.  "Curves that are higher and far to
the left are better": the reactive approach is worst everywhere;
static-10 is best; P-Store beats static-4 at the tails.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..analysis import EmpiricalCdf, top_tail_cdf
from .fig09 import Figure9Result, run_figure9

#: Probe latencies (ms) at which the bench tabulates each CDF.
PROBES_MS = (300.0, 500.0, 1000.0, 2000.0, 5000.0)


@dataclass
class Figure10Result:
    """Top-1% tail CDFs per percentile and run."""

    #: percentile -> run name -> CDF of its top-1% values.
    cdfs: Dict[float, Dict[str, EmpiricalCdf]]
    figure9: Figure9Result

    def probability_table(
        self, percentile: float, probes: Tuple[float, ...] = PROBES_MS
    ) -> Dict[str, Dict[float, float]]:
        """P(latency <= probe) per run at the given percentile."""
        return {
            name: {p: cdf.probability_at(p) for p in probes}
            for name, cdf in self.cdfs[percentile].items()
        }


def run_figure10(
    figure9: Optional[Figure9Result] = None,
    eval_days: int = 3,
    seed: int = 21,
    fraction: float = 0.01,
) -> Figure10Result:
    """Build the tail CDFs (reusing Figure 9 runs when supplied)."""
    figure9 = figure9 or run_figure9(eval_days=eval_days, seed=seed)
    cdfs: Dict[float, Dict[str, EmpiricalCdf]] = {}
    for q in (50.0, 95.0, 99.0):
        cdfs[q] = {
            name: top_tail_cdf(result.latency, q, fraction)
            for name, result in figure9.runs.items()
        }
    return Figure10Result(cdfs=cdfs, figure9=figure9)


# ----------------------------------------------------------------------
# Sweep-cell protocol (reuses fig09's cells)
# ----------------------------------------------------------------------


def grid(eval_days: int = 3, seed: int = 21) -> list:
    from .fig09 import grid as fig09_grid

    return fig09_grid(eval_days=eval_days, seed=seed)


def summarize(result: Figure10Result) -> str:
    lines = []
    table = result.probability_table(99.0, probes=(500.0, 1000.0))
    for name, probs in table.items():
        rendered = ", ".join(
            f"P(<= {int(p)}ms) = {v:.2f}" for p, v in probs.items()
        )
        lines.append(f"{name} (p99 tail): {rendered}")
    return "\n".join(lines)
