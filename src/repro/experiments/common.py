"""Shared setup for the paper's evaluation experiments (Section 8).

The paper replays B2W's trace at 10x speed against a 10-node H-Store
cluster; these helpers build the equivalent synthetic setup:

* a B2W-like trace calibrated so the benchmark peak sits near 1.45k
  txn/s — just above the maximum throughput of the 4-machine static
  baseline (4 x Q-hat = 1.4k), exactly the regime of Figs. 9a-9d;
* the 10x time compression (one simulated day lasts 8 640 s);
* a SPAR predictor fitted on the four preceding (compressed) weeks at
  the 60 s planner-interval granularity.
"""

from __future__ import annotations

import hashlib
import logging
from dataclasses import dataclass
from typing import List

import numpy as np

from ..config import PStoreConfig, canonical_json, default_config
from ..prediction import SparPredictor
from ..workload import LoadTrace, b2w_like_trace

logger = logging.getLogger(__name__)

#: Requests per 60 s slot at the daily peak (before compression); the
#: 10x-compressed replay then peaks near 1 450 txn/s.
BENCHMARK_BASE_LEVEL = 1250.0 * 6.0

#: The paper replays a full day of traffic in 2.4 hours.
SPEEDUP = 10.0

#: Compressed planner intervals per day: 8 640 s / 60 s.
INTERVALS_PER_DAY = 144

#: Training window, matching "we train our prediction model using
#: 4-weeks' worth of historical B2W data".
TRAIN_DAYS = 28


@dataclass
class BenchmarkSetup:
    """Everything a Fig. 9-style experiment needs."""

    config: PStoreConfig
    offered_tps: np.ndarray          # one sample per compressed second
    train_interval_tps: List[float]  # per planner interval, for history seeding
    eval_trace: LoadTrace
    spar: SparPredictor


def interval_rates(trace: LoadTrace, interval_seconds: float = 60.0) -> np.ndarray:
    """Aggregate a compressed trace to mean tps per planner interval."""
    per_interval = int(round(interval_seconds / trace.slot_seconds))
    usable = (len(trace) // per_interval) * per_interval
    counts = trace.values[:usable].reshape(-1, per_interval).sum(axis=1)
    return counts / interval_seconds


def benchmark_setup(
    eval_days: int = 3,
    seed: int = 21,
    base_level: float = BENCHMARK_BASE_LEVEL,
    config: PStoreConfig | None = None,
    trace: LoadTrace | None = None,
) -> BenchmarkSetup:
    """Build the compressed benchmark workload plus a fitted SPAR model.

    ``trace``, when given, replaces the default B2W-like generator (the
    Fig. 11 experiment passes a trace with an unexpected spike in the
    evaluation window).  It must cover ``TRAIN_DAYS + eval_days`` days at
    60 s slots.
    """
    config = config or default_config()
    if trace is None:
        trace = b2w_like_trace(
            n_days=TRAIN_DAYS + eval_days,
            slot_seconds=60.0,
            seed=seed,
            base_level=base_level,
        )
    train_full = trace.slice_days(0, TRAIN_DAYS)
    eval_full = trace.slice_days(TRAIN_DAYS, eval_days)

    eval_compressed = eval_full.compressed(SPEEDUP)
    train_compressed = train_full.compressed(SPEEDUP)
    train_tps = interval_rates(train_compressed, config.interval_seconds)

    logger.info(
        "benchmark setup: %d eval days, %d training intervals, seed %d",
        eval_days, len(train_tps), seed,
    )
    spar = SparPredictor(
        period=INTERVALS_PER_DAY, n_periods=7, m_recent=30
    ).fit(train_tps)
    return BenchmarkSetup(
        config=config,
        offered_tps=eval_compressed.per_second_rates(),
        train_interval_tps=[float(v) for v in train_tps],
        eval_trace=eval_compressed,
        spar=spar,
    )


# ----------------------------------------------------------------------
# Sweep-cell helpers.  Every experiment module exposes ``grid()`` (its
# cell decomposition as RunSpec objects) and ``run_cell(spec, config)``
# (one hermetic cell -> JSON payload); these helpers keep the payloads
# uniform so cache entries and bit-identity checks mean the same thing
# everywhere.
# ----------------------------------------------------------------------


def series_digest(values) -> str:
    """Short deterministic digest of a numeric series.

    Cell payloads carry digests instead of full per-second arrays: the
    digest pins bit-identity (parallel vs serial, cached vs fresh) while
    keeping cache entries a few hundred bytes.
    """
    as_floats = [float(v) for v in np.asarray(values).ravel()]
    blob = canonical_json(as_floats).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


def sim_payload(result) -> dict:
    """Canonical JSON payload for an :class:`ElasticDbSimulator` run."""
    violations = result.sla_violations()
    return {
        "strategy": result.strategy_name,
        "seconds": result.seconds,
        "sla_ms": float(result.sla_ms),
        "average_machines": round(result.average_machines, 9),
        "emergencies": int(result.emergencies),
        "moves_started": int(result.moves_started),
        "sla_violations": {
            f"p{int(q)}": int(n) for q, n in sorted(violations.items())
        },
        "series_sha": {
            "machines": series_digest(result.machines),
            "completed_tps": series_digest(result.completed_tps),
            "p99_ms": series_digest(result.latency.series(99.0)),
        },
    }


def capacity_payload(result) -> dict:
    """Canonical JSON payload for a :class:`CapacitySimulator` run."""
    return {
        "strategy": result.strategy_name,
        "slots": result.n_slots,
        "cost_machine_slots": round(result.cost_machine_slots, 9),
        "average_machines": round(result.average_machines, 9),
        "insufficient_slots": int(result.insufficient_slots),
        "pct_time_insufficient": round(result.pct_time_insufficient, 9),
        "emergencies": int(result.emergencies),
        "moves_started": int(result.moves_started),
        "series_sha": {
            "machines": series_digest(result.machines),
            "eff_cap_max": series_digest(result.eff_cap_max),
        },
    }
