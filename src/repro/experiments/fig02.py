"""Experiment: Figure 2 — ideal capacity vs integral server allocation.

Figure 2 is the problem statement in miniature: for a sinusoidal demand
curve, the *ideal* capacity tracks demand with a small buffer (2a), but
real allocations are an integral number of servers, so the achievable
capacity is a step function (2b).  We quantify the gap: the step
function's cost overhead relative to the ideal fractional allocation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import PStoreConfig, default_config
from ..workload import sine_trace


@dataclass
class Figure2Result:
    """Ideal vs step allocation series and their cost gap."""

    demand_tps: np.ndarray
    ideal_capacity: np.ndarray        # demand * (1 + buffer)
    ideal_servers: np.ndarray         # fractional servers for ideal capacity
    allocated_servers: np.ndarray     # the step function (2b)
    step_cost: float                  # sum of allocated servers
    ideal_cost: float                 # sum of fractional servers
    overhead_pct: float               # step vs ideal cost


def run_figure2(
    buffer_fraction: float = 0.10,
    config: PStoreConfig | None = None,
    slots: int = 288,
) -> Figure2Result:
    """Compute the ideal and step allocations for one sinusoidal day."""
    config = config or default_config()
    slot_seconds = 86_400.0 / slots
    trace = sine_trace(
        n_days=1,
        slot_seconds=slot_seconds,
        low=0.5 * config.q * slot_seconds,
        high=7.5 * config.q * slot_seconds,
    )
    demand = trace.as_rate_per_second()
    ideal_capacity = demand * (1.0 + buffer_fraction)
    ideal_servers = ideal_capacity / config.q
    allocated = np.ceil(ideal_servers - 1e-9).clip(1)
    ideal_cost = float(ideal_servers.sum())
    step_cost = float(allocated.sum())
    return Figure2Result(
        demand_tps=demand,
        ideal_capacity=ideal_capacity,
        ideal_servers=ideal_servers,
        allocated_servers=allocated,
        step_cost=step_cost,
        ideal_cost=ideal_cost,
        overhead_pct=100.0 * (step_cost - ideal_cost) / ideal_cost,
    )


# ----------------------------------------------------------------------
# Sweep-cell protocol
# ----------------------------------------------------------------------


def grid(buffer_fraction: float = 0.10) -> list:
    from ..runner import RunSpec

    return [
        RunSpec(
            experiment="fig02",
            cell="step-overhead",
            overrides=(("buffer_fraction", float(buffer_fraction)),),
        )
    ]


def run_cell(spec, config) -> dict:
    result = run_figure2(
        buffer_fraction=float(spec.option("buffer_fraction", 0.10)),
        config=config,
    )
    return {
        "ideal_cost": result.ideal_cost,
        "step_cost": result.step_cost,
        "overhead_pct": result.overhead_pct,
    }


def summarize(result: Figure2Result) -> str:
    return (
        f"step allocation costs {result.overhead_pct:.1f}% more than the "
        f"ideal fractional allocation "
        f"({result.step_cost:,.0f} vs {result.ideal_cost:,.0f} server-slots)"
    )
