"""Experiment: Figure 12 — capacity-cost curves over 4.5 months.

Each allocation strategy is simulated over the August-December window
(including Black Friday, promotions, load tests and one unexpected
spike) once per value of the per-server target rate Q.  Every simulation
yields one point: (normalised cost, % of time with insufficient
capacity).  The paper's findings:

* "P-Store Oracle" (perfect predictions) bounds what P-Store can do;
* "P-Store SPAR" sits just behind the oracle;
* the reactive strategy can reach low violation rates only at much
  higher cost (big allocation buffers);
* "Simple" (clock-driven) and "Static" are dominated — they are
  inflexible and break on deviations from the pattern.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..analysis.capacity import CapacityCostCurve, SweepPoint
from ..config import PStoreConfig, default_config
from ..elasticity import (
    PStoreStrategy,
    ReactiveStrategy,
    SimpleStrategy,
    StaticStrategy,
)
from ..prediction import OraclePredictor, SparPredictor
from ..sim import CapacitySimResult, run_capacity_simulation
from ..workload import LoadTrace, b2w_like_trace, retail_season_calendar
from .common import TRAIN_DAYS

#: Per-slot scale chosen so the seasonal trace peaks near 1.45k txn/s
#: (ordinary days) with Black Friday reaching ~3x that.
SEASON_BASE_LEVEL = 1250.0 * 300.0

#: Q sweep (fractions of the 438 txn/s saturation rate).
DEFAULT_Q_FRACTIONS = (0.45, 0.55, 0.65, 0.75)

#: Static cluster sizes plotted as points in Fig. 12.
STATIC_SIZES = (4, 6, 8, 10)

SATURATION_TPS = 438.0


@dataclass
class SeasonSetup:
    """The 4.5-month workload plus SPAR training artefacts."""

    config: PStoreConfig
    trace: LoadTrace                  # evaluation window (5-min slots)
    train_tps: np.ndarray             # per-slot tps of the training window
    eval_tps: np.ndarray
    spar: SparPredictor
    oracle: OraclePredictor


def season_setup(
    n_days: int = 135,
    seed: int = 7,
    config: Optional[PStoreConfig] = None,
    include_black_friday: bool = True,
) -> SeasonSetup:
    """Build the Aug-Dec workload: 4 training weeks + ``n_days`` eval."""
    config = config or default_config().with_interval(300.0)
    slots_per_day = 288
    rng = np.random.default_rng(seed)
    calendar = retail_season_calendar(
        slots_per_day=slots_per_day,
        n_days=n_days,
        rng=rng,
        black_friday_day=116 if (include_black_friday and n_days > 118) else -1,
    )
    # Shift the calendar past the training window.
    from ..workload.events import EventCalendar, LoadEvent

    shifted = EventCalendar(
        LoadEvent(
            start_slot=e.start_slot + TRAIN_DAYS * slots_per_day,
            duration_slots=e.duration_slots,
            magnitude=e.magnitude,
            shape=e.shape,
            label=e.label,
        )
        for e in calendar
    )
    full = b2w_like_trace(
        n_days=TRAIN_DAYS + n_days,
        slot_seconds=300.0,
        seed=rng,
        base_level=SEASON_BASE_LEVEL,
        calendar=shifted,
        name="b2w-aug-dec",
    )
    train = full.slice_days(0, TRAIN_DAYS)
    evaluation = full.slice_days(TRAIN_DAYS, n_days)
    train_tps = train.as_rate_per_second()
    eval_tps = evaluation.as_rate_per_second()
    spar = SparPredictor(period=slots_per_day, n_periods=7, m_recent=30).fit(
        train_tps
    )
    oracle = OraclePredictor(np.concatenate([train_tps, eval_tps]))
    return SeasonSetup(
        config=config,
        trace=evaluation,
        train_tps=train_tps,
        eval_tps=eval_tps,
        spar=spar,
        oracle=oracle,
    )


@dataclass
class Figure12Result:
    """Capacity-cost curves and the normalisation baseline."""

    curves: Dict[str, CapacityCostCurve]
    baseline_cost: float              # default P-Store SPAR run (cost = 1.0)
    default_runs: Dict[str, CapacitySimResult]
    setup: SeasonSetup

    def normalized_points(self) -> List[dict]:
        rows = []
        for name, curve in self.curves.items():
            for point in curve.points:
                rows.append(
                    {
                        "strategy": name,
                        "q_fraction": point.q_fraction,
                        "normalized_cost": point.cost_machine_slots
                        / self.baseline_cost,
                        "pct_insufficient": point.pct_time_insufficient,
                    }
                )
        return rows


def _initial_machines(setup: SeasonSetup, q: float) -> int:
    first_load = float(setup.eval_tps[0])
    return max(1, math.ceil(first_load * 1.3 / q))


#: Simple-strategy clock: scale out at 05:00, back in at 23:30.
SIMPLE_MORNING_HOUR = 5.0
SIMPLE_NIGHT_HOUR = 23.5


def simple_strategy_for(setup: SeasonSetup, config: PStoreConfig) -> SimpleStrategy:
    """Size the clock-driven Simple strategy the way an operator would:
    from the *typical* time-of-day profile of the training data.

    Day machines cover the typical daily peak (plus a small buffer);
    night machines cover the highest load seen inside the night window.
    Deviations from the pattern — promotions, spikes, Black Friday — are
    exactly what this sizing cannot anticipate (Fig. 13, right).
    """
    slots_per_day = 288
    usable = (setup.train_tps.size // slots_per_day) * slots_per_day
    profile = setup.train_tps[:usable].reshape(-1, slots_per_day).mean(axis=0)
    hours = np.arange(slots_per_day) * 24.0 / slots_per_day
    night_mask = (hours >= SIMPLE_NIGHT_HOUR) | (hours < SIMPLE_MORNING_HOUR)
    day_need = float(profile.max()) * 1.10
    night_need = float(profile[night_mask].max()) * 1.10
    day_machines = max(2, math.ceil(day_need / config.q))
    night_machines = max(1, math.ceil(night_need / config.q))
    return SimpleStrategy(
        day_machines=max(day_machines, night_machines),
        night_machines=min(day_machines, night_machines),
        slots_per_day=slots_per_day,
        morning_hour=SIMPLE_MORNING_HOUR,
        night_hour=SIMPLE_NIGHT_HOUR,
    )


def _run_sweep(
    setup: SeasonSetup,
    name: str,
    factory,
    q_fractions: Sequence[float],
    seed_history: bool,
) -> CapacityCostCurve:
    points: List[SweepPoint] = []
    for fraction in q_fractions:
        q = min(fraction * SATURATION_TPS, setup.config.q_hat)
        config = setup.config.with_q(q)
        strategy = factory(config, fraction)
        result = run_capacity_simulation(
            setup.trace,
            strategy,
            config,
            initial_machines=_initial_machines(setup, config.q),
            history_seed=list(setup.train_tps) if seed_history else [],
        )
        points.append(
            SweepPoint(
                strategy=name,
                q_fraction=fraction,
                q=config.q,
                cost_machine_slots=result.cost_machine_slots,
                average_machines=result.average_machines,
                pct_time_insufficient=result.pct_time_insufficient,
            )
        )
    return CapacityCostCurve(strategy=name, points=points)


def run_figure12(
    n_days: int = 135,
    seed: int = 7,
    q_fractions: Sequence[float] = DEFAULT_Q_FRACTIONS,
    setup: Optional[SeasonSetup] = None,
    include_oracle: bool = True,
) -> Figure12Result:
    """Sweep every allocation strategy over Q (Fig. 12).

    ``n_days`` and ``q_fractions`` can be reduced for quick runs; the
    paper uses the full 4.5 months.
    """
    setup = setup or season_setup(n_days=n_days, seed=seed)

    curves: Dict[str, CapacityCostCurve] = {}
    curves["p-store-spar"] = _run_sweep(
        setup,
        "p-store-spar",
        lambda cfg, f: PStoreStrategy(cfg, setup.spar, name="p-store-spar"),
        q_fractions,
        seed_history=True,
    )
    if include_oracle:
        curves["p-store-oracle"] = _run_sweep(
            setup,
            "p-store-oracle",
            lambda cfg, f: PStoreStrategy(
                cfg, setup.oracle, name="p-store-oracle"
            ),
            q_fractions,
            seed_history=True,
        )
    curves["reactive"] = _run_sweep(
        setup,
        "reactive",
        lambda cfg, f: ReactiveStrategy(cfg, scale_in_patience=12),
        q_fractions,
        seed_history=False,
    )
    curves["simple"] = _run_sweep(
        setup,
        "simple",
        lambda cfg, f: simple_strategy_for(setup, cfg),
        q_fractions,
        seed_history=False,
    )
    static_points: List[SweepPoint] = []
    for size in STATIC_SIZES:
        config = setup.config
        result = run_capacity_simulation(
            setup.trace,
            StaticStrategy(size),
            config,
            initial_machines=size,
        )
        static_points.append(
            SweepPoint(
                strategy=f"static-{size}",
                q_fraction=float("nan"),
                q=config.q,
                cost_machine_slots=result.cost_machine_slots,
                average_machines=result.average_machines,
                pct_time_insufficient=result.pct_time_insufficient,
            )
        )
    curves["static"] = CapacityCostCurve(strategy="static", points=static_points)

    # Baseline: P-Store SPAR at the default Q (0.65 of saturation).
    spar_curve = curves["p-store-spar"]
    default_fraction = min(
        q_fractions, key=lambda f: abs(f - 0.65)
    )
    baseline = next(
        p for p in spar_curve.points if p.q_fraction == default_fraction
    )
    default_runs: Dict[str, CapacitySimResult] = {}
    return Figure12Result(
        curves=curves,
        baseline_cost=baseline.cost_machine_slots,
        default_runs=default_runs,
        setup=setup,
    )


# ----------------------------------------------------------------------
# Sweep-cell protocol
# ----------------------------------------------------------------------

#: The Q-swept strategy families of Fig. 12.
SWEEP_FAMILIES = ("p-store-spar", "p-store-oracle", "reactive", "simple")


def grid(
    n_days: int = 135,
    seed: int = 7,
    q_fractions: Sequence[float] = DEFAULT_Q_FRACTIONS,
) -> list:
    """(family x Q-fraction) cells plus one cell per static size."""
    from ..runner import RunSpec

    specs = []
    for family in SWEEP_FAMILIES:
        for fraction in q_fractions:
            specs.append(
                RunSpec(
                    experiment="fig12",
                    cell=f"{family}@{fraction}",
                    seed=seed,
                    overrides=(
                        ("family", family),
                        ("q_fraction", float(fraction)),
                        ("n_days", int(n_days)),
                    ),
                )
            )
    for size in STATIC_SIZES:
        specs.append(
            RunSpec(
                experiment="fig12",
                cell=f"static-{size}",
                seed=seed,
                overrides=(
                    ("family", "static"),
                    ("size", int(size)),
                    ("n_days", int(n_days)),
                ),
            )
        )
    return specs


def run_cell(spec, config) -> dict:
    """One (strategy, Q) point of the capacity-cost plane."""
    from ..errors import ConfigurationError
    from .common import capacity_payload

    setup = season_setup(n_days=int(spec.option("n_days", 135)), seed=spec.seed)
    family = str(spec.option("family"))
    if family == "static":
        size = int(spec.option("size"))
        result = run_capacity_simulation(
            setup.trace, StaticStrategy(size), setup.config,
            initial_machines=size,
        )
        payload = capacity_payload(result)
        payload["family"] = family
        return payload

    fraction = float(spec.option("q_fraction"))
    cfg = setup.config.with_q(
        min(fraction * SATURATION_TPS, setup.config.q_hat)
    )
    seed_history = family.startswith("p-store")
    if family == "p-store-spar":
        strategy = PStoreStrategy(cfg, setup.spar, name="p-store-spar")
    elif family == "p-store-oracle":
        strategy = PStoreStrategy(cfg, setup.oracle, name="p-store-oracle")
    elif family == "reactive":
        strategy = ReactiveStrategy(cfg, scale_in_patience=12)
    elif family == "simple":
        strategy = simple_strategy_for(setup, cfg)
    else:
        raise ConfigurationError(f"unknown fig12 family {family!r}")
    result = run_capacity_simulation(
        setup.trace,
        strategy,
        cfg,
        initial_machines=_initial_machines(setup, cfg.q),
        history_seed=list(setup.train_tps) if seed_history else [],
    )
    payload = capacity_payload(result)
    payload.update({"family": family, "q_fraction": fraction, "q": cfg.q})
    return payload


def summarize(result: Figure12Result) -> str:
    lines = []
    for row in result.normalized_points():
        fraction = row["q_fraction"]
        q_label = "-" if fraction != fraction else f"{fraction:.2f}"
        lines.append(
            f"{row['strategy']} (Q x {q_label}): cost "
            f"{row['normalized_cost']:.2f}, insufficient "
            f"{row['pct_insufficient']:.2f}%"
        )
    return "\n".join(lines)
