"""Experiment: Figure 11 — reacting to an unexpected load spike.

When predictions are wrong (a flash crowd), P-Store's planner finds no
feasible schedule and falls back to a reactive scale-out, either at the
regular migration rate R or at R x 8.  The paper (a September 2016 spike
day) reports violations of 16/101/143 (p50/p95/p99) at rate R versus
22/44/51 at R x 8: boosting the rate hurts median latency slightly but
cuts total violation time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..config import default_config
from ..elasticity import PStoreStrategy
from ..sim import ElasticDbSimulator, SimulationResult
from ..workload import EventCalendar, LoadEvent, b2w_like_trace
from .common import BENCHMARK_BASE_LEVEL, TRAIN_DAYS, benchmark_setup
from .fig09 import ENGINE_SEED


@dataclass
class Figure11Result:
    """The spike-day runs at rate R and R x 8."""

    regular_rate: SimulationResult     # scale out at R
    boosted_rate: SimulationResult     # scale out at R x 8

    def violation_rows(self) -> Dict[str, Dict[float, int]]:
        return {
            "rate R": self.regular_rate.sla_violations(),
            "rate R x 8": self.boosted_rate.sla_violations(),
        }

    @property
    def boost_reduces_total_violations(self) -> bool:
        total_r = sum(self.regular_rate.sla_violations().values())
        total_8 = sum(self.boosted_rate.sla_violations().values())
        return total_8 < total_r


def _spike_trace(eval_days: int, seed: int, magnitude: float):
    """A benchmark trace whose *evaluation* window contains a flash
    spike the training data has never seen."""
    n_days = TRAIN_DAYS + eval_days
    slots_per_day = 1440
    spike_day = TRAIN_DAYS + eval_days / 2.0
    calendar = EventCalendar(
        [
            LoadEvent(
                start_slot=int(spike_day * slots_per_day),
                duration_slots=int(0.25 * slots_per_day),
                magnitude=magnitude,
                shape="spike",
                label="unexpected-spike",
            )
        ]
    )
    return b2w_like_trace(
        n_days=n_days,
        slot_seconds=60.0,
        seed=seed,
        base_level=BENCHMARK_BASE_LEVEL,
        calendar=calendar,
        name="b2w-flash-crowd",
    )


def run_figure11(
    eval_days: int = 1,
    seed: int = 33,
    spike_magnitude: float = 2.2,
) -> Figure11Result:
    """Run the spike day twice: emergency rate R vs R x 8."""
    config = default_config()
    trace = _spike_trace(eval_days, seed, spike_magnitude)
    setup = benchmark_setup(eval_days=eval_days, config=config, trace=trace)

    results = {}
    for label, multiplier in (("regular", 1.0), ("boosted", 8.0)):
        strategy = PStoreStrategy(
            config,
            setup.spar,
            emergency_rate_multiplier=multiplier,
            name=f"p-store-R{'' if multiplier == 1 else 'x8'}",
        )
        simulator = ElasticDbSimulator(
            config, max_machines=10, initial_machines=4, seed=ENGINE_SEED
        )
        results[label] = simulator.run(
            setup.offered_tps,
            strategy,
            history_seed_tps=setup.train_interval_tps,
        )
    return Figure11Result(
        regular_rate=results["regular"], boosted_rate=results["boosted"]
    )


# ----------------------------------------------------------------------
# Sweep-cell protocol
# ----------------------------------------------------------------------


def grid(eval_days: int = 1, seed: int = 33,
         spike_magnitude: float = 2.2) -> list:
    from ..runner import RunSpec

    return [
        RunSpec(
            experiment="fig11",
            cell=cell,
            strategy=f"p-store:emergency_rate={multiplier}",
            seed=seed,
            overrides=(
                ("eval_days", int(eval_days)),
                ("spike_magnitude", float(spike_magnitude)),
            ),
        )
        for cell, multiplier in (("rate-R", 1.0), ("rate-Rx8", 8.0))
    ]


def _prepare_cell(spec, config):
    """(simulator, offered, strategy, history) for one sweep cell —
    shared by the serial and tensor cell runners."""
    from ..elasticity import StrategySpec

    eval_days = int(spec.option("eval_days", 1))
    trace = _spike_trace(
        eval_days, spec.seed, float(spec.option("spike_magnitude", 2.2))
    )
    setup = benchmark_setup(eval_days=eval_days, config=config, trace=trace)
    parsed = StrategySpec.parse(spec.strategy)
    multiplier = float(parsed.param("emergency_rate", 1.0))
    strategy = PStoreStrategy(
        config,
        setup.spar,
        emergency_rate_multiplier=multiplier,
        name=f"p-store-R{'' if multiplier == 1 else 'x8'}",
    )
    simulator = ElasticDbSimulator(
        config, max_machines=10, initial_machines=4, seed=ENGINE_SEED
    )
    return simulator, setup.offered_tps, strategy, setup.train_interval_tps


def run_cell(spec, config) -> dict:
    from .common import sim_payload

    simulator, offered, strategy, history = _prepare_cell(spec, config)
    result = simulator.run(offered, strategy, history_seed_tps=history)
    return sim_payload(result)


def tensor_cell(spec, config):
    """One spike-day cell as a :class:`~repro.sim.tensor.TensorProgram`."""
    from ..sim.tensor import TensorProgram
    from .common import sim_payload

    simulator, offered, strategy, history = _prepare_cell(spec, config)
    return TensorProgram(
        simulator=simulator,
        offered_tps=offered,
        strategy=strategy,
        history_seed_tps=history,
        label=spec.label,
        finalize=sim_payload,
    )


def summarize(result: Figure11Result) -> str:
    lines = []
    for label, violations in result.violation_rows().items():
        parts = ", ".join(
            f"p{int(q)}={violations[q]}" for q in sorted(violations)
        )
        lines.append(f"{label}: [{parts}]")
    better = "yes" if result.boost_reduces_total_violations else "no"
    lines.append(f"boosting the rate reduces total violations: {better}")
    return "\n".join(lines)
