"""Experiment: Figure 1 — three days of load on a B2W database.

The paper's opening figure shows the diurnal pattern that motivates the
whole system: load peaks during the day, dips at night, and the peak is
about 10x the trough.  We regenerate the equivalent synthetic trace and
report its shape statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..workload import LoadTrace, b2w_like_trace


@dataclass
class Figure1Result:
    """Shape statistics of the regenerated Fig. 1 trace."""

    trace: LoadTrace
    peak_requests_per_min: float
    trough_requests_per_min: float
    peak_to_trough: float
    daily_autocorrelation: float


def run_figure1(n_days: int = 3, seed: int = 7) -> Figure1Result:
    """Generate the Fig. 1 trace (per-minute request counts)."""
    trace = b2w_like_trace(
        n_days=n_days,
        slot_seconds=60.0,
        seed=seed,
        base_level=22_000.0,  # Fig. 1 peaks near 2.2e4 requests/min
    )
    values = trace.values
    per_day = trace.slots_per_day
    if n_days >= 2:
        x = values[:-per_day] - values[:-per_day].mean()
        y = values[per_day:] - values[per_day:].mean()
        autocorr = float((x * y).mean() / (x.std() * y.std()))
    else:
        autocorr = float("nan")
    # Shape statistics over smoothed values (per-slot noise would make
    # the raw trough unrepresentative of the curve the paper plots); the
    # peak/trough ratio is the mean of the per-day ratios, which is what
    # "the peak load is about 10x the trough" refers to.
    smooth = trace.smoothed(15)
    ratios = []
    for day in range(n_days):
        day_slice = smooth.values[day * per_day : (day + 1) * per_day]
        ratios.append(day_slice.max() / day_slice.min())
    return Figure1Result(
        trace=trace,
        peak_requests_per_min=smooth.peak,
        trough_requests_per_min=smooth.trough,
        peak_to_trough=float(np.mean(ratios)),
        daily_autocorrelation=autocorr,
    )


# ----------------------------------------------------------------------
# Sweep-cell protocol
# ----------------------------------------------------------------------


def grid(n_days: int = 3, seed: int = 7) -> list:
    from ..runner import RunSpec

    return [
        RunSpec(
            experiment="fig01",
            cell="trace-shape",
            seed=seed,
            overrides=(("n_days", int(n_days)),),
        )
    ]


def run_cell(spec, config) -> dict:
    result = run_figure1(
        n_days=int(spec.option("n_days", 3)), seed=spec.seed
    )
    return {
        "peak_requests_per_min": result.peak_requests_per_min,
        "trough_requests_per_min": result.trough_requests_per_min,
        "peak_to_trough": result.peak_to_trough,
        "daily_autocorrelation": result.daily_autocorrelation,
    }


def summarize(result: Figure1Result) -> str:
    return (
        f"peak {result.peak_requests_per_min:,.0f}/min, trough "
        f"{result.trough_requests_per_min:,.0f}/min "
        f"(ratio {result.peak_to_trough:.1f}x), daily autocorrelation "
        f"{result.daily_autocorrelation:.3f}"
    )
