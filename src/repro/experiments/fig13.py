"""Experiment: Figure 13 — effective capacity around Black Friday.

Two 4-day windows of the seasonal simulation: an ordinary window at the
start, and the Black Friday surge (hour ~2800 of the trace, i.e. day
~116).  The claim: the "Simple" clock-driven strategy looks adequate on
ordinary days but breaks on the surge, while P-Store (predictive +
reactive fallback) keeps effective capacity above the load even on
Black Friday.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..elasticity import PStoreStrategy
from ..sim import CapacitySimResult, run_capacity_simulation
from .fig12 import SeasonSetup, season_setup, simple_strategy_for


@dataclass
class WindowSeries:
    """Load and per-strategy effective capacity for one 4-day window."""

    start_day: float
    hours: np.ndarray
    load_tps: np.ndarray
    eff_cap: Dict[str, np.ndarray]

    def insufficient_fraction(self, strategy: str) -> float:
        """Fraction of the window where load exceeds effective capacity."""
        cap = self.eff_cap[strategy]
        return float(np.mean(self.load_tps > cap + 1e-9))


@dataclass
class Figure13Result:
    """Ordinary and Black-Friday windows plus full runs."""

    ordinary: WindowSeries
    black_friday: WindowSeries
    runs: Dict[str, CapacitySimResult]
    setup: SeasonSetup


def _window(
    setup: SeasonSetup,
    runs: Dict[str, CapacitySimResult],
    start_day: float,
    n_days: float,
) -> WindowSeries:
    slots_per_day = 288
    lo = int(start_day * slots_per_day)
    hi = int((start_day + n_days) * slots_per_day)
    load = setup.eval_tps[lo:hi]
    hours = (np.arange(lo, hi) * 300.0) / 3600.0
    eff = {
        name: result.eff_cap_max[lo:hi] for name, result in runs.items()
    }
    return WindowSeries(
        start_day=start_day, hours=hours, load_tps=load, eff_cap=eff
    )


def run_figure13(
    n_days: int = 120,
    seed: int = 7,
    setup: Optional[SeasonSetup] = None,
    black_friday_day: int = 116,
) -> Figure13Result:
    """Simulate P-Store SPAR and Simple over the season; extract windows."""
    setup = setup or season_setup(n_days=n_days, seed=seed)
    config = setup.config
    initial = max(1, math.ceil(float(setup.eval_tps[0]) * 1.3 / config.q))

    runs: Dict[str, CapacitySimResult] = {}
    runs["p-store-spar"] = run_capacity_simulation(
        setup.trace,
        PStoreStrategy(config, setup.spar, name="p-store-spar"),
        config,
        initial_machines=initial,
        history_seed=list(setup.train_tps),
    )
    runs["simple"] = run_capacity_simulation(
        setup.trace,
        simple_strategy_for(setup, config),
        config,
        initial_machines=initial,
    )

    eval_days = len(setup.trace) / 288.0
    bf_start = min(black_friday_day - 1.5, eval_days - 4.0)
    return Figure13Result(
        ordinary=_window(setup, runs, start_day=0.5, n_days=4.0),
        black_friday=_window(setup, runs, start_day=max(0.0, bf_start), n_days=4.0),
        runs=runs,
        setup=setup,
    )


# ----------------------------------------------------------------------
# Sweep-cell protocol
# ----------------------------------------------------------------------


def grid(n_days: int = 120, seed: int = 7) -> list:
    from ..runner import RunSpec

    return [
        RunSpec(
            experiment="fig13",
            cell=cell,
            strategy=strategy,
            seed=seed,
            overrides=(("n_days", int(n_days)),),
        )
        for cell, strategy in (
            ("p-store-spar", "p-store:name=p-store-spar"),
            ("simple", "simple:6/3"),
        )
    ]


def run_cell(spec, config) -> dict:
    from ..elasticity import StrategySpec
    from ..sim import run_capacity_simulation
    from .common import capacity_payload

    n_days = int(spec.option("n_days", 120))
    setup = season_setup(n_days=n_days, seed=spec.seed)
    cfg = setup.config
    initial = max(1, math.ceil(float(setup.eval_tps[0]) * 1.3 / cfg.q))
    parsed = StrategySpec.parse(spec.strategy)
    if parsed.kind == "p-store":
        strategy = parsed.build(cfg, predictor=setup.spar)
        history = list(setup.train_tps)
    else:
        strategy = simple_strategy_for(setup, cfg)
        history = []
    result = run_capacity_simulation(
        setup.trace, strategy, cfg,
        initial_machines=initial, history_seed=history,
    )
    return capacity_payload(result)


def summarize(result: Figure13Result) -> str:
    lines = []
    for name in result.runs:
        ordinary = result.ordinary.insufficient_fraction(name)
        surge = result.black_friday.insufficient_fraction(name)
        lines.append(
            f"{name}: insufficient {100 * ordinary:.1f}% of the ordinary "
            f"window, {100 * surge:.1f}% of the Black Friday window"
        )
    return "\n".join(lines)
