"""Experiment: Figure 3 — the goal of the predictive elasticity algorithm.

The paper's schematic: predicted load over T = 9 intervals, starting at
B = 2 machines and ending at A = 4, where the planner must find a series
of moves such that capacity always exceeds demand at minimum cost —
delaying scale-outs as long as possible while starting them early enough
that migration finishes before each rise.

We regenerate it concretely: a rising demand curve, the DP's chosen
moves, and the resulting capacity staircase (with effective capacity
during the moves).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..config import PStoreConfig, default_config
from ..core import Planner, model
from ..core.moves import MoveSchedule


@dataclass
class Figure3Result:
    """The schematic scenario: demand, plan, and capacity trajectory."""

    demand_tps: np.ndarray          # L[1..T]
    schedule: MoveSchedule
    capacity_tps: np.ndarray        # effective capacity per interval
    machines_end: int
    total_cost: float

    @property
    def capacity_always_exceeds_demand(self) -> bool:
        return bool(np.all(self.capacity_tps >= self.demand_tps - 1e-9))

    def rows(self) -> List[tuple]:
        """(interval, demand, capacity, machines-after) rows for display."""
        out = []
        for t in range(self.demand_tps.size):
            out.append(
                (
                    t + 1,
                    float(self.demand_tps[t]),
                    float(self.capacity_tps[t]),
                    self.schedule.machines_at(t + 1),
                )
            )
        return out


def run_figure3(
    horizon: int = 9,
    start_machines: int = 2,
    config: Optional[PStoreConfig] = None,
) -> Figure3Result:
    """Plan the Fig. 3 scenario and compute the capacity trajectory."""
    config = config or default_config().with_interval(600.0)
    q = config.q
    # A demand curve rising from ~1.6 to ~3.7 machines' worth, like the
    # schematic (2 machines suffice at t=0; 4 are needed by t=T).
    demand = q * np.linspace(1.6, 3.7, horizon)
    planner = Planner(config)
    schedule = planner.plan(list(demand), start_machines, current_load=q * 1.5)

    capacity = np.empty(horizon)
    for move in schedule:
        for t in range(move.start, move.end):
            if move.is_noop:
                capacity[t] = model.capacity(move.after, q)
            else:
                fraction = (t - move.start + 1) / move.duration
                capacity[t] = model.effective_capacity(
                    move.before, move.after, fraction, q
                )
    total_cost = schedule.total_cost(
        lambda m: planner.move_cost(m.before, m.after)
        if not m.is_noop
        else float(m.duration * m.before)
    )
    return Figure3Result(
        demand_tps=demand,
        schedule=schedule,
        capacity_tps=capacity,
        machines_end=schedule.final_machines,
        total_cost=total_cost,
    )


# ----------------------------------------------------------------------
# Sweep-cell protocol
# ----------------------------------------------------------------------


def grid(horizon: int = 9, start_machines: int = 2) -> list:
    from ..runner import RunSpec

    return [
        RunSpec(
            experiment="fig03",
            cell="schematic-plan",
            overrides=(
                ("horizon", int(horizon)),
                ("start_machines", int(start_machines)),
            ),
        )
    ]


def run_cell(spec, config) -> dict:
    result = run_figure3(
        horizon=int(spec.option("horizon", 9)),
        start_machines=int(spec.option("start_machines", 2)),
    )
    return {
        "machines_end": result.machines_end,
        "total_cost": result.total_cost,
        "capacity_always_exceeds_demand": result.capacity_always_exceeds_demand,
    }


def summarize(result: Figure3Result) -> str:
    ok = "yes" if result.capacity_always_exceeds_demand else "NO"
    return (
        f"plan ends at {result.machines_end} machines, cost "
        f"{result.total_cost:,.0f}; capacity covers demand: {ok}"
    )
