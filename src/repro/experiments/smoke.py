"""Experiment: ``smoke`` — a fast capacity-sim grid for sweep testing.

Not a paper artefact.  This grid exists so ``pstore sweep`` has a
many-celled, seconds-fast workload for CI smoke jobs and for the
parallel-vs-serial bit-identity tests: four cheap strategies crossed
with two workload seeds over a 2-day trace at 5-minute slots (8 cells,
each well under a second).

Cells honour an ``explode`` override (fail on purpose) so the
resume-after-failure path of the executor can be exercised end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..elasticity import StrategySpec
from ..sim import CapacitySimResult, run_capacity_simulation
from ..workload import b2w_like_trace
from .common import capacity_payload

#: Strategy specs crossed with seeds to form the grid.
SMOKE_STRATEGIES = ("static:4", "static:6", "reactive", "simple:6/3")

#: Workload seeds (two distinct traces).
SMOKE_SEEDS = (7, 11)

#: Trace shape: 2 days at 5-minute slots = 576 planner slots per cell.
SMOKE_DAYS = 2
SMOKE_SLOT_SECONDS = 300.0
SLOTS_PER_DAY = 288


@dataclass
class SmokeResult:
    """Per-cell capacity-sim results, keyed by cell name."""

    runs: Dict[str, CapacitySimResult]


def _cell_name(strategy_text: str, seed: int) -> str:
    return f"{strategy_text.replace(':', '-').replace('/', '-')}@{seed}"


def grid(
    strategies: Sequence[str] = SMOKE_STRATEGIES,
    seeds: Sequence[int] = SMOKE_SEEDS,
    n_days: int = SMOKE_DAYS,
) -> List:
    """strategies x seeds cells (8 by default)."""
    from ..runner import RunSpec

    return [
        RunSpec(
            experiment="smoke",
            cell=_cell_name(text, seed),
            strategy=text,
            seed=seed,
            overrides=(("n_days", int(n_days)),),
        )
        for text in strategies
        for seed in seeds
    ]


def run_one(
    strategy: StrategySpec, seed: int, n_days: int, config
) -> CapacitySimResult:
    """One hermetic capacity-sim run of the smoke workload."""
    config = config.with_interval(SMOKE_SLOT_SECONDS)
    trace = b2w_like_trace(
        n_days=n_days,
        slot_seconds=SMOKE_SLOT_SECONDS,
        seed=seed,
        base_level=1250.0 * SMOKE_SLOT_SECONDS,
    )
    built = strategy.build(config, slots_per_day=SLOTS_PER_DAY)
    initial = (
        int(strategy.param("machines"))
        if strategy.kind == "static"
        else 4
    )
    return run_capacity_simulation(
        trace, built, config, initial_machines=initial
    )


def run_cell(spec, config) -> dict:
    if spec.option("explode"):
        raise RuntimeError(f"cell {spec.label} exploded on request")
    result = run_one(
        StrategySpec.parse(spec.strategy),
        seed=spec.seed,
        n_days=int(spec.option("n_days", SMOKE_DAYS)),
        config=config,
    )
    return capacity_payload(result)


def run_smoke(config=None, n_days: int = SMOKE_DAYS) -> SmokeResult:
    """Serial runner: execute the whole grid in-process."""
    from ..config import default_config

    config = config or default_config()
    runs: Dict[str, CapacitySimResult] = {}
    for text in SMOKE_STRATEGIES:
        for seed in SMOKE_SEEDS:
            runs[_cell_name(text, seed)] = run_one(
                StrategySpec.parse(text), seed, n_days, config
            )
    return SmokeResult(runs=runs)


def summarize(result: SmokeResult) -> str:
    return "\n".join(
        f"{name}: {run.summary()}" for name, run in sorted(result.runs.items())
    )
