"""Experiment: Figure 5 — SPAR's predictions for the B2W load.

(a) a 24-hour track of actual vs 60-minute-ahead predicted load;
(b) mean relative error as a function of the forecast window tau.

The paper trains on four weeks of per-minute data with n = 7 periods and
m = 30 recent measurements, reporting ~10.4% MRE at tau = 60 minutes and
graceful decay with tau.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from ..prediction import SparPredictor
from ..workload import b2w_like_trace

#: Forecast windows (minutes) swept in Fig. 5b.
FIGURE5_TAUS = (10, 20, 30, 40, 50, 60)


@dataclass
class Figure5Result:
    """SPAR-on-B2W track and MRE-vs-tau sweep."""

    actual_24h: np.ndarray
    predicted_24h: np.ndarray
    mre_by_tau: Dict[int, float]      # tau (minutes) -> MRE fraction
    predictor: SparPredictor

    @property
    def mre_60min_pct(self) -> float:
        return 100.0 * self.mre_by_tau[max(self.mre_by_tau)]


def run_figure5(
    train_days: int = 28,
    eval_days: int = 7,
    seed: int = 7,
    taus: Sequence[int] = FIGURE5_TAUS,
    track_stride: int = 10,
    sweep_stride: int = 31,
) -> Figure5Result:
    """Fit SPAR on four weeks of per-minute data and evaluate it.

    ``track_stride``/``sweep_stride`` thin the evaluation points to keep
    runtime small without changing the statistics materially.
    """
    trace = b2w_like_trace(
        n_days=train_days + eval_days, slot_seconds=60.0, seed=seed
    )
    period = trace.slots_per_day
    train = train_days * period
    spar = SparPredictor(period=period, n_periods=7, m_recent=30).fit(
        trace.values[:train]
    )

    # Panel (a): 60-minute-ahead track over the first held-out day.
    tau = max(taus)
    track = spar.backtest(
        trace.values,
        tau=tau,
        start=train,
        stop=train + period,
        step=track_stride,
    )

    # Panel (b): MRE vs tau over the full held-out week.
    mre_by_tau: Dict[int, float] = {}
    for t in taus:
        result = spar.backtest(
            trace.values,
            tau=t,
            start=train,
            stop=train + eval_days * period,
            step=sweep_stride,
        )
        mre_by_tau[t] = result.mean_relative_error()

    return Figure5Result(
        actual_24h=track.actual,
        predicted_24h=track.predicted,
        mre_by_tau=mre_by_tau,
        predictor=spar,
    )


# ----------------------------------------------------------------------
# Sweep-cell protocol
# ----------------------------------------------------------------------


def grid(taus=FIGURE5_TAUS, seed: int = 7, eval_days: int = 7) -> list:
    from ..runner import RunSpec

    return [
        RunSpec(
            experiment="fig05",
            cell=f"tau-{tau}",
            seed=seed,
            overrides=(("tau", int(tau)), ("eval_days", int(eval_days))),
        )
        for tau in taus
    ]


def run_cell(spec, config) -> dict:
    tau = int(spec.option("tau", 60))
    result = run_figure5(
        eval_days=int(spec.option("eval_days", 7)),
        seed=spec.seed,
        taus=(tau,),
    )
    return {"tau_minutes": tau, "mre": result.mre_by_tau[tau]}


def summarize(result: Figure5Result) -> str:
    sweep = ", ".join(
        f"tau={tau}m: {100.0 * mre:.1f}%"
        for tau, mre in sorted(result.mre_by_tau.items())
    )
    return f"SPAR MRE on B2W: {sweep}"
