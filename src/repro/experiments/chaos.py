"""Experiment: chaos recovery — SLA impact and MTTR under injected faults.

The paper evaluates P-Store on a fault-free cluster.  This experiment
re-runs the compressed B2W benchmark with a :class:`FaultScenario`
injected (node crashes, stragglers, wedged and corrupted transfers,
forecast drift) and measures, for each provisioning strategy under an
*identical* fault schedule:

* SLA violation seconds (the paper's Table 2 metric, now under faults);
* detection latency and mean/max time-to-recover per fault;
* whether the run converged (every fault recovered, cluster feasible).

Predictive provisioning is compared against the reactive baseline: the
interesting result is that prediction keeps headroom provisioned *ahead*
of a fault, so losing a machine hurts less and recovery re-planning
starts from a healthier allocation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..config import PStoreConfig, default_config
from ..elasticity import PStoreStrategy, ReactiveStrategy
from ..faults import (
    FaultInjector,
    FaultRecord,
    FaultScenario,
    RecoveryStats,
    crash_during_migration_scenario,
    recovery_stats,
    render_fault_report,
)
from ..sim import ElasticDbSimulator, SimulationResult
from .common import benchmark_setup
from .fig09 import ENGINE_SEED


@dataclass
class ChaosRun:
    """One strategy's run under the scenario."""

    label: str
    result: SimulationResult
    records: List[FaultRecord]
    chronicle: List[dict]
    stats: RecoveryStats

    @property
    def converged(self) -> bool:
        return self.stats.all_recovered

    def report(self) -> str:
        return render_fault_report(self.records)


@dataclass
class ChaosResult:
    """Runs of every strategy plus the fault-free predictive baseline."""

    scenario: FaultScenario
    runs: Dict[str, ChaosRun]
    baseline: SimulationResult

    def violation_rows(self) -> Dict[str, Dict[float, int]]:
        rows = {"p-store (no faults)": self.baseline.sla_violations()}
        for label, run in self.runs.items():
            rows[label] = run.result.sla_violations()
        return rows

    @property
    def all_converged(self) -> bool:
        return all(run.converged for run in self.runs.values())


def run_chaos(
    scenario: Optional[FaultScenario] = None,
    eval_days: int = 1,
    seed: int = 21,
    config: Optional[PStoreConfig] = None,
    include_reactive: bool = True,
) -> ChaosResult:
    """Run the benchmark under a fault scenario, strategy by strategy.

    Every strategy gets a *fresh* injector built from the same scenario
    (same specs, same seed), so the fault schedules are identical and
    the recovery timelines are directly comparable.
    """
    scenario = scenario or crash_during_migration_scenario(migration=1, seed=7)
    config = config or default_config()
    setup = benchmark_setup(eval_days=eval_days, seed=seed, config=config)

    runs: Dict[str, ChaosRun] = {}

    def execute(label: str, make_strategy, injector) -> SimulationResult:
        simulator = ElasticDbSimulator(
            config,
            max_machines=10,
            initial_machines=4,
            seed=ENGINE_SEED,
            injector=injector,
        )
        return simulator.run(
            setup.offered_tps,
            make_strategy(injector),
            history_seed_tps=setup.train_interval_tps,
        )

    baseline = execute(
        "baseline",
        lambda _inj: PStoreStrategy(config, setup.spar, name="p-store"),
        None,
    )

    injector = FaultInjector(scenario)
    result = execute(
        "p-store",
        lambda inj: PStoreStrategy(config, setup.spar, name="p-store",
                                   injector=inj),
        injector,
    )
    runs["p-store"] = ChaosRun(
        label="p-store",
        result=result,
        records=list(injector.records),
        chronicle=list(injector.chronicle),
        stats=recovery_stats(injector.records),
    )

    if include_reactive:
        injector = FaultInjector(scenario)
        result = execute(
            "reactive",
            lambda _inj: ReactiveStrategy(config, max_machines=10),
            injector,
        )
        runs["reactive"] = ChaosRun(
            label="reactive",
            result=result,
            records=list(injector.records),
            chronicle=list(injector.chronicle),
            stats=recovery_stats(injector.records),
        )

    return ChaosResult(scenario=scenario, runs=runs, baseline=baseline)


# ----------------------------------------------------------------------
# Sweep-cell protocol
# ----------------------------------------------------------------------

#: (cell name, strategy spec, faults enabled) — the three chaos runs.
CHAOS_CELLS = (
    ("baseline", "p-store", False),
    ("p-store", "p-store", True),
    ("reactive", "reactive", True),
)


def grid(eval_days: int = 1, seed: int = 21, scenario_seed: int = 7) -> list:
    """One cell per (strategy, faults on/off) combination."""
    from ..runner import RunSpec

    return [
        RunSpec(
            experiment="chaos",
            cell=name,
            strategy=strategy,
            seed=seed,
            overrides=(
                ("eval_days", int(eval_days)),
                ("faults", bool(faulted)),
                ("scenario_seed", int(scenario_seed)),
            ),
        )
        for name, strategy, faulted in CHAOS_CELLS
    ]


def run_cell(spec, config) -> dict:
    """One strategy under the canonical crash-during-migration drill."""
    from ..elasticity import StrategySpec
    from .common import sim_payload

    setup = benchmark_setup(
        eval_days=int(spec.option("eval_days", 1)),
        seed=spec.seed,
        config=config,
    )
    injector = None
    if spec.option("faults"):
        scenario = crash_during_migration_scenario(
            migration=1, seed=int(spec.option("scenario_seed", 7))
        )
        injector = FaultInjector(scenario)
    parsed = StrategySpec.parse(spec.strategy)
    if parsed.kind == "p-store":
        strategy = PStoreStrategy(
            config, setup.spar, name="p-store", injector=injector
        )
    else:
        strategy = parsed.build(config, predictor=setup.spar)
    simulator = ElasticDbSimulator(
        config,
        max_machines=10,
        initial_machines=4,
        seed=ENGINE_SEED,
        injector=injector,
    )
    result = simulator.run(
        setup.offered_tps,
        strategy,
        history_seed_tps=setup.train_interval_tps,
    )
    payload = sim_payload(result)
    if injector is not None:
        stats = recovery_stats(injector.records)
        payload["recovery"] = {
            "injected": stats.injected,
            "detected": stats.detected,
            "recovered": stats.recovered,
            "mean_time_to_detect": stats.mean_time_to_detect,
            "mean_time_to_recover": stats.mean_time_to_recover,
            "max_time_to_recover": stats.max_time_to_recover,
            "converged": stats.all_recovered,
        }
        payload["chronicle"] = list(injector.chronicle)
    return payload


def summarize(result: ChaosResult) -> str:
    lines = [f"scenario: {len(result.scenario.faults)} fault(s)"]
    for label, violations in result.violation_rows().items():
        parts = ", ".join(
            f"p{int(q)}={violations[q]}" for q in sorted(violations)
        )
        lines.append(f"{label}: [{parts}]")
    lines.append(f"all converged: {result.all_converged}")
    return "\n".join(lines)
