"""Experiment: Figure 7 — single-machine throughput ramp.

The parameter-discovery experiment of Sec. 8.1: drive one 6-partition
server with a steadily increasing transaction rate and find the
saturation point — the paper measures 438 txn/s, then sets
Q-hat = 350 (80%) and Q = 285 (65%).

We reproduce it with the calibrated queueing engine: offered load ramps
linearly, completed throughput plateaus at saturation, and average
latency explodes past it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import PStoreConfig, default_config
from ..elasticity import StaticStrategy
from ..sim import ElasticDbSimulator


@dataclass
class Figure7Result:
    """Throughput/latency ramp and derived Q, Q-hat."""

    offered_tps: np.ndarray
    completed_tps: np.ndarray
    p50_ms: np.ndarray
    p99_ms: np.ndarray
    saturation_tps: float          # measured completed-throughput plateau
    q_hat: float                   # 80% of saturation
    q: float                       # 65% of saturation
    latency_knee_tps: float        # offered rate where p99 crosses the SLA


def run_figure7(
    max_offered: float = 900.0,
    duration_seconds: int = 2500,
    config: PStoreConfig | None = None,
    seed: int = 5,
) -> Figure7Result:
    """Ramp a single server from idle to far beyond saturation."""
    config = config or default_config()
    offered = np.linspace(10.0, max_offered, duration_seconds)
    simulator = ElasticDbSimulator(
        config,
        max_machines=1,
        initial_machines=1,
        seed=seed,
        engine_kwargs={"hot_episode_rate": 0.0, "skew_sigma": 0.02},
    )
    result = simulator.run(offered, StaticStrategy(1))
    completed = result.completed_tps
    p50 = result.latency.series(50.0)
    p99 = result.latency.series(99.0)

    # Saturation = the completed-throughput plateau (mean of the last 5%).
    tail = max(10, duration_seconds // 20)
    saturation = float(completed[-tail:].mean())

    over = np.nonzero(p99 > config.sla_latency_ms)[0]
    knee = float(offered[over[0]]) if over.size else float("inf")
    return Figure7Result(
        offered_tps=offered,
        completed_tps=completed,
        p50_ms=p50,
        p99_ms=p99,
        saturation_tps=saturation,
        q_hat=0.80 * saturation,
        q=0.65 * saturation,
        latency_knee_tps=knee,
    )


# ----------------------------------------------------------------------
# Sweep-cell protocol
# ----------------------------------------------------------------------


def grid(duration_seconds: int = 2500, seed: int = 5) -> list:
    from ..runner import RunSpec

    return [
        RunSpec(
            experiment="fig07",
            cell="saturation-ramp",
            seed=seed,
            overrides=(("duration_seconds", int(duration_seconds)),),
        )
    ]


def run_cell(spec, config) -> dict:
    result = run_figure7(
        duration_seconds=int(spec.option("duration_seconds", 2500)),
        config=config,
        seed=spec.seed,
    )
    return {
        "saturation_tps": result.saturation_tps,
        "q_hat": result.q_hat,
        "q": result.q,
        "latency_knee_tps": result.latency_knee_tps,
    }


def summarize(result: Figure7Result) -> str:
    return (
        f"saturation {result.saturation_tps:.0f} txn/s -> "
        f"Q-hat {result.q_hat:.0f}, Q {result.q:.0f}; p99 crosses the SLA "
        f"at {result.latency_knee_tps:.0f} txn/s offered"
    )
