"""Experiment: Table 2 — SLA violations and machine usage per approach.

The paper's headline comparison: seconds in which the 50th/95th/99th
percentile latency exceeded 500 ms, plus the average machines allocated,
for static-10, static-4, reactive, and P-Store.  The claims to
reproduce: static-10 has the fewest violations but >= 2x the machines;
P-Store causes roughly a third of the reactive approach's violations
(72% fewer, summed) while using about half of peak provisioning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..sim.metrics import SlaRow, sla_table
from .fig09 import Figure9Result, run_figure9

#: The paper's Table 2, for side-by-side reporting.
PAPER_TABLE2 = (
    SlaRow("static-10", 0, 13, 25, 10.0),
    SlaRow("static-4", 0, 157, 249, 4.0),
    SlaRow("reactive", 35, 220, 327, 4.02),
    SlaRow("p-store", 0, 37, 92, 5.05),
)


@dataclass
class Table2Result:
    """Measured Table 2 rows plus comparison helpers."""

    rows: List[SlaRow]
    figure9: Figure9Result

    def row(self, approach: str) -> SlaRow:
        for row in self.rows:
            if row.approach == approach:
                return row
        raise KeyError(approach)

    def total_violations(self, approach: str) -> int:
        row = self.row(approach)
        return row.violations_p50 + row.violations_p95 + row.violations_p99

    @property
    def pstore_vs_reactive_reduction_pct(self) -> float:
        """The paper's "72% fewer latency violations" headline."""
        reactive = self.total_violations("reactive")
        pstore = self.total_violations("p-store")
        return 100.0 * (reactive - pstore) / max(reactive, 1)


def run_table2(
    figure9: Optional[Figure9Result] = None,
    eval_days: int = 3,
    seed: int = 21,
) -> Table2Result:
    """Compute Table 2 (reusing Figure 9 runs when supplied)."""
    figure9 = figure9 or run_figure9(eval_days=eval_days, seed=seed)
    order = ["static-10", "static-4", "reactive", "p-store"]
    results = [figure9.runs[name] for name in order if name in figure9.runs]
    return Table2Result(rows=sla_table(results), figure9=figure9)


# ----------------------------------------------------------------------
# Sweep-cell protocol (reuses fig09's cells)
# ----------------------------------------------------------------------


def grid(eval_days: int = 3, seed: int = 21) -> list:
    from .fig09 import grid as fig09_grid

    return fig09_grid(eval_days=eval_days, seed=seed)


def summarize(result: Table2Result) -> str:
    lines = []
    for row in result.rows:
        lines.append(
            f"{row.approach}: p50={row.violations_p50} "
            f"p95={row.violations_p95} p99={row.violations_p99} "
            f"avg machines {row.average_machines:.2f}"
        )
    lines.append(
        "p-store vs reactive: "
        f"{result.pstore_vs_reactive_reduction_pct:.0f}% fewer violations"
    )
    return "\n".join(lines)
