"""Ablation experiments for P-Store's design choices.

These are not in the paper; they quantify the contribution of individual
mechanisms DESIGN.md calls out:

* **effective-capacity awareness** — what if the planner treated a move
  as instantly delivering the target capacity (ignoring Eq. 7)?
* **three-phase schedule** — round counts with vs without Phase 3's
  partial-fill trick (Table 1's 11 vs >= 12 rounds);
* **scale-in debounce** — reconfiguration churn with and without the
  3-cycle confirmation heuristic;
* **prediction inflation** — the cost/violation trade of the 15% buffer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..config import PStoreConfig, default_config
from ..core import Planner, model
from ..core.moves import MoveSchedule
from ..elasticity import PStoreStrategy
from ..prediction import OraclePredictor
from ..sim import run_capacity_simulation
from ..squall import build_migration_schedule
from ..workload import b2w_like_trace


# ----------------------------------------------------------------------
# Ablation 1: effective-capacity awareness in the planner
# ----------------------------------------------------------------------


class _EffCapBlindPlanner(Planner):
    """A planner that pretends capacity jumps instantly to cap(A)."""

    def _effcap_profile(self, before, after, duration):
        # Scale-out: assume full target capacity immediately; scale-in:
        # assume the before-capacity persists until the move ends.
        if after > before:
            return tuple(model.capacity(after, self._config.q) for _ in range(duration))
        return tuple(model.capacity(before, self._config.q) for _ in range(duration))


@dataclass
class EffCapAblationResult:
    """Feasibility and underprovisioning with/without Eq. 7."""

    aware_feasible: bool
    blind_feasible: bool
    blind_underprovision_intervals: int   # intervals where the blind plan
                                          # actually dips below the load
    load: List[float]


def run_effcap_ablation(
    config: Optional[PStoreConfig] = None,
) -> EffCapAblationResult:
    """Plan a steep ramp with and without Eq. 7 awareness.

    At one-minute intervals a 2 -> 3 move spans ~5 intervals, so a
    planner that believes capacity arrives instantly will happily let the
    move straddle the load jump; evaluating its schedule under the *true*
    effective capacity exposes underprovisioned intervals.
    """
    config = config or default_config().with_interval(60.0)
    q = config.q
    # Flat just under 2 machines' capacity, then a jump to nearly 3.
    load = [q * 1.9] * 14 + [q * 2.9] * 10

    aware = Planner(config)
    blind = _EffCapBlindPlanner(config)

    def try_plan(planner: Planner) -> Optional[MoveSchedule]:
        from ..errors import InfeasiblePlanError

        try:
            return planner.plan(load, initial_machines=2)
        except InfeasiblePlanError:
            return None

    aware_schedule = try_plan(aware)
    blind_schedule = try_plan(blind)

    underprovision = 0
    if blind_schedule is not None:
        for move in blind_schedule:
            if move.is_noop:
                continue
            for i in range(1, move.duration + 1):
                true_eff = model.effective_capacity(
                    move.before, move.after, i / move.duration, q
                )
                if load[move.start + i - 1] > true_eff + 1e-9:
                    underprovision += 1
    return EffCapAblationResult(
        aware_feasible=aware_schedule is not None,
        blind_feasible=blind_schedule is not None,
        blind_underprovision_intervals=underprovision,
        load=load,
    )


# ----------------------------------------------------------------------
# Ablation 2: three-phase schedule vs naive full blocks
# ----------------------------------------------------------------------


@dataclass
class ScheduleAblationRow:
    """Round counts for one move, phased vs naive."""

    before: int
    after: int
    phased_rounds: int
    naive_rounds: int

    @property
    def saved_rounds(self) -> int:
        return self.naive_rounds - self.phased_rounds


@dataclass
class ScheduleAblationResult:
    """All schedule-ablation rows."""

    rows: List[ScheduleAblationRow]

    @property
    def total_saved(self) -> int:
        return sum(r.saved_rounds for r in self.rows)


def run_schedule_ablation(
    cases: Sequence[Tuple[int, int]] = ((3, 14), (3, 11), (4, 15), (5, 23), (2, 7)),
) -> ScheduleAblationResult:
    """Compare the 3-phase schedule against naive ceil(delta/s) blocks."""
    rows = []
    for before, after in cases:
        schedule = build_migration_schedule(before, after)
        smaller = min(before, after)
        delta = abs(after - before)
        naive = math.ceil(delta / smaller) * smaller if delta > smaller else max(smaller, delta)
        rows.append(
            ScheduleAblationRow(
                before=before,
                after=after,
                phased_rounds=schedule.n_rounds,
                naive_rounds=naive,
            )
        )
    return ScheduleAblationResult(rows=rows)


# ----------------------------------------------------------------------
# Ablation 3: scale-in confirmation debounce
# ----------------------------------------------------------------------


@dataclass
class DebounceAblationResult:
    """Move counts and costs with/without debounce."""

    moves_with_debounce: int
    moves_without_debounce: int
    cost_with_debounce: float
    cost_without_debounce: float


def run_debounce_ablation(
    n_days: int = 7,
    seed: int = 19,
) -> DebounceAblationResult:
    """Noisy daily load: count reconfigurations with debounce 3 vs 1."""
    import dataclasses

    base = default_config().with_interval(300.0)
    trace = b2w_like_trace(
        n_days=n_days,
        slot_seconds=300.0,
        seed=seed,
        base_level=1250.0 * 300.0,
        noise_sigma=0.10,
    )
    truth = trace.as_rate_per_second()
    results = {}
    for confirmations in (3, 1):
        config = dataclasses.replace(base, scale_in_confirmations=confirmations)
        strategy = PStoreStrategy(
            config, OraclePredictor(truth), name=f"p-store-d{confirmations}"
        )
        results[confirmations] = run_capacity_simulation(
            trace,
            strategy,
            config,
            initial_machines=max(1, math.ceil(truth[0] * 1.3 / config.q)),
        )
    return DebounceAblationResult(
        moves_with_debounce=results[3].moves_started,
        moves_without_debounce=results[1].moves_started,
        cost_with_debounce=results[3].cost_machine_slots,
        cost_without_debounce=results[1].cost_machine_slots,
    )


# ----------------------------------------------------------------------
# Ablation 4: prediction inflation sweep
# ----------------------------------------------------------------------


@dataclass
class InflationPoint:
    """Cost and violations at one inflation setting."""

    inflation: float
    cost_machine_slots: float
    pct_time_insufficient: float


@dataclass
class InflationAblationResult:
    """The swept inflation points."""

    points: List[InflationPoint]

    def monotone_cost(self) -> bool:
        costs = [p.cost_machine_slots for p in self.points]
        return costs == sorted(costs)


def run_inflation_ablation(
    inflations: Sequence[float] = (1.0, 1.15, 1.3, 1.5),
    n_days: int = 7,
    seed: int = 23,
) -> InflationAblationResult:
    """Sweep the prediction-inflation buffer (footnote to Fig. 12)."""
    import dataclasses

    base = default_config().with_interval(300.0)
    trace = b2w_like_trace(
        n_days=n_days,
        slot_seconds=300.0,
        seed=seed,
        base_level=1250.0 * 300.0,
    )
    truth = trace.as_rate_per_second()
    points = []
    for inflation in inflations:
        config = dataclasses.replace(base, prediction_inflation=inflation)
        strategy = PStoreStrategy(config, OraclePredictor(truth))
        result = run_capacity_simulation(
            trace,
            strategy,
            config,
            initial_machines=max(1, math.ceil(truth[0] * 1.3 / config.q)),
        )
        points.append(
            InflationPoint(
                inflation=inflation,
                cost_machine_slots=result.cost_machine_slots,
                pct_time_insufficient=result.pct_time_insufficient,
            )
        )
    return InflationAblationResult(points=points)


# ----------------------------------------------------------------------
# Sweep-cell protocol
# ----------------------------------------------------------------------

ABLATION_CELLS = ("effcap", "schedule", "debounce", "inflation")


def grid(n_days: int = 7) -> list:
    from ..runner import RunSpec

    seeds = {"debounce": 19, "inflation": 23}
    return [
        RunSpec(
            experiment="ablations",
            cell=cell,
            seed=seeds.get(cell, 0),
            overrides=(("n_days", int(n_days)),),
        )
        for cell in ABLATION_CELLS
    ]


def run_cell(spec, config) -> dict:
    from ..errors import ConfigurationError

    n_days = int(spec.option("n_days", 7))
    if spec.cell == "effcap":
        result = run_effcap_ablation()
        return {
            "aware_feasible": result.aware_feasible,
            "blind_feasible": result.blind_feasible,
            "blind_underprovision_intervals":
                result.blind_underprovision_intervals,
        }
    if spec.cell == "schedule":
        result = run_schedule_ablation()
        return {
            "rows": [
                {
                    "before": row.before,
                    "after": row.after,
                    "phased_rounds": row.phased_rounds,
                    "naive_rounds": row.naive_rounds,
                }
                for row in result.rows
            ],
            "total_saved": result.total_saved,
        }
    if spec.cell == "debounce":
        result = run_debounce_ablation(n_days=n_days, seed=spec.seed)
        return {
            "moves_with_debounce": result.moves_with_debounce,
            "moves_without_debounce": result.moves_without_debounce,
            "cost_with_debounce": result.cost_with_debounce,
            "cost_without_debounce": result.cost_without_debounce,
        }
    if spec.cell == "inflation":
        result = run_inflation_ablation(n_days=n_days, seed=spec.seed)
        return {
            "points": [
                {
                    "inflation": p.inflation,
                    "cost_machine_slots": p.cost_machine_slots,
                    "pct_time_insufficient": p.pct_time_insufficient,
                }
                for p in result.points
            ],
        }
    raise ConfigurationError(f"unknown ablation cell {spec.cell!r}")
