"""Registry of the paper's evaluation experiments.

One :class:`ExperimentDef` per evaluation artefact, loaded lazily so
``pstore experiment --list`` and sweep-grid construction never import
numpy-heavy experiment modules they don't need.  Every entry names:

* ``runner`` — the module's ``run_*`` function (the serial, rich-result
  entry point);
* ``grid`` — a function returning the experiment's cell grid as
  :class:`~repro.runner.RunSpec` objects (every experiment declares its
  grid here instead of looping inline);
* ``run_cell`` — executes ONE grid cell hermetically and returns a
  JSON-serialisable payload (what the sweep executor caches);
* ``summarize`` — renders the runner's result for the CLI.

A grid may reference *another* experiment's cells (``tab02`` and
``fig10`` reuse ``fig09``'s grid), in which case the cells are executed
— and cached — under the owning experiment's name, so derived tables
share the simulation cache with the figure they aggregate.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Callable, List

from ..errors import UnknownExperimentError


@dataclass(frozen=True)
class ExperimentDef:
    """One registered experiment (attributes resolved lazily)."""

    name: str
    title: str
    module: str
    runner: str = ""
    grid: str = ""
    run_cell: str = ""
    summarize: str = ""
    #: Heavy experiments take minutes at default scale; the CLI warns.
    heavy: bool = False
    #: Name of the module's ``tensor_cell(spec, config)`` builder, when
    #: the experiment's cells can run on the cross-cell tensor backend
    #: (returns a :class:`~repro.sim.tensor.TensorProgram`).
    tensor_cell: str = ""

    def _attr(self, attr: str):
        return getattr(importlib.import_module(self.module), attr)

    @property
    def has_grid(self) -> bool:
        return bool(self.grid)

    def run(self, **kwargs):
        """Execute the serial runner, returning its rich result object."""
        if not self.runner:
            raise UnknownExperimentError(
                f"experiment {self.name!r} has no serial runner"
            )
        return self._attr(self.runner)(**kwargs)

    def make_grid(self, **options) -> list:
        """The experiment's cell grid (list of ``RunSpec``)."""
        if not self.grid:
            raise UnknownExperimentError(
                f"experiment {self.name!r} declares no cell grid"
            )
        return self._attr(self.grid)(**options)

    def cell_runner(self) -> Callable:
        """The ``run_cell(spec, config)`` callable for this experiment."""
        if not self.run_cell:
            raise UnknownExperimentError(
                f"experiment {self.name!r} has no cell runner"
            )
        return self._attr(self.run_cell)

    @property
    def has_tensor_cell(self) -> bool:
        """Whether cells can run on the cross-cell tensor backend."""
        return bool(self.tensor_cell)

    def tensor_cell_builder(self) -> "Callable | None":
        """The ``tensor_cell(spec, config)`` builder, or None."""
        if not self.tensor_cell:
            return None
        return self._attr(self.tensor_cell)

    def render(self, result) -> str:
        """Human-readable summary of the runner's result."""
        if not self.summarize:
            return str(result)
        return self._attr(self.summarize)(result)


_REGISTRY: "dict[str, ExperimentDef]" = {}


def register(defn: ExperimentDef) -> ExperimentDef:
    _REGISTRY[defn.name] = defn
    return defn


def get_experiment(name: str) -> ExperimentDef:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownExperimentError(
            f"unknown experiment {name!r}; known experiments: "
            f"{', '.join(sorted(_REGISTRY))}"
        ) from None


def experiment_names() -> List[str]:
    return sorted(_REGISTRY)


def list_experiments() -> List[ExperimentDef]:
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


# ----------------------------------------------------------------------
# Declarations (kept central so discovery needs no heavy imports).
# ----------------------------------------------------------------------

_P = "repro.experiments"

for _defn in (
    ExperimentDef(
        "fig01", "Fig. 1 — B2W diurnal load shape", f"{_P}.fig01",
        runner="run_figure1", grid="grid", run_cell="run_cell",
        summarize="summarize",
    ),
    ExperimentDef(
        "fig02", "Fig. 2 — ideal vs step allocation overhead", f"{_P}.fig02",
        runner="run_figure2", grid="grid", run_cell="run_cell",
        summarize="summarize",
    ),
    ExperimentDef(
        "fig03", "Fig. 3 — planner goal: capacity covers demand",
        f"{_P}.fig03", runner="run_figure3", grid="grid",
        run_cell="run_cell", summarize="summarize",
    ),
    ExperimentDef(
        "fig04", "Fig. 4 — effective capacity during moves", f"{_P}.fig04",
        runner="run_figure4", grid="grid", run_cell="run_cell",
        summarize="summarize",
    ),
    ExperimentDef(
        "fig05", "Fig. 5 — SPAR accuracy on B2W (MRE vs tau)", f"{_P}.fig05",
        runner="run_figure5", grid="grid", run_cell="run_cell",
        summarize="summarize",
    ),
    ExperimentDef(
        "fig06", "Fig. 6 — SPAR on Wikipedia page views", f"{_P}.fig06",
        runner="run_figure6", grid="grid", run_cell="run_cell",
        summarize="summarize",
    ),
    ExperimentDef(
        "fig07", "Fig. 7 — single-node saturation (Q, Q-hat)", f"{_P}.fig07",
        runner="run_figure7", grid="grid", run_cell="run_cell",
        summarize="summarize",
    ),
    ExperimentDef(
        "fig08", "Fig. 8 — migration chunk size vs latency", f"{_P}.fig08",
        runner="run_figure8", grid="grid", run_cell="run_cell",
        summarize="summarize",
    ),
    ExperimentDef(
        "fig09", "Fig. 9 — elasticity approaches on the benchmark",
        f"{_P}.fig09", runner="run_figure9", grid="grid",
        run_cell="run_cell", summarize="summarize", heavy=True,
        tensor_cell="tensor_cell",
    ),
    ExperimentDef(
        "fig10", "Fig. 10 — tail-latency CDFs (reuses fig09 cells)",
        f"{_P}.fig10", runner="run_figure10", grid="grid",
        summarize="summarize", heavy=True,
    ),
    ExperimentDef(
        "fig11", "Fig. 11 — unexpected spike, rate R vs R x 8",
        f"{_P}.fig11", runner="run_figure11", grid="grid",
        run_cell="run_cell", summarize="summarize", heavy=True,
        tensor_cell="tensor_cell",
    ),
    ExperimentDef(
        "fig12", "Fig. 12 — capacity-cost curves over the season",
        f"{_P}.fig12", runner="run_figure12", grid="grid",
        run_cell="run_cell", summarize="summarize", heavy=True,
    ),
    ExperimentDef(
        "fig13", "Fig. 13 — effective capacity around Black Friday",
        f"{_P}.fig13", runner="run_figure13", grid="grid",
        run_cell="run_cell", summarize="summarize", heavy=True,
    ),
    ExperimentDef(
        "tab01", "Table 1 — the 3 -> 14 migration schedule", f"{_P}.tab01",
        runner="run_table1", grid="grid", run_cell="run_cell",
        summarize="summarize",
    ),
    ExperimentDef(
        "tab02", "Table 2 — SLA violations (reuses fig09 cells)",
        f"{_P}.tab02", runner="run_table2", grid="grid",
        summarize="summarize", heavy=True,
    ),
    ExperimentDef(
        "sec5", "Sec. 5 — SPAR vs ARMA vs AR model comparison",
        f"{_P}.sec5_models", runner="run_model_comparison", grid="grid",
        run_cell="run_cell", summarize="summarize",
    ),
    ExperimentDef(
        "ablations", "Design ablations (eff-cap, schedule, debounce, "
        "inflation)", f"{_P}.ablations", grid="grid", run_cell="run_cell",
    ),
    ExperimentDef(
        "chaos", "Chaos recovery — SLA impact and MTTR under faults",
        f"{_P}.chaos", runner="run_chaos", grid="grid",
        run_cell="run_cell", summarize="summarize", heavy=True,
    ),
    ExperimentDef(
        "serve", "Serve smoke — online control plane on a drifting replay",
        f"{_P}.serve", runner="run_serve_smoke", grid="grid",
        run_cell="run_cell", summarize="summarize",
    ),
    ExperimentDef(
        "shootout", "Predictor zoo vs drift workloads (accuracy + SLA)",
        f"{_P}.shootout", runner="run_shootout", grid="grid",
        run_cell="run_cell", summarize="summarize",
    ),
    ExperimentDef(
        "smoke", "Fast capacity-sim grid (sweep smoke/CI)", f"{_P}.smoke",
        runner="run_smoke", grid="grid", run_cell="run_cell",
        summarize="summarize",
    ),
    ExperimentDef(
        "tensmoke", "Fast elastic-sim grid (tensor backend smoke/bench)",
        f"{_P}.tensmoke", runner="run_tensmoke", grid="grid",
        run_cell="run_cell", summarize="summarize",
        tensor_cell="tensor_cell",
    ),
):
    register(_defn)
