"""One module per evaluation artefact of the paper.

Each ``run_*`` function executes an experiment at (optionally reduced)
scale and returns a typed result object; the benches under
``benchmarks/`` are thin wrappers that print the same rows/series the
paper reports.

Every module additionally declares its **sweep-cell grid**: ``grid()``
returns the experiment's independent cells as
:class:`~repro.runner.RunSpec` objects and ``run_cell(spec, config)``
executes one of them hermetically.  The registry in
:mod:`repro.experiments.registry` enumerates all experiments for
``pstore experiment --list`` and ``pstore sweep`` without importing the
heavy modules up front.
"""

from .ablations import (
    run_debounce_ablation,
    run_effcap_ablation,
    run_inflation_ablation,
    run_schedule_ablation,
)
from .chaos import ChaosResult, ChaosRun, run_chaos
from .common import BenchmarkSetup, benchmark_setup, interval_rates
from .fig01 import Figure1Result, run_figure1
from .fig02 import Figure2Result, run_figure2
from .fig03 import Figure3Result, run_figure3
from .fig04 import FIGURE4_CASES, Figure4Result, run_figure4
from .fig05 import FIGURE5_TAUS, Figure5Result, run_figure5
from .fig06 import FIGURE6_TAUS, Figure6Result, run_figure6
from .fig07 import Figure7Result, run_figure7
from .fig08 import FIGURE8_CHUNKS, Figure8Result, run_figure8
from .fig09 import Figure9Result, run_figure9
from .fig10 import Figure10Result, run_figure10
from .fig11 import Figure11Result, run_figure11
from .fig12 import Figure12Result, run_figure12, season_setup
from .fig13 import Figure13Result, run_figure13
from .registry import (
    ExperimentDef,
    experiment_names,
    get_experiment,
    list_experiments,
)
from .sec5_models import ModelComparisonResult, run_model_comparison
from .smoke import SmokeResult, run_smoke
from .tab01 import Table1Result, run_table1
from .tab02 import PAPER_TABLE2, Table2Result, run_table2

__all__ = [
    "BenchmarkSetup",
    "ChaosResult",
    "ChaosRun",
    "ExperimentDef",
    "FIGURE4_CASES",
    "FIGURE5_TAUS",
    "FIGURE6_TAUS",
    "FIGURE8_CHUNKS",
    "Figure1Result",
    "Figure2Result",
    "Figure3Result",
    "Figure4Result",
    "Figure5Result",
    "Figure6Result",
    "Figure7Result",
    "Figure8Result",
    "Figure9Result",
    "Figure10Result",
    "Figure11Result",
    "Figure12Result",
    "Figure13Result",
    "ModelComparisonResult",
    "PAPER_TABLE2",
    "SmokeResult",
    "Table1Result",
    "Table2Result",
    "benchmark_setup",
    "experiment_names",
    "get_experiment",
    "interval_rates",
    "list_experiments",
    "run_chaos",
    "run_debounce_ablation",
    "run_effcap_ablation",
    "run_figure1",
    "run_figure2",
    "run_figure3",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "run_figure9",
    "run_figure10",
    "run_figure11",
    "run_figure12",
    "run_figure13",
    "run_inflation_ablation",
    "run_model_comparison",
    "run_schedule_ablation",
    "run_smoke",
    "run_table1",
    "run_table2",
    "season_setup",
]
