"""Experiment: ``serve`` — the online control plane on a drifting replay.

Not a paper artefact.  This cell pair exercises the ``repro.serve``
subsystem end-to-end under the sweep executor: a B2W-like trace whose
level shifts abruptly mid-stream is replayed (at infinite speed, no
wall clock) through the depository -> online-controller loop, once with
the accuracy-based error trigger armed and once without.  The armed run
must notice the drift — rolling MAPE for the active tau crosses the
threshold, the model refits, an unscheduled re-plan fires — and end with
fewer capacity-insufficient slots than the blind run.

The same scenario backs ``tests/test_serve.py``; keeping the builder
here means the CI smoke cell and the regression test can never drift
apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..workload import LoadTrace, b2w_like_trace

#: Hourly planner slots keep the scenario small: 24 slots/day.
SERVE_SLOT_SECONDS = 3600.0
SERVE_SLOTS_PER_DAY = 24

#: Six replayed days; the level shift lands at the start of day 4.
SERVE_DAYS = 6
DRIFT_AT_SLOT = 3 * SERVE_SLOTS_PER_DAY

#: The shift: demand multiplies by this factor (a flash event the
#: trained model has never seen, so its forecasts go stale at once).
DRIFT_FACTOR = 3.2

#: Rolling accuracy window (pairs) — short, so the trigger reacts
#: within hours of the shift instead of averaging it away.
SERVE_ACCURACY_WINDOW = 8

SERVE_SEED = 7
SERVE_TRIGGER = "mape:0.25"
SERVE_MIN_PAIRS = 6


@dataclass
class ServeSmokeResult:
    """Per-cell serve summaries, keyed by cell name."""

    runs: Dict[str, dict]


def drift_trace(
    seed: int = SERVE_SEED,
    n_days: int = SERVE_DAYS,
    drift_at_slot: int = DRIFT_AT_SLOT,
    drift_factor: float = DRIFT_FACTOR,
) -> LoadTrace:
    """A diurnal trace whose level jumps ``drift_factor``-fold mid-run.

    Deliberately low-noise (flat week, no day-level drift): the scenario
    isolates the *regime shift* — a seasonal model's forecasts must be
    accurate before the shift and uniformly stale after it, so the only
    thing the accuracy trigger can react to is the shift itself.
    """
    trace = b2w_like_trace(
        n_days=n_days,
        slot_seconds=SERVE_SLOT_SECONDS,
        seed=seed,
        base_level=1250.0 * SERVE_SLOT_SECONDS,
        weekly_pattern=(1.0,) * 7,
        noise_sigma=0.02,
        drift_sigma=0.0,
        wobble_sigma=0.03,
    )
    values = trace.values.copy()
    values[drift_at_slot:] = values[drift_at_slot:] * drift_factor
    return LoadTrace(values=values, slot_seconds=SERVE_SLOT_SECONDS)


def run_scenario(
    seed: int,
    trigger_text: Optional[str],
    config=None,
    n_days: int = SERVE_DAYS,
):
    """One hermetic serve run -> ``(summary, chronicle_records)``.

    Runs under a private telemetry scope (the accuracy tracker *is* the
    trigger's sensor), replaying with ``speed=0`` so the asyncio loop
    never sleeps and the result is bit-deterministic.  Shared with
    ``tests/test_serve.py``, which walks the chronicle.
    """
    import asyncio

    from ..config import default_config
    from ..prediction import SeasonalNaivePredictor
    from ..prediction.online import OnlinePredictor
    from ..serve import ControlPlane, ReplaySource, ServeOptions
    from ..serve.controller import ErrorTrigger, parse_error_trigger
    from ..telemetry import AccuracyTracker, MetricsRegistry, Telemetry
    from ..telemetry.runtime import telemetry_scope

    config = (config or default_config()).with_interval(SERVE_SLOT_SECONDS)
    trace = drift_trace(seed=seed, n_days=n_days)

    trigger = None
    if trigger_text:
        parsed = parse_error_trigger(trigger_text)
        if parsed is not None:
            trigger = ErrorTrigger(
                parsed.clauses, tau=1, min_pairs=SERVE_MIN_PAIRS
            )

    metrics = MetricsRegistry()
    telemetry = Telemetry(
        metrics=metrics,
        accuracy=AccuracyTracker(
            metrics=metrics, window=SERVE_ACCURACY_WINDOW
        ),
    )
    with telemetry_scope(telemetry):
        # A purely seasonal model: after the level shift its forecasts
        # stay a full period stale, which is exactly the failure the
        # accuracy trigger exists to catch (an AR-style model would read
        # the shift straight out of its input history).
        predictor = OnlinePredictor(
            SeasonalNaivePredictor(SERVE_SLOTS_PER_DAY),
            refit_every=14 * SERVE_SLOTS_PER_DAY,
            max_history=21 * SERVE_SLOTS_PER_DAY,
        )
        plane = ControlPlane(
            config,
            predictor,
            ReplaySource(trace, speed=0.0),
            trigger=trigger,
            options=ServeOptions(
                speed=0.0, http_port=None, out=None, quiet=True
            ),
            telemetry=telemetry,
        )
        summary = asyncio.run(plane.run())
        chronicle = telemetry.chronicle.snapshot()
    return summary, chronicle


class _CrashingSource:
    """Replays the trace but "crashes" after ``kill_after`` reports.

    The crash is modelled as an immediate stop request followed by an
    endless stall: the plane exits its loop without the source draining,
    so ``finish()`` never runs and the last durable checkpoint — not a
    graceful drain — is all a resumed plane gets.  That is exactly the
    state a SIGKILL leaves behind (the post-stop rollback in ``_drain``
    happens *after* the final checkpoint and is deliberately not
    persisted).
    """

    def __init__(self, trace: LoadTrace, kill_after: int) -> None:
        self.trace = trace
        self.kill_after = kill_after
        self.plane = None  # wired by the caller after plane construction

    async def reports(self):
        import asyncio

        from ..serve import LoadReport

        slot_seconds = self.trace.slot_seconds
        for slot, count in enumerate(self.trace.values):
            if slot >= self.kill_after:
                self.plane.request_stop()
                await asyncio.Event().wait()
            yield LoadReport(
                time=(slot + 0.5) * slot_seconds,
                count=float(count),
                node="replay",
            )


def run_resume_scenario(
    seed: int,
    trigger_text: Optional[str],
    checkpoint_dir,
    kill_after: int,
    config=None,
    n_days: int = SERVE_DAYS,
):
    """Kill a serve run mid-stream, resume it, return both runs' outputs.

    Returns ``(killed_summary, resumed_summary, merged_chronicle)``: the
    killed run checkpoints into ``checkpoint_dir`` and stops after
    ``kill_after`` reports without draining; the resumed run restores
    from the same directory and replays the *full* trace (duplicate
    suppression drops everything the first run already ingested).
    Compare against :func:`run_scenario` with identical arguments to
    check crash/resume convergence.
    """
    import asyncio

    from ..config import default_config
    from ..prediction import SeasonalNaivePredictor
    from ..prediction.online import OnlinePredictor
    from ..serve import ControlPlane, ReplaySource, ServeOptions
    from ..serve.controller import ErrorTrigger, parse_error_trigger
    from ..telemetry import AccuracyTracker, MetricsRegistry, Telemetry
    from ..telemetry.runtime import telemetry_scope

    config = (config or default_config()).with_interval(SERVE_SLOT_SECONDS)
    trace = drift_trace(seed=seed, n_days=n_days)

    def make_trigger():
        if not trigger_text:
            return None
        parsed = parse_error_trigger(trigger_text)
        if parsed is None:
            return None
        return ErrorTrigger(parsed.clauses, tau=1, min_pairs=SERVE_MIN_PAIRS)

    def make_predictor():
        return OnlinePredictor(
            SeasonalNaivePredictor(SERVE_SLOTS_PER_DAY),
            refit_every=14 * SERVE_SLOTS_PER_DAY,
            max_history=21 * SERVE_SLOTS_PER_DAY,
        )

    # Phase 1: run with checkpointing, crash mid-stream.
    metrics = MetricsRegistry()
    telemetry = Telemetry(
        metrics=metrics,
        accuracy=AccuracyTracker(metrics=metrics, window=SERVE_ACCURACY_WINDOW),
    )
    with telemetry_scope(telemetry):
        source = _CrashingSource(trace, kill_after=kill_after)
        plane = ControlPlane(
            config,
            make_predictor(),
            source,
            trigger=make_trigger(),
            options=ServeOptions(
                speed=0.0,
                http_port=None,
                out=None,
                quiet=True,
                checkpoint_dir=str(checkpoint_dir),
            ),
            telemetry=telemetry,
        )
        source.plane = plane
        killed_summary = asyncio.run(plane.run())

    # Phase 2: fresh process state, resume from the checkpoint, replay
    # the full trace (the feeder has no idea where the plane died).
    metrics = MetricsRegistry()
    telemetry = Telemetry(
        metrics=metrics,
        accuracy=AccuracyTracker(metrics=metrics, window=SERVE_ACCURACY_WINDOW),
    )
    with telemetry_scope(telemetry):
        plane = ControlPlane(
            config,
            make_predictor(),
            ReplaySource(trace, speed=0.0),
            trigger=make_trigger(),
            options=ServeOptions(
                speed=0.0,
                http_port=None,
                out=None,
                quiet=True,
                checkpoint_dir=str(checkpoint_dir),
                resume=True,
            ),
            telemetry=telemetry,
        )
        resumed_summary = asyncio.run(plane.run())
        merged_chronicle = telemetry.chronicle.snapshot()
    return killed_summary, resumed_summary, merged_chronicle


def chronicle_projection(records) -> List:
    """The crash-invariant view of a chronicle: ``(kind, time)`` rows.

    ``service.*`` records (the resume marker) exist only in resumed
    runs, and record *ids* downstream of one are offset by its sequence
    number, so convergence is asserted on this projection rather than on
    raw records.
    """
    return [
        (rec.get("kind"), rec.get("time"))
        for rec in records
        if not str(rec.get("kind", "")).startswith("service.")
    ]


def run_one(
    seed: int,
    trigger_text: Optional[str],
    config=None,
    n_days: int = SERVE_DAYS,
) -> dict:
    """One hermetic serve run -> a deterministic JSON cell payload."""
    summary, chronicle = run_scenario(
        seed, trigger_text, config=config, n_days=n_days
    )
    return {
        "trigger": summary.get("trigger"),
        "intervals": int(summary["intervals"]),
        "machines": int(summary["steady_machines"]),
        "mode": summary["mode"],
        "violations": int(summary["violations"]),
        "moves_started": int(summary["moves_started"]),
        "emergencies": int(summary["emergencies"]),
        "trigger_fires": int(summary["trigger_fires"]),
        "trigger_recoveries": int(summary["trigger_recoveries"]),
        "drained": bool(summary["drained"]),
        "accuracy_records": sum(
            1 for rec in chronicle if rec.get("kind") == "forecast.accuracy"
        ),
    }


def grid(seed: int = SERVE_SEED, n_days: int = SERVE_DAYS) -> List:
    """Two cells: the drift replay with the trigger armed and disarmed."""
    from ..runner import RunSpec

    return [
        RunSpec(
            experiment="serve",
            cell=cell,
            seed=seed,
            overrides=(
                ("n_days", int(n_days)),
                ("trigger", trigger_text),
            ),
        )
        for cell, trigger_text in (
            ("trigger", SERVE_TRIGGER),
            ("no-trigger", ""),
        )
    ]


def run_cell(spec, config) -> dict:
    return run_one(
        seed=spec.seed,
        trigger_text=spec.option("trigger") or None,
        config=config,
        n_days=int(spec.option("n_days", SERVE_DAYS)),
    )


def run_serve_smoke(config=None, seed: int = SERVE_SEED) -> ServeSmokeResult:
    """Serial runner: both cells in-process."""
    return ServeSmokeResult(
        runs={
            "trigger": run_one(seed, SERVE_TRIGGER, config=config),
            "no-trigger": run_one(seed, None, config=config),
        }
    )


def summarize(result: ServeSmokeResult) -> str:
    lines = []
    for name, run in sorted(result.runs.items()):
        lines.append(
            f"{name}: intervals={run['intervals']} mode={run['mode']} "
            f"machines={run['machines']} violations={run['violations']} "
            f"moves={run['moves_started']} fires={run['trigger_fires']} "
            f"recoveries={run['trigger_recoveries']}"
        )
    armed = result.runs.get("trigger")
    blind = result.runs.get("no-trigger")
    if armed and blind:
        lines.append(
            "drift response: "
            f"{armed['violations']} violations with the trigger vs "
            f"{blind['violations']} without"
        )
    return "\n".join(lines)
