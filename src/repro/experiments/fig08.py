"""Experiment: Figure 8 — migration chunk size vs latency (D discovery).

Sec. 8.1: with one machine running at its maximum rate Q-hat, move half
of the database to a second machine while varying the migration chunk
size.  Small (1000 kB) chunks barely disturb the 99th-percentile
latency; larger chunks finish faster but cause latency spikes.  The
calibrated outcome sets D = 4646 s and R = 244 kB/s.

One chunk is transmitted every ~4.1 s regardless of size (Squall spaces
chunks apart), so the effective migration rate scales linearly with
chunk size: 1000 kB -> 244 kB/s, 8000 kB -> 1952 kB/s (the "R x 8" of
Fig. 11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..config import PStoreConfig, default_config
from ..elasticity import StaticStrategy
from ..elasticity.manual import ManualStrategy
from ..sim import ElasticDbSimulator

#: Chunk sizes (kB) swept by the paper; None = static run, no migration.
FIGURE8_CHUNKS: Sequence[Optional[float]] = (None, 1000.0, 2000.0, 4000.0, 6000.0, 8000.0)

#: Implied chunk spacing (seconds) from R = 244 kB/s at 1000 kB chunks.
CHUNK_SPACING_S = 1000.0 / 244.0


@dataclass
class ChunkRunResult:
    """Latency and duration of one chunk-size run."""

    chunk_kb: Optional[float]
    rate_kbps: float
    p50_peak_ms: float            # worst per-second p50 during the window
    p99_peak_ms: float
    p99_mean_ms: float
    migration_seconds: float      # 0 for the static run


@dataclass
class Figure8Result:
    """All chunk-size runs of the Fig. 8 sweep."""

    runs: List[ChunkRunResult]

    def by_chunk(self) -> Dict[Optional[float], ChunkRunResult]:
        return {run.chunk_kb: run for run in self.runs}


def run_figure8(
    chunks: Sequence[Optional[float]] = FIGURE8_CHUNKS,
    duration_seconds: int = 1200,
    config: PStoreConfig | None = None,
    seed: int = 13,
) -> Figure8Result:
    """Run the chunk-size sweep: one 1 -> 2 move per chunk size.

    Per-machine offered load is pinned at Q-hat, as in the paper: the
    total offered rate follows the system's effective capacity at the
    maximum per-server rate.
    """
    config = config or default_config()
    runs: List[ChunkRunResult] = []
    for chunk in chunks:
        rate = 0.0 if chunk is None else chunk / CHUNK_SPACING_S
        # Keep the source machine at Q-hat: with 1 -> 2 machines, the
        # offered load tracks effective capacity, which our simulator
        # realises by keeping total offered at Q-hat / max-data-fraction.
        # A constant Q-hat offered load is the conservative equivalent
        # (the source holds >= half the data throughout).
        offered = np.full(duration_seconds, config.q_hat)
        simulator = ElasticDbSimulator(
            config,
            max_machines=2,
            initial_machines=1,
            seed=seed,
            chunk_kb=chunk if chunk is not None else 1000.0,
            engine_kwargs={"hot_episode_rate": 0.0, "skew_sigma": 0.02},
        )
        if chunk is None:
            result = simulator.run(offered, StaticStrategy(1))
            window = slice(0, duration_seconds)
            migration_seconds = 0.0
        else:
            strategy = ManualStrategy([(1, 2, rate / config.migration_rate_kbps)])
            result = simulator.run(offered, strategy)
            migrating = np.nonzero(result.migrating)[0]
            window = (
                slice(int(migrating[0]), int(migrating[-1]) + 1)
                if migrating.size
                else slice(0, duration_seconds)
            )
            migration_seconds = float(migrating.size)
        p50 = result.latency.series(50.0)[window]
        p99 = result.latency.series(99.0)[window]
        runs.append(
            ChunkRunResult(
                chunk_kb=chunk,
                rate_kbps=rate,
                p50_peak_ms=float(p50.max()),
                p99_peak_ms=float(p99.max()),
                p99_mean_ms=float(p99.mean()),
                migration_seconds=migration_seconds,
            )
        )
    return Figure8Result(runs=runs)


# ----------------------------------------------------------------------
# Sweep-cell protocol
# ----------------------------------------------------------------------


def grid(chunks=FIGURE8_CHUNKS, duration_seconds: int = 1200,
         seed: int = 13) -> list:
    from ..runner import RunSpec

    return [
        RunSpec(
            experiment="fig08",
            cell="static" if chunk is None else f"chunk-{int(chunk)}kb",
            seed=seed,
            overrides=(
                ("chunk_kb", None if chunk is None else float(chunk)),
                ("duration_seconds", int(duration_seconds)),
            ),
        )
        for chunk in chunks
    ]


def run_cell(spec, config) -> dict:
    chunk = spec.option("chunk_kb")
    result = run_figure8(
        chunks=(None if chunk is None else float(chunk),),
        duration_seconds=int(spec.option("duration_seconds", 1200)),
        config=config,
        seed=spec.seed,
    )
    run = result.runs[0]
    return {
        "chunk_kb": run.chunk_kb,
        "rate_kbps": run.rate_kbps,
        "p50_peak_ms": run.p50_peak_ms,
        "p99_peak_ms": run.p99_peak_ms,
        "p99_mean_ms": run.p99_mean_ms,
        "migration_seconds": run.migration_seconds,
    }


def summarize(result: Figure8Result) -> str:
    lines = []
    for run in result.runs:
        label = "static" if run.chunk_kb is None else f"{run.chunk_kb:.0f} kB"
        lines.append(
            f"{label}: p99 peak {run.p99_peak_ms:.0f} ms, migration "
            f"{run.migration_seconds:.0f} s"
        )
    return "\n".join(lines)
