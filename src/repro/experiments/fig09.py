"""Experiment: Figure 9 — comparison of elasticity approaches.

Runs the B2W benchmark (3 days at 10x speed, ~26k simulated seconds)
under four provisioning approaches:

* static allocation with 10 machines (peak-provisioned, Fig. 9a);
* static allocation with 4 machines (trough-provisioned, Fig. 9b);
* reactive provisioning in the E-Store style (Fig. 9c);
* P-Store with the SPAR predictive model (Fig. 9d).

The result feeds Figure 10 (tail-latency CDFs) and Table 2 (SLA
violations and machine usage).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..elasticity import PStoreStrategy, ReactiveStrategy, StaticStrategy
from ..sim import ElasticDbSimulator, SimulationResult
from .common import BenchmarkSetup, benchmark_setup

#: Engine seed shared across approaches so they see the same skew.
ENGINE_SEED = 77


@dataclass
class Figure9Result:
    """All four runs, keyed the way the paper names them."""

    runs: Dict[str, SimulationResult]
    setup: BenchmarkSetup

    @property
    def pstore(self) -> SimulationResult:
        return self.runs["p-store"]

    @property
    def reactive(self) -> SimulationResult:
        return self.runs["reactive"]

    @property
    def static_peak(self) -> SimulationResult:
        return self.runs["static-10"]

    @property
    def static_trough(self) -> SimulationResult:
        return self.runs["static-4"]


def run_figure9(
    eval_days: int = 3,
    seed: int = 21,
    setup: Optional[BenchmarkSetup] = None,
    approaches: Optional[Dict[str, bool]] = None,
) -> Figure9Result:
    """Run the Figure 9 comparison.

    ``eval_days`` can be reduced for quick runs (the paper uses 3).
    ``approaches`` optionally restricts which runs execute, keyed by
    "static-10" / "static-4" / "reactive" / "p-store".
    """
    setup = setup or benchmark_setup(eval_days=eval_days, seed=seed)
    config = setup.config
    wanted = approaches or {
        "static-10": True,
        "static-4": True,
        "reactive": True,
        "p-store": True,
    }
    runs: Dict[str, SimulationResult] = {}

    def simulator(initial: int) -> ElasticDbSimulator:
        return ElasticDbSimulator(
            config,
            max_machines=10,
            initial_machines=initial,
            seed=ENGINE_SEED,
        )

    if wanted.get("static-10"):
        runs["static-10"] = simulator(10).run(
            setup.offered_tps, StaticStrategy(10)
        )
    if wanted.get("static-4"):
        runs["static-4"] = simulator(4).run(
            setup.offered_tps, StaticStrategy(4)
        )
    if wanted.get("reactive"):
        runs["reactive"] = simulator(4).run(
            setup.offered_tps,
            ReactiveStrategy(config, scale_in_patience=10),
        )
    if wanted.get("p-store"):
        runs["p-store"] = simulator(4).run(
            setup.offered_tps,
            PStoreStrategy(config, setup.spar),
            history_seed_tps=setup.train_interval_tps,
        )
    return Figure9Result(runs=runs, setup=setup)
