"""Experiment: Figure 9 — comparison of elasticity approaches.

Runs the B2W benchmark (3 days at 10x speed, ~26k simulated seconds)
under four provisioning approaches:

* static allocation with 10 machines (peak-provisioned, Fig. 9a);
* static allocation with 4 machines (trough-provisioned, Fig. 9b);
* reactive provisioning in the E-Store style (Fig. 9c);
* P-Store with the SPAR predictive model (Fig. 9d).

The result feeds Figure 10 (tail-latency CDFs) and Table 2 (SLA
violations and machine usage).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..elasticity import StrategySpec
from ..sim import ElasticDbSimulator, SimulationResult
from .common import BenchmarkSetup, benchmark_setup, sim_payload

#: Engine seed shared across approaches so they see the same skew.
ENGINE_SEED = 77

#: (approach name, strategy spec, initial machines) — the four runs of
#: Fig. 9, also the experiment's sweep-cell grid (reused by Fig. 10 and
#: Table 2).
APPROACH_SPECS = (
    ("static-10", "static:10", 10),
    ("static-4", "static:4", 4),
    ("reactive", "reactive:patience=10", 4),
    ("p-store", "p-store", 4),
)


@dataclass
class Figure9Result:
    """All four runs, keyed the way the paper names them."""

    runs: Dict[str, SimulationResult]
    setup: BenchmarkSetup

    @property
    def pstore(self) -> SimulationResult:
        return self.runs["p-store"]

    @property
    def reactive(self) -> SimulationResult:
        return self.runs["reactive"]

    @property
    def static_peak(self) -> SimulationResult:
        return self.runs["static-10"]

    @property
    def static_trough(self) -> SimulationResult:
        return self.runs["static-4"]


def run_figure9(
    eval_days: int = 3,
    seed: int = 21,
    setup: Optional[BenchmarkSetup] = None,
    approaches: Optional[Dict[str, bool]] = None,
) -> Figure9Result:
    """Run the Figure 9 comparison.

    ``eval_days`` can be reduced for quick runs (the paper uses 3).
    ``approaches`` optionally restricts which runs execute, keyed by
    "static-10" / "static-4" / "reactive" / "p-store".
    """
    setup = setup or benchmark_setup(eval_days=eval_days, seed=seed)
    wanted = approaches or {name: True for name, _, _ in APPROACH_SPECS}
    runs: Dict[str, SimulationResult] = {}
    for name, spec_text, initial in APPROACH_SPECS:
        if wanted.get(name):
            runs[name] = run_approach(
                StrategySpec.parse(spec_text), setup, initial_machines=initial
            )
    return Figure9Result(runs=runs, setup=setup)


def prepare_approach(
    spec: StrategySpec,
    setup: BenchmarkSetup,
    initial_machines: int = 4,
):
    """Build the (simulator, strategy, history) triple for one approach.

    Shared by the serial runner and the tensor-backend cell builder so
    both execute exactly the same construction — the precondition for
    their results being bit-identical.
    """
    config = setup.config
    strategy = spec.build(config, predictor=setup.spar)
    simulator = ElasticDbSimulator(
        config,
        max_machines=10,
        initial_machines=initial_machines,
        seed=ENGINE_SEED,
    )
    history = setup.train_interval_tps if spec.kind == "p-store" else ()
    return simulator, strategy, history


def run_approach(
    spec: StrategySpec,
    setup: BenchmarkSetup,
    initial_machines: int = 4,
) -> SimulationResult:
    """One Fig. 9-style benchmark run for a declarative strategy spec."""
    simulator, strategy, history = prepare_approach(
        spec, setup, initial_machines
    )
    return simulator.run(
        setup.offered_tps, strategy, history_seed_tps=history
    )


# ----------------------------------------------------------------------
# Sweep-cell protocol
# ----------------------------------------------------------------------


def grid(eval_days: int = 3, seed: int = 21) -> List:
    """One cell per provisioning approach (the paper's four runs)."""
    from ..runner import RunSpec

    return [
        RunSpec(
            experiment="fig09",
            cell=name,
            strategy=spec_text,
            seed=seed,
            overrides=(("eval_days", int(eval_days)),),
        )
        for name, spec_text, _ in APPROACH_SPECS
    ]


def initial_machines_for(cell: str) -> int:
    for name, _, initial in APPROACH_SPECS:
        if name == cell:
            return initial
    return 4


def run_cell(spec, config) -> dict:
    """Execute one approach hermetically (used by ``pstore sweep``)."""
    setup = benchmark_setup(
        eval_days=int(spec.option("eval_days", 3)),
        seed=spec.seed,
        config=config,
    )
    result = run_approach(
        StrategySpec.parse(spec.strategy),
        setup,
        initial_machines=initial_machines_for(spec.cell),
    )
    return sim_payload(result)


def tensor_cell(spec, config):
    """Build one approach as a :class:`~repro.sim.tensor.TensorProgram`.

    Same construction as :func:`run_cell` (via :func:`prepare_approach`),
    but returns the unstarted program so the tensor backend can batch it
    with the other approaches of the grid.
    """
    from ..sim.tensor import TensorProgram

    setup = benchmark_setup(
        eval_days=int(spec.option("eval_days", 3)),
        seed=spec.seed,
        config=config,
    )
    simulator, strategy, history = prepare_approach(
        StrategySpec.parse(spec.strategy),
        setup,
        initial_machines=initial_machines_for(spec.cell),
    )
    return TensorProgram(
        simulator=simulator,
        offered_tps=setup.offered_tps,
        strategy=strategy,
        history_seed_tps=history,
        label=spec.label,
        finalize=sim_payload,
    )


def summarize(result: Figure9Result) -> str:
    return "\n".join(
        result.runs[name].summary()
        for name, _, _ in APPROACH_SPECS
        if name in result.runs
    )
