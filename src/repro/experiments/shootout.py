"""Experiment: ``shootout`` — the predictor zoo under drifting workloads.

Not a paper artefact.  The paper evaluates SPAR on stationary-periodic
traces where tomorrow looks like yesterday; this grid asks the opposite
question: *which registered predictor keeps the capacity loop honest
when the generating process changes mid-trace?*  Every cell crosses one
registry predictor (:mod:`repro.prediction.registry`) with one drift
workload (:mod:`repro.workload.drift`):

* predictors are trained on the workload's quiet 7-day prefix only, so
  the regime change is — by construction — outside the training data;
* the remaining 7 days are capacity-simulated through the standard
  ``predictive:<name>`` strategy, scoring both forecast accuracy
  (per-tau MAPE/sMAPE/bias from the :class:`AccuracyTracker`) and the
  end-to-end outcome the paper cares about (machine-slot cost and
  capacity-insufficient slots, the SLA proxy of Fig. 12).

Hourly slots keep each cell well under a second, so the full default
grid (8 predictors x 4 workloads) suits CI smoke jobs and the
serial-vs-parallel bit-identity check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..elasticity import StrategySpec
from ..prediction import get_predictor_spec, registered_predictors
from ..workload import (
    drifting_period_trace,
    growing_amplitude_trace,
    level_shift_trace,
    novel_spike_trace,
)
from .common import capacity_payload

#: Hourly planner slots: 24/day, seconds-fast capacity sims.
SHOOTOUT_SLOT_SECONDS = 3600.0
SHOOTOUT_SLOTS_PER_DAY = 24

#: 10 quiet training days + 6 drifting evaluation days.  SPAR at
#: period 24 / n_periods 7 / m_recent 30 needs 222 training slots, so
#: the quiet prefix must cover at least 10 hourly days.
SHOOTOUT_DAYS = 16
SHOOTOUT_TRAIN_DAYS = 10

SHOOTOUT_SEED = 7

#: Scales the hourly drift traces into the same tps regime as the
#: benchmark experiments (peaks near 1.45k txn/s).
SHOOTOUT_BASE_LEVEL = 1250.0 * SHOOTOUT_SLOT_SECONDS

#: Forecast leads scored in the payload (slots ahead = hours here).
SHOOTOUT_TAUS = (1, 3, 6)

#: workload name -> generator.  All four share the quiet-prefix
#: contract: days [0, SHOOTOUT_TRAIN_DAYS) are regime-change-free.
DRIFT_WORKLOADS = {
    "period-drift": drifting_period_trace,
    "amp-growth": growing_amplitude_trace,
    "novel-spike": novel_spike_trace,
    "level-shift": level_shift_trace,
}


@dataclass
class ShootoutResult:
    """Per-cell payloads, keyed by ``workload+predictor``."""

    runs: Dict[str, dict]


def _cell_name(workload: str, predictor: str) -> str:
    return f"{workload}+{predictor}"


def drift_workload_trace(
    workload: str,
    seed: int,
    n_days: int,
    train_days: int = SHOOTOUT_TRAIN_DAYS,
):
    """Build one named drift trace in the benchmark tps regime.

    The quiet (regime-change-free) prefix is pinned to ``train_days``,
    so whatever slice the experiment trains on is drift-free by
    construction and the regime change always lands in the evaluation
    window.
    """
    from ..errors import ConfigurationError

    try:
        builder = DRIFT_WORKLOADS[workload]
    except KeyError:
        raise ConfigurationError(
            f"unknown drift workload {workload!r} "
            f"(expected one of {tuple(DRIFT_WORKLOADS)})"
        ) from None
    kwargs = dict(
        n_days=n_days,
        slot_seconds=SHOOTOUT_SLOT_SECONDS,
        base_level=SHOOTOUT_BASE_LEVEL,
        seed=seed,
    )
    if workload == "level-shift":
        # The step lands two days into the evaluation window.
        kwargs["shift_day"] = min(train_days + 2, n_days - 1)
    else:
        kwargs["quiet_days"] = min(train_days, n_days - 1)
    return builder(**kwargs)


def run_one(
    workload: str,
    predictor_name: str,
    seed: int,
    config,
    n_days: int = SHOOTOUT_DAYS,
) -> dict:
    """One hermetic predictor-x-workload cell -> JSON payload.

    Runs under a private telemetry scope so the accuracy stats in the
    payload come from this cell alone (cells stay order-independent,
    which is what makes parallel execution bit-identical to serial).
    """
    import math

    from ..sim import run_capacity_simulation
    from ..telemetry import AccuracyTracker, MetricsRegistry, Telemetry
    from ..telemetry.runtime import telemetry_scope

    config = config.with_interval(SHOOTOUT_SLOT_SECONDS)
    train_days = min(SHOOTOUT_TRAIN_DAYS, n_days - 1)
    trace = drift_workload_trace(
        workload, seed=seed, n_days=n_days, train_days=train_days
    )
    train = trace.slice_days(0, train_days).as_rate_per_second()
    evaluation = trace.slice_days(train_days, n_days - train_days)

    pspec = get_predictor_spec(predictor_name)
    if pspec.needs_truth:
        predictor = pspec.factory(
            np.concatenate([train, evaluation.as_rate_per_second()])
        )
    else:
        kwargs = (
            {"period": SHOOTOUT_SLOTS_PER_DAY}
            if pspec.accepts("period")
            else {}
        )
        predictor = pspec.build(**kwargs).fit(train)

    metrics = MetricsRegistry()
    telemetry = Telemetry(
        metrics=metrics, accuracy=AccuracyTracker(metrics=metrics)
    )
    with telemetry_scope(telemetry):
        strategy = StrategySpec.parse(f"predictive:{pspec.name}").build(
            config,
            predictor=predictor,
            slots_per_day=SHOOTOUT_SLOTS_PER_DAY,
        )
        initial = max(
            1,
            math.ceil(
                float(evaluation.as_rate_per_second()[0]) * 1.3 / config.q
            ),
        )
        result = run_capacity_simulation(
            evaluation,
            strategy,
            config,
            initial_machines=initial,
            history_seed=[float(v) for v in train],
            telemetry=telemetry,
        )
        accuracy = {}
        for tau in SHOOTOUT_TAUS:
            stats = telemetry.accuracy.errors(pspec.name, tau)
            if stats is None:
                continue
            accuracy[f"tau{tau}"] = {
                key: (
                    round(float(value), 6)
                    if isinstance(value, float)
                    else value
                )
                for key, value in sorted(stats.items())
            }
    payload = capacity_payload(result)
    payload["workload"] = workload
    payload["predictor"] = pspec.name
    payload["accuracy"] = accuracy
    return payload


def grid(
    workloads: Sequence[str] = tuple(DRIFT_WORKLOADS),
    predictors: Sequence[str] = (),
    seed: int = SHOOTOUT_SEED,
    n_days: int = SHOOTOUT_DAYS,
) -> List:
    """workloads x predictors cells (4 x 8 = 32 by default)."""
    from ..runner import RunSpec

    names = tuple(predictors) or registered_predictors()
    return [
        RunSpec(
            experiment="shootout",
            cell=_cell_name(workload, name),
            strategy=f"predictive:{name}",
            seed=seed,
            overrides=(
                ("workload", str(workload)),
                ("n_days", int(n_days)),
            ),
        )
        for workload in workloads
        for name in names
    ]


def run_cell(spec, config) -> dict:
    strategy = StrategySpec.parse(spec.strategy)
    return run_one(
        workload=str(spec.option("workload")),
        predictor_name=strategy.predictor_name,
        seed=spec.seed,
        config=config,
        n_days=int(spec.option("n_days", SHOOTOUT_DAYS)),
    )


def run_shootout(
    config=None,
    workloads: Sequence[str] = tuple(DRIFT_WORKLOADS),
    predictors: Sequence[str] = (),
    seed: int = SHOOTOUT_SEED,
    n_days: int = SHOOTOUT_DAYS,
) -> ShootoutResult:
    """Serial runner: execute the whole grid in-process."""
    from ..config import default_config

    config = config or default_config()
    names = tuple(predictors) or registered_predictors()
    runs: Dict[str, dict] = {}
    for workload in workloads:
        for name in names:
            runs[_cell_name(workload, name)] = run_one(
                workload, name, seed, config, n_days=n_days
            )
    return ShootoutResult(runs=runs)


def summarize(result: ShootoutResult) -> str:
    """Per-workload leaderboard: SLA-insufficient slots, cost, MAPE."""
    by_workload: Dict[str, List[dict]] = {}
    for payload in result.runs.values():
        by_workload.setdefault(payload["workload"], []).append(payload)
    lines = []
    for workload in sorted(by_workload):
        rows = sorted(
            by_workload[workload],
            key=lambda p: (p["insufficient_slots"], p["cost_machine_slots"]),
        )
        spar = next(
            (p for p in rows if p["predictor"] == "spar"), None
        )
        lines.append(f"{workload}:")
        for payload in rows:
            tau1 = payload.get("accuracy", {}).get("tau1") or {}
            mape = tau1.get("mape_pct")
            mape_text = f"{mape:.1f}%" if mape is not None else "-"
            marker = ""
            if (
                spar is not None
                and payload is not spar
                and payload["insufficient_slots"] < spar["insufficient_slots"]
            ):
                marker = "  < spar"
            lines.append(
                f"  {payload['predictor']:<9} "
                f"insufficient={payload['insufficient_slots']:>3} "
                f"cost={payload['cost_machine_slots']:>9.1f} "
                f"mape[t1]={mape_text:<7}{marker}"
            )
    return "\n".join(lines)
