"""Retry policy for failed or stalled transfers.

Exponential backoff with seeded jitter, a per-transfer timeout that
drives the migrator's stall watchdog, and a max-attempts cap.  All times
are simulated seconds, so the same seed reproduces the same retry
timeline exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import FaultError


@dataclass(frozen=True)
class RetryPolicy:
    """How a transfer is re-driven after a timeout or corruption.

    ``transfer_timeout_seconds`` is how long a transfer may make no
    progress before it is declared stalled (``fault.detected``); retry
    ``k`` then waits ``base_backoff_seconds * backoff_multiplier**(k-1)``
    scaled by ``1 ± jitter_fraction``.
    """

    max_attempts: int = 5
    base_backoff_seconds: float = 2.0
    backoff_multiplier: float = 2.0
    jitter_fraction: float = 0.1
    transfer_timeout_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise FaultError("max_attempts must be >= 1")
        if self.base_backoff_seconds <= 0:
            raise FaultError("base_backoff_seconds must be positive")
        if self.backoff_multiplier < 1.0:
            raise FaultError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise FaultError("jitter_fraction must be in [0, 1)")
        if self.transfer_timeout_seconds <= 0:
            raise FaultError("transfer_timeout_seconds must be positive")

    def should_retry(self, attempt: int) -> bool:
        """Whether attempt number ``attempt`` (1-based) is allowed."""
        return attempt <= self.max_attempts

    def backoff_seconds(
        self, attempt: int, rng: Optional[np.random.Generator] = None
    ) -> float:
        """Backoff before retry ``attempt`` (1-based), with jitter when a
        generator is supplied."""
        if attempt < 1:
            raise FaultError("attempt counts from 1")
        base = self.base_backoff_seconds * self.backoff_multiplier ** (attempt - 1)
        if rng is None or self.jitter_fraction == 0.0:
            return base
        return base * (1.0 + self.jitter_fraction * rng.uniform(-1.0, 1.0))

    @classmethod
    def from_config(cls, fault_config) -> "RetryPolicy":
        """Build from a :class:`repro.config.FaultConfig` section."""
        return cls(
            max_attempts=fault_config.max_attempts,
            base_backoff_seconds=fault_config.base_backoff_seconds,
            backoff_multiplier=fault_config.backoff_multiplier,
            jitter_fraction=fault_config.jitter_fraction,
            transfer_timeout_seconds=fault_config.transfer_timeout_seconds,
        )
