"""Fault injection and failure recovery (the chaos layer).

The paper evaluates P-Store on a fault-free cluster; this package adds
the machinery to break that assumption on purpose and measure how the
predictive control loop degrades and recovers:

* :mod:`repro.faults.spec` — the declarative fault model
  (:class:`FaultSpec`, :class:`FaultScenario`): node crashes,
  stragglers, migration stalls, transfer corruption, forecast drift,
  fired at simulated times or on trigger predicates;
* :mod:`repro.faults.injector` — the seeded :class:`FaultInjector`
  state machine hosts thread through the simulator, migrator,
  controller, and service, plus the deterministic
  injected/detected/recovered chronicle;
* :mod:`repro.faults.retry` — :class:`RetryPolicy` (exponential backoff
  with jitter, per-transfer timeouts) used to re-drive stalled or
  corrupted transfers;
* :mod:`repro.faults.report` — recovery accounting (MTTR, detection
  latency) and the text report of a chaos run.

See docs/FAULTS.md for the taxonomy, the scenario-file format, and the
recovery semantics of each fault class.
"""

from .injector import FaultInjector, FaultRecord, TTR_BOUNDS, injector_from_config
from .report import (
    RecoveryStats,
    mean_time_to_recover,
    recovery_stats,
    render_fault_report,
)
from .retry import RetryPolicy
from .spec import (
    FAULT_KINDS,
    FORECAST_DRIFT,
    MIGRATION_STALL,
    NODE_CRASH,
    NODE_SLOWDOWN,
    TRANSFER_CORRUPTION,
    FaultScenario,
    FaultSpec,
    crash_during_migration_scenario,
    mixed_chaos_scenario,
)

__all__ = [
    "FAULT_KINDS",
    "FORECAST_DRIFT",
    "FaultInjector",
    "FaultRecord",
    "FaultScenario",
    "FaultSpec",
    "MIGRATION_STALL",
    "NODE_CRASH",
    "NODE_SLOWDOWN",
    "RecoveryStats",
    "RetryPolicy",
    "TRANSFER_CORRUPTION",
    "TTR_BOUNDS",
    "crash_during_migration_scenario",
    "injector_from_config",
    "mean_time_to_recover",
    "mixed_chaos_scenario",
    "recovery_stats",
    "render_fault_report",
]
