"""Recovery accounting: turn an injector's records into SLA-style
summaries (counts per fault class, detection latency, mean time to
recover) and a human-readable report block."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .injector import FaultRecord


@dataclass(frozen=True)
class RecoveryStats:
    """Aggregate outcome of one chaos run."""

    injected: int
    detected: int
    recovered: int
    mean_time_to_detect: Optional[float]
    mean_time_to_recover: Optional[float]
    max_time_to_recover: Optional[float]
    by_kind: Dict[str, int]

    @property
    def all_recovered(self) -> bool:
        return self.recovered == self.injected


def mean_time_to_recover(records: Sequence[FaultRecord]) -> Optional[float]:
    """Mean TTR over the recovered faults (None when nothing recovered)."""
    ttrs = [r.time_to_recover for r in records if r.time_to_recover is not None]
    if not ttrs:
        return None
    return sum(ttrs) / len(ttrs)


def recovery_stats(records: Sequence[FaultRecord]) -> RecoveryStats:
    """Summarise a run's fault records."""
    ttds = [r.time_to_detect for r in records if r.time_to_detect is not None]
    ttrs = [r.time_to_recover for r in records if r.time_to_recover is not None]
    by_kind: Dict[str, int] = {}
    for record in records:
        by_kind[record.kind] = by_kind.get(record.kind, 0) + 1
    return RecoveryStats(
        injected=len(records),
        detected=sum(1 for r in records if r.detected_at is not None),
        recovered=len(ttrs),
        mean_time_to_detect=sum(ttds) / len(ttds) if ttds else None,
        mean_time_to_recover=sum(ttrs) / len(ttrs) if ttrs else None,
        max_time_to_recover=max(ttrs) if ttrs else None,
        by_kind=by_kind,
    )


def _fmt(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:,.1f}s"


def render_fault_report(records: Sequence[FaultRecord]) -> str:
    """One text block per fault plus the aggregate stats, for CLI/bench
    output."""
    lines: List[str] = []
    for record in records:
        target = f" node {record.node}" if record.node is not None else ""
        label = f" ({record.spec.label})" if record.spec.label else ""
        lines.append(
            f"#{record.fault_id} {record.kind}{target}{label}: "
            f"injected t={record.injected_at:,.0f}s, "
            f"detected {_fmt(record.time_to_detect)} later, "
            f"recovered {_fmt(record.time_to_recover)} later"
            + (f", {record.retries} retries" if record.retries else "")
        )
    stats = recovery_stats(records)
    lines.append(
        f"faults: {stats.injected} injected, {stats.detected} detected, "
        f"{stats.recovered} recovered; "
        f"MTTR {_fmt(stats.mean_time_to_recover)} "
        f"(max {_fmt(stats.max_time_to_recover)})"
    )
    return "\n".join(lines)
