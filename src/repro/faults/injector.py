"""Seeded fault scheduling, the live-fault state machine, and the
injected/detected/recovered chronicle.

The :class:`FaultInjector` is the single mutable object a chaos run
threads through the simulator, migrator, controller, and service.  Hosts
drive it with two calls — :meth:`advance` (simulated clock) and
:meth:`notify_migration_started` (trigger predicate) — and query the
currently-active effects (stalls, stragglers, drift, crashes) through
side-effect-free accessors.  Every lifecycle step is appended to an
always-on :attr:`chronicle` (the deterministic audit log chaos tests
compare across runs) and mirrored into telemetry when enabled.

Determinism: all firing decisions and random choices come from one
``numpy`` generator seeded by the scenario, and time only enters through
the host's simulated clock — two runs of the same scenario produce
byte-identical chronicles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..check import invariants
from ..errors import FaultError
from ..telemetry import get_telemetry
from .spec import (
    FORECAST_DRIFT,
    MIGRATION_STALL,
    NODE_CRASH,
    NODE_SLOWDOWN,
    TRANSFER_CORRUPTION,
    FaultScenario,
    FaultSpec,
)

#: Histogram bounds for time-to-recover (seconds, powers of two).
TTR_BOUNDS = tuple(float(2 ** i) for i in range(20))


@dataclass
class FaultRecord:
    """Lifecycle of one injected fault (the unit of the chronicle)."""

    fault_id: int
    spec: FaultSpec
    injected_at: float
    node: Optional[int] = None
    detected_at: Optional[float] = None
    recovered_at: Optional[float] = None
    retries: int = 0
    ends_at: Optional[float] = None

    @property
    def kind(self) -> str:
        return self.spec.kind

    @property
    def time_to_detect(self) -> Optional[float]:
        if self.detected_at is None:
            return None
        return self.detected_at - self.injected_at

    @property
    def time_to_recover(self) -> Optional[float]:
        if self.recovered_at is None:
            return None
        return self.recovered_at - self.injected_at


@dataclass
class _Pending:
    order: int
    spec: FaultSpec


class FaultInjector:
    """Fires a scenario's faults at their simulated times/triggers and
    tracks which effects are live right now.

    Parameters
    ----------
    scenario:
        a :class:`FaultScenario`, or a plain sequence of
        :class:`FaultSpec` (then ``seed`` supplies the RNG seed).
    seed:
        overrides the scenario's seed when given.
    telemetry:
        bundle to mirror lifecycle events into; defaults to the
        process-global one at construction time.
    """

    def __init__(
        self,
        scenario: Union[FaultScenario, Sequence[FaultSpec]],
        seed: Optional[int] = None,
        telemetry=None,
    ):
        if isinstance(scenario, FaultScenario):
            specs: Tuple[FaultSpec, ...] = scenario.faults
            base_seed = scenario.seed
            self.name = scenario.name
        else:
            specs = tuple(scenario)
            base_seed = 0
            self.name = "ad-hoc"
        for spec in specs:
            if not isinstance(spec, FaultSpec):
                raise FaultError("scenario must contain FaultSpec instances")
        self.seed = base_seed if seed is None else seed
        self._rng = np.random.default_rng(self.seed)
        self._telemetry = telemetry if telemetry is not None else get_telemetry()

        self._timed: List[_Pending] = sorted(
            (
                _Pending(i, s)
                for i, s in enumerate(specs)
                if s.at_time is not None
            ),
            key=lambda p: (p.spec.at_time, p.order),
        )
        self._triggered: List[_Pending] = [
            _Pending(i, s) for i, s in enumerate(specs) if s.on_migration is not None
        ]
        self._now = 0.0
        self._migrations_started = 0
        self._next_fault_id = 1
        self._clock = invariants.MonotoneClock("FaultInjector.advance", start=0.0)

        self.records: List[FaultRecord] = []
        #: Deterministic audit log: one flat dict per lifecycle step.
        self.chronicle: List[dict] = []

        self._new_crashes: List[FaultRecord] = []
        self._crashed_nodes: Set[int] = set()
        self._slowdowns: List[FaultRecord] = []
        self._stalls: List[FaultRecord] = []
        self._drifts: List[FaultRecord] = []
        self._corruption_queue: List[FaultRecord] = []
        #: fault_id -> flight-recorder ID of its fault.injected record,
        #: so detected/retry/recovered records chain onto the injection.
        self._fault_chronicle_ids: dict = {}

    # ------------------------------------------------------------------
    # Clock and triggers
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self._now

    @property
    def pending_count(self) -> int:
        return len(self._timed) + len(self._triggered)

    def advance(self, now: float) -> List[FaultRecord]:
        """Move the injector clock to ``now``; fires every time-scheduled
        fault that has come due and auto-recovers expired windows.
        Returns the faults fired by this call.

        The clock is monotone: a host subsystem whose own clock lags the
        furthest one seen (e.g. the migrator stepping inside a service
        tick) simply does not fire anything new.
        """
        self._now = max(self._now, now)
        if invariants.enabled(invariants.CHEAP):
            # Guards the clamp above: the injector clock may never run
            # backwards even when hosts advance out of order.
            self._clock.observe(self._now)
        fired: List[FaultRecord] = []
        while self._timed and self._timed[0].spec.at_time <= self._now + 1e-9:
            pending = self._timed.pop(0)
            fired.append(self._fire(pending.spec, pending.spec.at_time))
        self._expire_windows()
        return fired

    def notify_migration_started(self, now: Optional[float] = None) -> List[FaultRecord]:
        """Count a reconfiguration start; fires ``on_migration`` faults
        whose trigger matches the new count."""
        if now is not None:
            self.advance(now)
        self._migrations_started += 1
        due = [
            p for p in self._triggered
            if p.spec.on_migration == self._migrations_started
        ]
        self._triggered = [
            p for p in self._triggered
            if p.spec.on_migration != self._migrations_started
        ]
        return [self._fire(p.spec, self._now) for p in sorted(due, key=lambda p: p.order)]

    def seconds_to_next_change(self, now: Optional[float] = None) -> float:
        """Seconds until the next scheduled firing or window expiry
        (``inf`` when nothing further is time-driven)."""
        now = self._now if now is None else now
        candidates = [p.spec.at_time for p in self._timed]
        for record in (*self._slowdowns, *self._stalls, *self._drifts):
            if record.ends_at is not None:
                candidates.append(record.ends_at)
        future = [c - now for c in candidates if c > now + 1e-9]
        return min(future) if future else float("inf")

    # ------------------------------------------------------------------
    # Firing and lifecycle
    # ------------------------------------------------------------------

    def _fire(self, spec: FaultSpec, at: float) -> FaultRecord:
        record = FaultRecord(
            fault_id=self._next_fault_id,
            spec=spec,
            injected_at=at,
            node=spec.node,
        )
        self._next_fault_id += 1
        if spec.is_windowed:
            record.ends_at = at + spec.duration_seconds
        self.records.append(record)

        if spec.kind == NODE_CRASH:
            self._new_crashes.append(record)
        elif spec.kind == NODE_SLOWDOWN:
            self._slowdowns.append(record)
        elif spec.kind == MIGRATION_STALL:
            self._stalls.append(record)
        elif spec.kind == FORECAST_DRIFT:
            self._drifts.append(record)
        elif spec.kind == TRANSFER_CORRUPTION:
            self._corruption_queue.append(record)

        self._log("fault.injected", record, time=at)
        tel = self._telemetry
        if tel.enabled:
            tel.metrics.counter("faults.injected", kind=spec.kind).inc()
        return record

    def _expire_windows(self) -> None:
        for active in (self._slowdowns, self._stalls, self._drifts):
            for record in list(active):
                if record.ends_at is not None and record.ends_at <= self._now + 1e-9:
                    active.remove(record)
                    # Windowed faults heal when the window closes; hosts
                    # that noticed earlier already marked detection.
                    self.mark_recovered(record, record.ends_at)

    def mark_detected(self, record: FaultRecord, now: float) -> None:
        """Record that a subsystem noticed the fault (idempotent)."""
        if record.detected_at is not None:
            return
        record.detected_at = now
        self._log("fault.detected", record, time=now,
                  time_to_detect=record.time_to_detect)
        tel = self._telemetry
        if tel.enabled:
            tel.metrics.counter("faults.detected", kind=record.kind).inc()

    def mark_retry(self, record: FaultRecord, now: float,
                   backoff_seconds: float = 0.0) -> None:
        """Record one re-drive attempt against a stalled/corrupt transfer."""
        record.retries += 1
        self._log("fault.retry", record, time=now, attempt=record.retries,
                  backoff_seconds=backoff_seconds)

    def mark_recovered(self, record: FaultRecord, now: float) -> None:
        """Record full recovery from the fault (idempotent)."""
        if record.recovered_at is not None:
            return
        record.recovered_at = now
        self._log("fault.recovered", record, time=now,
                  time_to_recover=record.time_to_recover,
                  retries=record.retries)
        tel = self._telemetry
        if tel.enabled:
            tel.metrics.counter("faults.recovered", kind=record.kind).inc()
            tel.metrics.histogram(
                "faults.ttr_seconds", bounds=TTR_BOUNDS
            ).observe(record.time_to_recover)

    def _log(self, event: str, record: FaultRecord, time: float, **fields) -> None:
        entry = {
            "event": event,
            "time": time,
            "fault_id": record.fault_id,
            "kind": record.kind,
            "node": record.node,
            "label": record.spec.label,
        }
        entry.update(fields)
        self.chronicle.append(entry)
        tel = self._telemetry
        if tel.enabled:
            # the event's own kind is the lifecycle step; the fault class
            # rides along as fault_kind
            mirrored = {k: v for k, v in entry.items() if k != "event"}
            mirrored["fault_kind"] = mirrored.pop("kind")
            tel.events.emit(event, **mirrored)
            rec = tel.chronicle.record(
                event,
                time=time,
                parent=self._fault_chronicle_ids.get(record.fault_id),
                fault_id=record.fault_id,
                fault_kind=record.kind,
                node=record.node,
                label=record.spec.label,
                **fields,
            )
            if event == "fault.injected":
                self._fault_chronicle_ids[record.fault_id] = rec.get("id")

    # ------------------------------------------------------------------
    # Live-effect queries (side-effect free unless named ``take_*``)
    # ------------------------------------------------------------------

    def take_new_crashes(self) -> List[FaultRecord]:
        """Crash faults fired since the last call (host must handle each:
        resolve the victim, fail the node, and mark detection/recovery)."""
        fresh = self._new_crashes
        self._new_crashes = []
        return fresh

    def resolve_crash_node(
        self, record: FaultRecord, live_nodes: Sequence[int]
    ) -> int:
        """Pin the crash to a machine: the spec's target when it names a
        live node, else a seeded-RNG pick among the survivors."""
        live = sorted(live_nodes)
        if not live:
            raise FaultError("cannot crash a node: no live nodes")
        if record.node is not None and record.node in live:
            victim = record.node
        else:
            victim = live[int(self._rng.integers(0, len(live)))]
        record.node = victim
        self._crashed_nodes.add(victim)
        return victim

    @property
    def crashed_nodes(self) -> Set[int]:
        return set(self._crashed_nodes)

    def migration_stalled(self, now: Optional[float] = None) -> bool:
        """Whether a migration-stall window is open right now."""
        return self.stall_record(now) is not None

    def stall_record(self, now: Optional[float] = None) -> Optional[FaultRecord]:
        now = self._now if now is None else now
        for record in self._stalls:
            if record.injected_at <= now + 1e-9 and (
                record.ends_at is None or now < record.ends_at - 1e-9
            ):
                return record
        return None

    def stall_remaining(self, now: Optional[float] = None) -> float:
        """Seconds left in the currently-open stall window (0 if none)."""
        now = self._now if now is None else now
        record = self.stall_record(now)
        if record is None or record.ends_at is None:
            return 0.0
        return max(0.0, record.ends_at - now)

    def capacity_multiplier(self, node: int, now: Optional[float] = None) -> float:
        """Effective capacity of ``node`` (1.0 = healthy straggler-free)."""
        now = self._now if now is None else now
        multiplier = 1.0
        for record in self._slowdowns:
            if record.node == node and record.injected_at <= now + 1e-9:
                multiplier *= record.spec.capacity_multiplier
        return multiplier

    def capacity_multipliers(
        self, n_machines: int, now: Optional[float] = None
    ) -> np.ndarray:
        out = np.ones(n_machines)
        for machine in range(n_machines):
            out[machine] = self.capacity_multiplier(machine, now)
        return out

    @property
    def any_slowdown_active(self) -> bool:
        return bool(self._slowdowns)

    def forecast_multiplier(self, now: Optional[float] = None) -> float:
        """Product of the active drift windows' magnitudes (1.0 = honest
        forecasts)."""
        now = self._now if now is None else now
        multiplier = 1.0
        for record in self._drifts:
            if record.injected_at <= now + 1e-9:
                multiplier *= record.spec.magnitude
        return multiplier

    def take_corruption(self) -> Optional[FaultRecord]:
        """Consume one pending transfer-corruption marker, if any."""
        if self._corruption_queue:
            return self._corruption_queue.pop(0)
        return None

    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultInjector({self.name!r}, seed={self.seed}, "
            f"fired={len(self.records)}, pending={self.pending_count})"
        )


def injector_from_config(config, telemetry=None) -> Optional[FaultInjector]:
    """Build the injector described by ``config.faults``.

    Returns None when fault injection is disabled, so hosts can do
    ``injector = injector or injector_from_config(config)`` and keep the
    fault-free fast path byte-identical.
    """
    fc = config.faults
    if not fc.enabled:
        return None
    if not fc.scenario:
        raise FaultError(
            "faults.enabled is set but faults.scenario names no file; "
            "either point it at a scenario JSON or construct the "
            "FaultInjector programmatically"
        )
    scenario = FaultScenario.from_file(fc.scenario)
    return FaultInjector(
        scenario,
        seed=fc.seed if fc.seed else None,
        telemetry=telemetry,
    )
