"""Declarative fault model: what can go wrong, when, and how badly.

A :class:`FaultSpec` describes one failure to inject into a run.  The
taxonomy covers the ways the paper's fault-free evaluation can be
broken (see docs/FAULTS.md):

``node_crash``
    a machine dies; its buckets must be recovered onto survivors and
    the controller must re-plan with the smaller cluster;
``node_slowdown``
    a straggler: one machine serves at ``capacity_multiplier`` of its
    normal rate for ``duration_seconds``;
``migration_stall``
    an in-flight reconfiguration stops making progress (a wedged
    transfer lane) until the stall window ends; the migrator's retry
    watchdog must detect and re-drive it;
``transfer_corruption``
    one machine-pair transfer arrives corrupted and must be re-sent
    before its bucket moves commit;
``forecast_drift``
    the predictor's output is scaled by ``magnitude`` for a window,
    emulating model drift / a workload shift the model has not seen.

Faults fire either at an absolute simulated time (``at_time``) or on a
trigger predicate (``on_migration=3`` fires when the 3rd reconfiguration
of the run starts).  A :class:`FaultScenario` bundles the specs with the
seed that makes a chaos run reproducible.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..errors import FaultError

#: The supported fault classes.
NODE_CRASH = "node_crash"
NODE_SLOWDOWN = "node_slowdown"
MIGRATION_STALL = "migration_stall"
TRANSFER_CORRUPTION = "transfer_corruption"
FORECAST_DRIFT = "forecast_drift"

FAULT_KINDS = (
    NODE_CRASH,
    NODE_SLOWDOWN,
    MIGRATION_STALL,
    TRANSFER_CORRUPTION,
    FORECAST_DRIFT,
)

#: Kinds that act over a window and therefore need a positive duration.
_WINDOWED = (NODE_SLOWDOWN, MIGRATION_STALL, FORECAST_DRIFT)


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault.

    Exactly one of ``at_time`` (simulated seconds) and ``on_migration``
    (1-based count of reconfiguration starts) selects the trigger.
    ``node`` targets a specific machine for crash/slowdown faults; when
    None the injector picks one of the live machines with its seeded RNG.
    """

    kind: str
    at_time: Optional[float] = None
    on_migration: Optional[int] = None
    node: Optional[int] = None
    duration_seconds: float = 0.0
    capacity_multiplier: float = 1.0
    magnitude: float = 1.0
    label: str = ""

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultError(
                f"unknown fault kind {self.kind!r}; valid kinds are "
                f"{sorted(FAULT_KINDS)}"
            )
        if (self.at_time is None) == (self.on_migration is None):
            raise FaultError(
                f"{self.kind}: exactly one of at_time / on_migration must be set"
            )
        if self.at_time is not None and self.at_time < 0:
            raise FaultError(f"{self.kind}: at_time must be >= 0")
        if self.on_migration is not None and self.on_migration < 1:
            raise FaultError(f"{self.kind}: on_migration counts from 1")
        if self.kind in _WINDOWED and self.duration_seconds <= 0:
            raise FaultError(
                f"{self.kind}: duration_seconds must be positive"
            )
        if self.kind == NODE_SLOWDOWN and not 0 < self.capacity_multiplier < 1:
            raise FaultError(
                "node_slowdown: capacity_multiplier must be in (0, 1) "
                f"(got {self.capacity_multiplier})"
            )
        if self.kind == NODE_SLOWDOWN and self.node is None:
            raise FaultError("node_slowdown: a target node is required")
        if self.kind == FORECAST_DRIFT and self.magnitude <= 0:
            raise FaultError("forecast_drift: magnitude must be positive")
        if self.node is not None and self.node < 0:
            raise FaultError(f"{self.kind}: node must be >= 0")

    @property
    def is_windowed(self) -> bool:
        return self.kind in _WINDOWED

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        valid = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - valid
        if unknown:
            raise FaultError(
                f"unknown fault spec keys {sorted(unknown)}; valid keys "
                f"are {sorted(valid)}"
            )
        return cls(**data)

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class FaultScenario:
    """A named, seeded bundle of faults (one chaos run's script).

    Scenario files are JSON::

        {"name": "crash-mid-migration",
         "seed": 7,
         "faults": [
           {"kind": "node_crash", "on_migration": 1},
           {"kind": "forecast_drift", "at_time": 600,
            "duration_seconds": 1200, "magnitude": 0.5}
         ]}
    """

    faults: Tuple[FaultSpec, ...]
    seed: int = 0
    name: str = "scenario"

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for spec in self.faults:
            if not isinstance(spec, FaultSpec):
                raise FaultError("faults must be FaultSpec instances")

    def __len__(self) -> int:
        return len(self.faults)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultScenario":
        valid = {"faults", "seed", "name"}
        unknown = set(data) - valid
        if unknown:
            raise FaultError(
                f"unknown scenario keys {sorted(unknown)}; valid keys are "
                f"{sorted(valid)}"
            )
        raw = data.get("faults", ())
        if not isinstance(raw, (list, tuple)):
            raise FaultError("scenario 'faults' must be a list")
        specs = tuple(
            spec if isinstance(spec, FaultSpec) else FaultSpec.from_dict(spec)
            for spec in raw
        )
        return cls(
            faults=specs,
            seed=int(data.get("seed", 0)),
            name=str(data.get("name", "scenario")),
        )

    @classmethod
    def from_file(cls, path) -> "FaultScenario":
        try:
            text = pathlib.Path(path).read_text()
        except OSError as exc:
            raise FaultError(f"cannot read scenario file {path}: {exc}")
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultError(f"scenario file {path} is not valid JSON: {exc}")
        if not isinstance(data, dict):
            raise FaultError("scenario file must contain a JSON object")
        return cls.from_dict(data)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "faults": [spec.to_dict() for spec in self.faults],
        }


def crash_during_migration_scenario(
    migration: int = 1, seed: int = 7, node: Optional[int] = None
) -> FaultScenario:
    """The canonical chaos drill: kill a machine as a reconfiguration
    starts, forcing an abort, emergency bucket recovery, and a re-plan."""
    return FaultScenario(
        faults=(
            FaultSpec(kind=NODE_CRASH, on_migration=migration, node=node,
                      label="crash-during-migration"),
        ),
        seed=seed,
        name="crash-during-migration",
    )


def mixed_chaos_scenario(
    crash_time: float,
    slow_node: int = 0,
    seed: int = 7,
    drift_magnitude: float = 0.6,
) -> FaultScenario:
    """One fault of every windowed class plus a crash, spread over a day
    of compressed benchmark time (used by the chaos benchmark)."""
    faults: Sequence[FaultSpec] = (
        FaultSpec(kind=FORECAST_DRIFT, at_time=crash_time * 0.25,
                  duration_seconds=crash_time * 0.5,
                  magnitude=drift_magnitude, label="model-drift"),
        FaultSpec(kind=NODE_SLOWDOWN, at_time=crash_time * 0.5, node=slow_node,
                  duration_seconds=crash_time * 0.25,
                  capacity_multiplier=0.5, label="straggler"),
        FaultSpec(kind=NODE_CRASH, at_time=crash_time, label="crash"),
        FaultSpec(kind=MIGRATION_STALL, on_migration=2,
                  duration_seconds=120.0, label="wedged-transfer"),
    )
    return FaultScenario(faults=tuple(faults), seed=seed, name="mixed-chaos")
