"""Parallel migration schedules (Section 4.4.1, Table 1 of the paper).

A reconfiguration between ``B`` and ``A`` machines moves data between the
``s = min(B, A)`` machines of the smaller cluster and the ``delta =
|A - B|`` machines that are added (scale-out) or retired (scale-in).
Because every machine of the smaller cluster must exchange an *equal*
amount of data with every machine of the delta set, the transfer graph is
the complete bipartite graph ``K(s, delta)`` — each edge carrying
``1/(s * l)`` of the database (``l = max(B, A)``) — and a schedule is a
decomposition of that graph into *rounds* in which each machine
participates in at most one transfer.

``K(s, delta)`` decomposes into exactly ``max(s, delta)`` rounds, and the
paper's three scheduling cases are exactly the decompositions that also
allocate machines just-in-time:

1. ``delta <= s``: all delta machines allocated at once; ``s`` rounds of
   rotating senders (Fig. 4a).
2. ``delta`` a multiple of ``s``: blocks of ``s`` machines allocated one
   block at a time, each block filled by a Latin-square rotation
   (Fig. 4b).
3. otherwise: three phases — full blocks, a partially-filled block, and
   a final phase that finishes the partial block while filling the last
   ``r = delta mod s`` machines (Fig. 4c, Table 1).

Scale-in mirrors scale-out: generate the scale-out schedule and play it
backwards, so retiring machines drain (and are released) just-in-time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from ..errors import MigrationError

#: One transfer: (machine index in the smaller cluster,
#:                machine index within the delta set).
Edge = Tuple[int, int]


@dataclass(frozen=True)
class Transfer:
    """One sender -> receiver transfer within a round (machine indices
    are *global*: 0..l-1, where the smaller cluster occupies 0..s-1 on
    scale-out and the survivors occupy 0..s-1 on scale-in)."""

    sender: int
    receiver: int


@dataclass(frozen=True)
class MigrationSchedule:
    """A complete schedule for one reconfiguration.

    Attributes
    ----------
    before, after:
        cluster sizes around the move.
    rounds:
        tuple of rounds; each round is a tuple of :class:`Transfer` that
        run in parallel.
    allocation:
        machines allocated *during* each round (just-in-time policy).
    fraction_per_transfer:
        fraction of the whole database carried by one transfer.
    """

    before: int
    after: int
    rounds: Tuple[Tuple[Transfer, ...], ...]
    allocation: Tuple[int, ...]
    fraction_per_transfer: float

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)

    @property
    def is_scale_out(self) -> bool:
        return self.after > self.before

    @property
    def total_transfers(self) -> int:
        return sum(len(r) for r in self.rounds)

    @property
    def moved_fraction(self) -> float:
        return self.total_transfers * self.fraction_per_transfer

    def average_machines(self) -> float:
        """Time-average allocation (cross-checks Algorithm 4)."""
        if not self.rounds:
            return float(self.before)
        return sum(self.allocation) / len(self.allocation)

    def describe(self) -> str:
        """Human-readable rendering in the style of the paper's Table 1."""
        lines = []
        for i, round_ in enumerate(self.rounds, start=1):
            pairs = ", ".join(
                f"{t.sender + 1} -> {t.receiver + 1}" for t in round_
            )
            lines.append(f"round {i:>2} [{self.allocation[i - 1]:>2} mach]: {pairs}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Bipartite edge colouring (König construction)
# ----------------------------------------------------------------------


def _edge_coloring(
    edges: Sequence[Edge], n_left: int, n_right: int, n_colors: int
) -> List[List[Edge]]:
    """Partition bipartite ``edges`` into ``n_colors`` matchings.

    Classic constructive proof of König's edge-colouring theorem: insert
    edges one at a time; if no colour is free at both endpoints, swap
    colours along an alternating path.  Works for any bipartite graph
    with maximum degree <= ``n_colors``.
    """
    free_left: List[Set[int]] = [set(range(n_colors)) for _ in range(n_left)]
    free_right: List[Set[int]] = [set(range(n_colors)) for _ in range(n_right)]
    # colour -> endpoint adjacency, for the alternating-path walk.
    left_with: List[Dict[int, int]] = [dict() for _ in range(n_left)]
    right_with: List[Dict[int, int]] = [dict() for _ in range(n_right)]

    def assign(u: int, v: int, color: int) -> None:
        left_with[u][color] = v
        right_with[v][color] = u
        free_left[u].discard(color)
        free_right[v].discard(color)

    def unassign(u: int, v: int, color: int) -> None:
        del left_with[u][color]
        del right_with[v][color]
        free_left[u].add(color)
        free_right[v].add(color)

    for u, v in edges:
        if not free_left[u] or not free_right[v]:
            raise MigrationError(
                f"edge ({u}, {v}) exceeds the colour budget {n_colors}"
            )
        common = free_left[u] & free_right[v]
        if common:
            assign(u, v, min(common))
            continue
        # Alternating path: colour a free at u, colour b free at v.
        a = min(free_left[u])
        b = min(free_right[v])
        # Walk the a/b alternating path starting from v and swap colours.
        node, on_right, color = v, True, a
        path: List[Tuple[int, int, int]] = []  # (left, right, colour)
        while True:
            if on_right:
                partner = right_with[node].get(color)
                if partner is None:
                    break
                path.append((partner, node, color))
                node, on_right, color = partner, False, b
            else:
                partner = left_with[node].get(color)
                if partner is None:
                    break
                path.append((node, partner, color))
                node, on_right, color = partner, True, a
        for left, right, color in path:
            unassign(left, right, color)
        for left, right, color in path:
            assign(left, right, a if color == b else b)
        assign(u, v, a)

    rounds: List[List[Edge]] = [[] for _ in range(n_colors)]
    for u in range(n_left):
        for color, v in left_with[u].items():
            rounds[color].append((u, v))
    return rounds


# ----------------------------------------------------------------------
# Schedule construction
# ----------------------------------------------------------------------


def _scale_out_rounds(s: int, delta: int) -> Tuple[List[List[Edge]], List[int]]:
    """Rounds (as (sender, delta-member) edges) plus per-round delta-set
    allocation counts, for a scale-out of ``delta`` machines from ``s``."""
    senders = list(range(s))
    remainder = delta % s

    # Case 1: all new machines allocated at once, receivers always busy.
    if delta <= s:
        rounds: List[List[Edge]] = []
        for i in range(s):
            # Receiver j takes sender (j + i) mod s; receivers all busy,
            # senders rotate (some idle when delta < s).
            rounds.append([((j + i) % s, j) for j in range(delta)])
        allocation = [delta] * s
        return rounds, allocation

    rounds = []
    allocation = []
    full_blocks = delta // s if remainder == 0 else delta // s - 1

    # Phase 1: full blocks of s machines, one Latin square each.
    allocated = 0
    for b in range(full_blocks):
        block = list(range(b * s, (b + 1) * s))
        allocated = (b + 1) * s
        for i in range(s):
            rounds.append([(p, block[(p + i) % s]) for p in senders])
            allocation.append(allocated)

    if remainder == 0:
        return rounds, allocation

    # Phase 2: next block of s machines, filled for r rounds only.
    block2 = list(range(full_blocks * s, full_blocks * s + s))
    allocated += s
    for i in range(remainder):
        rounds.append([(p, block2[(p + i) % s]) for p in senders])
        allocation.append(allocated)

    # Phase 3: final r machines join; finish block2 and fill the new ones.
    final = list(range(full_blocks * s + s, delta))
    allocated += remainder
    edges: List[Edge] = []
    for j, receiver in enumerate(block2):
        # Receiver j already got senders {j, j-1, .., j-r+1} (mod s).
        received = {(j - i) % s for i in range(remainder)}
        edges.extend((p, receiver) for p in senders if p not in received)
    for receiver in final:
        edges.extend((p, receiver) for p in senders)
    phase3 = _edge_coloring(edges, n_left=s, n_right=delta, n_colors=s)
    for round_edges in phase3:
        rounds.append(sorted(round_edges))
        allocation.append(allocated)
    return rounds, allocation


def build_migration_schedule(before: int, after: int) -> MigrationSchedule:
    """Build the full parallel schedule for a ``B -> A`` reconfiguration.

    Machine indices are global: on scale-out, senders are ``0..B-1`` and
    new machines ``B..A-1``; on scale-in, survivors are ``0..A-1`` and
    retiring machines ``A..B-1`` (callers map these roles onto physical
    nodes).  ``allocation[i]`` counts machines physically present during
    round ``i`` under just-in-time allocation/release.
    """
    if before < 1 or after < 1:
        raise MigrationError(
            f"cluster sizes must be >= 1 (got B={before}, A={after})"
        )
    if before == after:
        return MigrationSchedule(
            before=before,
            after=after,
            rounds=(),
            allocation=(),
            fraction_per_transfer=0.0,
        )
    smaller = min(before, after)
    larger = max(before, after)
    delta = larger - smaller
    raw_rounds, raw_allocation = _scale_out_rounds(smaller, delta)

    def to_transfer(edge: Edge, scale_out: bool) -> Transfer:
        small_machine, delta_member = edge
        delta_machine = smaller + delta_member
        if scale_out:
            return Transfer(sender=small_machine, receiver=delta_machine)
        return Transfer(sender=delta_machine, receiver=small_machine)

    scale_out = after > before
    if scale_out:
        rounds = tuple(
            tuple(to_transfer(e, True) for e in round_) for round_ in raw_rounds
        )
        allocation = tuple(smaller + extra for extra in raw_allocation)
    else:
        # Mirror: play the scale-out schedule backwards so retiring
        # machines are drained and released just-in-time.
        rounds = tuple(
            tuple(to_transfer(e, False) for e in round_)
            for round_ in reversed(raw_rounds)
        )
        allocation = tuple(smaller + extra for extra in reversed(raw_allocation))
    return MigrationSchedule(
        before=before,
        after=after,
        rounds=rounds,
        allocation=allocation,
        fraction_per_transfer=1.0 / (smaller * larger),
    )


def validate_schedule(schedule: MigrationSchedule) -> None:
    """Assert every invariant of Section 4.4.1; raises on violation.

    * each machine participates in at most one transfer per round;
    * every (small-cluster, delta-set) pair transfers exactly once;
    * the number of rounds is ``max(s, delta)``;
    * machines are never used before being allocated.
    """
    before, after = schedule.before, schedule.after
    if before == after:
        if schedule.rounds:
            raise MigrationError("no-op move must have an empty schedule")
        return
    smaller, larger = min(before, after), max(before, after)
    delta = larger - smaller
    expected_rounds = max(smaller, delta)
    if schedule.n_rounds != expected_rounds:
        raise MigrationError(
            f"{before}->{after}: {schedule.n_rounds} rounds, "
            f"expected {expected_rounds}"
        )
    seen: Set[Tuple[int, int]] = set()
    for idx, round_ in enumerate(schedule.rounds):
        busy: Set[int] = set()
        for transfer in round_:
            for machine in (transfer.sender, transfer.receiver):
                if machine in busy:
                    raise MigrationError(
                        f"round {idx}: machine {machine} used twice"
                    )
                busy.add(machine)
                if machine >= schedule.allocation[idx]:
                    raise MigrationError(
                        f"round {idx}: machine {machine} not yet allocated "
                        f"(allocation={schedule.allocation[idx]})"
                    )
            pair = (transfer.sender, transfer.receiver)
            if pair in seen:
                raise MigrationError(f"duplicate transfer {pair}")
            seen.add(pair)
    if len(seen) != smaller * delta:
        raise MigrationError(
            f"{before}->{after}: {len(seen)} transfers, expected "
            f"{smaller * delta} (complete bipartite)"
        )
