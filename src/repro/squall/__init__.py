"""Squall-like live-migration subsystem.

Computes bucket-level reconfiguration plans, orders transfers with the
paper's three-case parallel schedule (Sec. 4.4.1), and executes moves in
simulated time — either standalone (capacity accounting) or against a
row-level cluster (bucket-accurate data movement).
"""

from .migrator import (
    CHUNK_SPACING_SECONDS,
    DEFAULT_CHUNK_KB,
    ActiveMigration,
    ClusterMigrator,
    chunk_spacing_seconds,
)
from .plan import (
    BucketMove,
    ReconfigurationPlan,
    balanced_target,
    make_reconfiguration_plan,
    plan_balance_error,
)
from .rebalance import (
    HotBucketReport,
    apply_rebalance,
    hot_bucket_report,
    make_skew_rebalance_plan,
)
from .schedule import (
    MigrationSchedule,
    Transfer,
    build_migration_schedule,
    validate_schedule,
)

__all__ = [
    "ActiveMigration",
    "BucketMove",
    "CHUNK_SPACING_SECONDS",
    "ClusterMigrator",
    "DEFAULT_CHUNK_KB",
    "HotBucketReport",
    "apply_rebalance",
    "hot_bucket_report",
    "make_skew_rebalance_plan",
    "MigrationSchedule",
    "ReconfigurationPlan",
    "Transfer",
    "balanced_target",
    "build_migration_schedule",
    "chunk_spacing_seconds",
    "make_reconfiguration_plan",
    "plan_balance_error",
    "validate_schedule",
]
