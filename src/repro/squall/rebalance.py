"""Skew-aware rebalancing — the paper's proposed future work.

The conclusion of the paper: "Future work should investigate combining
these ideas to build a system which uses predictive modeling for
proactive reconfiguration, but also manages skew [as E-Store and Clay
do]."  This module implements that combination at bucket granularity:

1. per-bucket access counters (maintained by the routing layer) feed a
   :func:`hot_bucket_report`;
2. when one partition's load share exceeds a threshold,
   :func:`make_skew_rebalance_plan` moves its hottest buckets to the
   least-loaded partitions — balancing *load*, not just data volume,
   without changing the cluster size.

This is the E-Store idea (move hot data away from hot partitions)
operating inside P-Store's bucket/plan machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..errors import MigrationError
from ..hstore.cluster import Cluster, PartitionPlan
from .plan import BucketMove, ReconfigurationPlan


@dataclass(frozen=True)
class HotBucketReport:
    """Load distribution at bucket and partition granularity."""

    total_accesses: int
    partition_load: Dict[int, int]      # partition -> accesses
    hottest_partition: int
    hottest_share: float                # fraction of total load
    hot_buckets: Tuple[Tuple[int, int], ...]  # (bucket, accesses), desc

    def imbalanced(self, threshold_share: float) -> bool:
        return self.hottest_share > threshold_share


def hot_bucket_report(cluster: Cluster, top_k: int = 10) -> HotBucketReport:
    """Summarise per-bucket access counts into a skew report."""
    if top_k < 1:
        raise MigrationError("top_k must be >= 1")
    counts = cluster.bucket_access_counts()
    total = int(counts.sum())
    partition_load: Dict[int, int] = {pid: 0 for pid in cluster.partition_ids}
    for bucket in range(cluster.n_buckets):
        owner = cluster.plan.owner(bucket)
        if owner in partition_load:
            partition_load[owner] += int(counts[bucket])
    if total > 0:
        hottest = max(partition_load, key=partition_load.get)
        hottest_share = partition_load[hottest] / total
    else:
        hottest = min(partition_load) if partition_load else -1
        hottest_share = 0.0
    order = np.argsort(counts)[::-1][:top_k]
    hot = tuple(
        (int(b), int(counts[b])) for b in order if counts[b] > 0
    )
    return HotBucketReport(
        total_accesses=total,
        partition_load=partition_load,
        hottest_partition=hottest,
        hottest_share=hottest_share,
        hot_buckets=hot,
    )


def make_skew_rebalance_plan(
    cluster: Cluster,
    max_moves: int = 8,
    target_share_factor: float = 1.10,
) -> ReconfigurationPlan:
    """Plan bucket moves that flatten the *load* distribution.

    Greedy E-Store-style placement: walk buckets from hottest to
    coldest; whenever the owning partition's load exceeds
    ``target_share_factor`` times the fair share, reassign the bucket to
    the currently coldest partition.  At most ``max_moves`` buckets move
    (live migration is not free), and the cluster size is unchanged.
    """
    if max_moves < 1:
        raise MigrationError("max_moves must be >= 1")
    if target_share_factor < 1.0:
        raise MigrationError("target_share_factor must be >= 1.0")
    counts = cluster.bucket_access_counts().astype(float)
    total = counts.sum()
    partitions = cluster.partition_ids
    if total <= 0 or len(partitions) < 2:
        return ReconfigurationPlan(
            current=cluster.plan, target=cluster.plan, moves=()
        )

    load: Dict[int, float] = {pid: 0.0 for pid in partitions}
    assignment = cluster.plan.assignment_array()
    for bucket in range(cluster.n_buckets):
        load[int(assignment[bucket])] += counts[bucket]
    fair = total / len(partitions)
    budget = fair * target_share_factor

    moves: List[BucketMove] = []
    for bucket in np.argsort(counts)[::-1]:
        if len(moves) >= max_moves or counts[bucket] <= 0:
            break
        source = int(assignment[bucket])
        if load[source] <= budget:
            continue
        coldest = min(partitions, key=lambda pid: load[pid])
        if coldest == source:
            continue
        # Only move if it actually improves balance.
        if load[coldest] + counts[bucket] >= load[source]:
            continue
        moves.append(
            BucketMove(
                bucket=int(bucket),
                source_partition=source,
                destination_partition=coldest,
            )
        )
        load[source] -= counts[bucket]
        load[coldest] += counts[bucket]
        assignment[bucket] = coldest

    return ReconfigurationPlan(
        current=cluster.plan,
        target=PartitionPlan(assignment),
        moves=tuple(moves),
    )


def apply_rebalance(cluster: Cluster, plan: ReconfigurationPlan) -> float:
    """Commit a skew-rebalance plan immediately; returns kB moved.

    Skew moves are small (a few hot buckets), so unlike full
    reconfigurations they are applied directly rather than scheduled
    through the machine-level migrator.
    """
    moved_kb = 0.0
    for move in plan.moves:
        moved_kb += cluster.move_bucket(move.bucket, move.destination_partition)
    return moved_kb
