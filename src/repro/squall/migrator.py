"""Simulated-time execution of reconfigurations (the Squall role).

:class:`ActiveMigration` advances one reconfiguration through its
schedule in simulated time, tracking per-machine data fractions, the
just-in-time machine allocation, and which machines are busy migrating —
everything the queueing engine and the capacity accounting need.

:class:`ClusterMigrator` binds migrations to a row-level
:class:`~repro.hstore.cluster.Cluster`: it computes the bucket-level
reconfiguration plan, and as each machine-pair transfer completes it
commits the corresponding bucket moves so the rows physically relocate.

When a :class:`~repro.faults.FaultInjector` is attached, the migrator
also runs the failure-recovery machinery: a stall watchdog that detects
wedged transfers after the :class:`~repro.faults.RetryPolicy` timeout
and re-drives them with exponential backoff, corrupted-transfer
re-sends (bucket moves only commit once a clean copy has arrived), and
an :meth:`ClusterMigrator.abort` path used when a node dies mid-move.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set, Tuple

import numpy as np

from ..check import invariants
from ..config import (
    DEFAULT_CHUNK_KB,
    DEFAULT_MIGRATION_RATE_KBPS,
    PStoreConfig,
)
from ..errors import MigrationError
from ..faults.retry import RetryPolicy
from ..hstore.cluster import Cluster
from ..telemetry import get_telemetry
from .plan import BucketMove, make_reconfiguration_plan
from .schedule import MigrationSchedule, Transfer, build_migration_schedule


def chunk_spacing_seconds(chunk_kb: float, rate_kbps: float) -> float:
    """Average spacing between migration chunks: one ``chunk_kb`` chunk
    every ``chunk_kb / R`` seconds at rate ``R`` (Sec. 8.1, footnote 1)."""
    if chunk_kb <= 0:
        raise MigrationError("chunk_kb must be positive")
    if rate_kbps <= 0:
        raise MigrationError("rate_kbps must be positive")
    return chunk_kb / rate_kbps


#: Spacing implied by the calibration defaults (1000 kB at R = 244 kB/s);
#: configured runs should derive their own via :func:`chunk_spacing_seconds`
#: or :attr:`ActiveMigration.chunk_spacing_seconds`.
CHUNK_SPACING_SECONDS = chunk_spacing_seconds(
    DEFAULT_CHUNK_KB, DEFAULT_MIGRATION_RATE_KBPS
)


class ActiveMigration:
    """One in-flight reconfiguration, advanced in simulated time.

    Machine indices are the *logical* indices of the schedule (the
    smaller cluster occupies 0..s-1); callers that operate on physical
    nodes supply a ``node_map`` from logical index to node id.

    Parameters
    ----------
    schedule:
        transfer schedule from :func:`build_migration_schedule`.
    database_kb:
        total database size; each transfer carries
        ``schedule.fraction_per_transfer * database_kb``.
    rate_kbps:
        migration rate of one partition-pair lane (the paper's ``R``;
        pass ``8 * R`` for the boosted reactive mode of Fig. 11).
    partitions_per_node:
        parallel lanes per machine pair.
    """

    def __init__(
        self,
        schedule: MigrationSchedule,
        database_kb: float,
        rate_kbps: float,
        partitions_per_node: int = 1,
        chunk_kb: float = DEFAULT_CHUNK_KB,
        node_map: Optional[Mapping[int, int]] = None,
    ):
        if database_kb <= 0:
            raise MigrationError("database_kb must be positive")
        if rate_kbps <= 0:
            raise MigrationError("rate_kbps must be positive")
        if partitions_per_node < 1:
            raise MigrationError("partitions_per_node must be >= 1")
        if chunk_kb <= 0:
            raise MigrationError("chunk_kb must be positive")
        self.schedule = schedule
        self.database_kb = database_kb
        self.rate_kbps = rate_kbps
        self.partitions_per_node = partitions_per_node
        self.chunk_kb = chunk_kb
        self.node_map = dict(node_map) if node_map is not None else None

        self._pair_kb = schedule.fraction_per_transfer * database_kb
        # A machine pair moves its data over P parallel partition lanes.
        lane_rate = rate_kbps * partitions_per_node
        self._round_seconds = (
            self._pair_kb / lane_rate if schedule.n_rounds else 0.0
        )
        self._round_index = 0
        self._elapsed_in_round = 0.0
        self._progress_applied = 0.0
        larger = max(schedule.before, schedule.after)
        self._fractions = np.zeros(larger)
        smaller = min(schedule.before, schedule.after)
        self._fractions[:smaller] = 1.0 / schedule.before
        if schedule.before > schedule.after:
            self._fractions[smaller:] = 1.0 / schedule.before
        # Fraction vector as of the last committed round.  Commits rebuild
        # from this snapshot, so partial-step float increments within a
        # round can never drift the committed trajectory.
        self._round_base = self._fractions.copy()
        self._completed_rounds: List[Tuple[Transfer, ...]] = []

    # ------------------------------------------------------------------
    # Progress
    # ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        return self._round_index >= self.schedule.n_rounds

    @property
    def round_seconds(self) -> float:
        return self._round_seconds

    @property
    def total_seconds(self) -> float:
        """Wall-clock duration of the whole reconfiguration."""
        return self._round_seconds * self.schedule.n_rounds

    @property
    def seconds_to_round_end(self) -> float:
        """Transfer time left in the current round (0 when done)."""
        if self.done:
            return 0.0
        return max(0.0, self._round_seconds - self._elapsed_in_round)

    @property
    def chunk_spacing_seconds(self) -> float:
        """Chunk spacing implied by this migration's chunk size and lane
        rate (replaces the old hardcoded calibration constant)."""
        return chunk_spacing_seconds(self.chunk_kb, self.rate_kbps)

    @property
    def elapsed_fraction(self) -> float:
        if self.schedule.n_rounds == 0:
            return 1.0
        done = self._round_index + (
            self._elapsed_in_round / self._round_seconds
            if self._round_seconds > 0 and not self.done
            else 0.0
        )
        return min(1.0, done / self.schedule.n_rounds)

    @property
    def fraction_moved(self) -> float:
        """Fraction of the *data being moved in this move* transferred
        so far (the ``f`` of Eq. 7)."""
        return self.elapsed_fraction

    def advance(self, dt: float) -> List[Tuple[Transfer, ...]]:
        """Advance ``dt`` seconds; returns the rounds completed in it."""
        if dt < 0:
            raise MigrationError("dt must be non-negative")
        completed: List[Tuple[Transfer, ...]] = []
        remaining = dt
        while remaining > 0 and not self.done:
            left_in_round = self._round_seconds - self._elapsed_in_round
            if remaining + 1e-12 >= left_in_round:
                remaining -= left_in_round
                round_ = self.schedule.rounds[self._round_index]
                # Commit exactly: restore the round-entry snapshot and
                # apply the whole round in one step, so the committed
                # vector equals the snapshot plus one exact transfer per
                # pair no matter how the round was sliced.
                np.copyto(self._fractions, self._round_base)
                self._apply_round(round_, fraction=1.0)
                self._round_base = self._fractions.copy()
                self._completed_rounds.append(round_)
                completed.append(round_)
                self._round_index += 1
                self._elapsed_in_round = 0.0
                self._progress_applied = 0.0
                if invariants.enabled(invariants.CHEAP):
                    invariants.check_fraction_conservation(
                        self._fractions, "ActiveMigration.advance"
                    )
            else:
                # Partial progress within the current round.
                step_fraction = remaining / self._round_seconds
                round_ = self.schedule.rounds[self._round_index]
                self._apply_round(round_, fraction=step_fraction)
                self._progress_applied += step_fraction
                self._elapsed_in_round += remaining
                remaining = 0.0
        return completed

    def _apply_round(self, round_: Tuple[Transfer, ...], fraction: float) -> None:
        delta = self.schedule.fraction_per_transfer * fraction
        for transfer in round_:
            self._fractions[transfer.sender] -= delta
            self._fractions[transfer.receiver] += delta

    def rollback_partial_round(self) -> float:
        """Discard partial progress inside the current round.

        Transfers commit at round granularity; an abort mid-round must
        not leave the fluid fractions between two committed states.
        Restores the round-entry snapshot and returns the fraction of the
        round that was rolled back (0.0 when already at a round boundary).
        """
        rolled = self._progress_applied
        if rolled > 0.0:
            np.copyto(self._fractions, self._round_base)
            self._elapsed_in_round = 0.0
            self._progress_applied = 0.0
        return rolled

    # ------------------------------------------------------------------
    # State exposed to engines and accounting
    # ------------------------------------------------------------------

    def data_fractions(self) -> np.ndarray:
        """Per-logical-machine fraction of the database (sums to 1).

        Drained machines are clipped at exactly zero (floating-point
        round-off in the per-round updates can leave values like -1e-18).
        """
        return np.clip(self._fractions, 0.0, None)

    def machines_allocated(self) -> int:
        """Machines physically present right now (just-in-time policy)."""
        if self.done:
            return self.schedule.after
        return self.schedule.allocation[self._round_index]

    def active_transfers(self) -> Tuple[Transfer, ...]:
        """Transfers running at this instant (empty when done)."""
        if self.done:
            return ()
        return self.schedule.rounds[self._round_index]

    def migrating_machines(self) -> Set[int]:
        """Logical machines currently sending or receiving."""
        busy: Set[int] = set()
        for transfer in self.active_transfers():
            busy.add(transfer.sender)
            busy.add(transfer.receiver)
        return busy

    def physical_nodes(self, machines: Set[int]) -> Set[int]:
        if self.node_map is None:
            return machines
        return {self.node_map[m] for m in machines}


class ClusterMigrator:
    """Drives bucket-accurate migrations on a row-level cluster.

    Scale-out: provision the new nodes, compute a balanced bucket plan
    over old + new partitions, build the machine schedule, and commit
    each machine pair's buckets when its transfer completes.  Scale-in is
    symmetric (retiring nodes are drained, then decommissioned).

    ``injector`` attaches the chaos layer: migration-stall windows
    freeze progress until the watchdog re-drives them, and completed
    rounds may arrive corrupted, costing a re-send before their bucket
    moves commit.  ``retry`` defaults to the policy described by
    ``config.faults``.
    """

    def __init__(
        self,
        cluster: Cluster,
        config: PStoreConfig,
        chunk_kb: Optional[float] = None,
        rate_multiplier: float = 1.0,
        telemetry=None,
        injector=None,
        retry: Optional[RetryPolicy] = None,
    ):
        if rate_multiplier <= 0:
            raise MigrationError("rate_multiplier must be positive")
        self.cluster = cluster
        self.config = config
        self.chunk_kb = config.chunk_kb if chunk_kb is None else chunk_kb
        if self.chunk_kb <= 0:
            raise MigrationError("chunk_kb must be positive")
        self.rate_multiplier = rate_multiplier
        self._telemetry = telemetry if telemetry is not None else get_telemetry()
        self._injector = injector
        self.retry = retry if retry is not None else RetryPolicy.from_config(
            config.faults
        )
        self._retry_rng = np.random.default_rng(
            (injector.seed + 1) if injector is not None else 0
        )
        self._active: Optional[ActiveMigration] = None
        self._pair_buckets: Dict[Tuple[int, int], List[BucketMove]] = {}
        self._retiring_nodes: List[int] = []
        #: Cumulative simulated seconds this migrator has been advanced;
        #: the timeline used for migrate.round spans and duration metrics.
        self._sim_time = 0.0
        self._move_started_at = 0.0
        self._move_before = 0
        self._move_after = 0
        self._round_started_at = 0.0
        self._rounds_committed = 0
        self._move_chronicle_id: Optional[str] = None
        # Failure-recovery state.
        self._stall_watch = None
        self._stall_attempts = 0
        self._next_retry_at = 0.0
        self._resend_seconds = 0.0
        self._pending_resends: List[Tuple[object, Tuple[Transfer, ...]]] = []
        self.aborted_moves = 0

    @property
    def sim_time(self) -> float:
        """The migrator's simulated clock (seconds).  Hosts with their own
        clock (e.g. :class:`~repro.core.service.PStoreService`) sync this
        before ``start_move`` so telemetry timestamps are absolute."""
        return self._sim_time

    @sim_time.setter
    def sim_time(self, value: float) -> None:
        self._sim_time = float(value)

    @property
    def active(self) -> Optional[ActiveMigration]:
        return self._active

    @property
    def migrating(self) -> bool:
        return self._active is not None

    def start_move(
        self, target_nodes: int, cause_id: Optional[str] = None
    ) -> ActiveMigration:
        """Begin reconfiguring the cluster to ``target_nodes`` machines.

        ``cause_id`` is the chronicle ID of the plan decision that asked
        for this move; it becomes the parent of the ``migration.start``
        record so ``pstore explain`` can walk forecast -> plan -> move.
        """
        if self.migrating:
            raise MigrationError("a migration is already in progress")
        before = self.cluster.n_nodes
        after = target_nodes
        if after < 1:
            raise MigrationError("target_nodes must be >= 1")
        if after == before:
            raise MigrationError("target equals current size; nothing to do")

        added_nodes: List[int] = []
        if after > before:
            new_nodes = self.cluster.add_nodes(after - before)
            added_nodes = [n.node_id for n in new_nodes]
            ordered_nodes = [n.node_id for n in self.cluster.nodes]
            # Logical: originals 0..B-1 then new machines B..A-1.
            originals = [nid for nid in ordered_nodes if nid not in
                         {n.node_id for n in new_nodes}]
            logical_order = originals + [n.node_id for n in new_nodes]
            self._retiring_nodes = []
        else:
            ordered_nodes = [n.node_id for n in self.cluster.nodes]
            survivors = ordered_nodes[:after]
            retiring = ordered_nodes[after:]
            logical_order = survivors + retiring
            self._retiring_nodes = retiring

        node_map = {i: nid for i, nid in enumerate(logical_order)}
        surviving = logical_order if after > before else logical_order[:after]
        target_partitions: List[int] = []
        for nid in surviving:
            node = next(n for n in self.cluster.nodes if n.node_id == nid)
            target_partitions.extend(node.partition_ids)

        plan = make_reconfiguration_plan(self.cluster.plan, target_partitions)
        node_of_partition = {
            pid: node.node_id
            for node in self.cluster.nodes
            for pid in node.partition_ids
        }
        self._pair_buckets = {
            pair: moves
            for pair, moves in plan.moves_by_node_pair(node_of_partition).items()
        }

        schedule = build_migration_schedule(before, after)
        rate_kbps = self.config.migration_rate_kbps * self.rate_multiplier
        self._active = ActiveMigration(
            schedule=schedule,
            database_kb=max(self.cluster.total_data_kb, 1.0),
            rate_kbps=rate_kbps,
            partitions_per_node=self.config.partitions_per_node,
            chunk_kb=self.chunk_kb,
            node_map=node_map,
        )
        self._move_started_at = self._sim_time
        self._round_started_at = self._sim_time
        self._move_before = before
        self._move_after = after
        self._rounds_committed = 0
        self._reset_fault_state()
        tel = self._telemetry
        if tel.enabled:
            tel.events.emit(
                "migration.start",
                time=self._sim_time,
                before=before,
                after=after,
                rate_kbps=rate_kbps,
                rounds=schedule.n_rounds,
                est_seconds=self._active.total_seconds,
            )
            tel.metrics.counter("migrate.moves_started").inc()
            rec = tel.chronicle.record(
                "migration.start",
                time=self._sim_time,
                parent=cause_id,
                before=before,
                after=after,
                rate_kbps=rate_kbps,
                rounds=schedule.n_rounds,
                est_seconds=self._active.total_seconds,
            )
            self._move_chronicle_id = rec.get("id")
            if added_nodes:
                tel.chronicle.record(
                    "node.add",
                    time=self._sim_time,
                    parent=self._move_chronicle_id,
                    nodes=added_nodes,
                )
        if self._injector is not None:
            self._injector.notify_migration_started(self._sim_time)
        return self._active

    def advance(self, dt: float) -> bool:
        """Advance the active migration; returns True when it completes."""
        if self._active is None:
            raise MigrationError("no active migration")
        if dt < 0:
            raise MigrationError("dt must be non-negative")
        if self._injector is None:
            self._step_migration(dt)
        else:
            self._advance_with_faults(dt)
        if (
            self._active is not None
            and self._active.done
            and self._resend_seconds <= 1e-9
            and not self._pending_resends
        ):
            self._finish_telemetry()
            self._finish()
            return True
        return False

    def step_to(self, sim_time: float) -> bool:
        """Event-driven advance to an absolute simulated timestamp.

        The batch loop calls :meth:`advance` with fixed ``dt`` slices; a
        service advanced *by events* (``repro.serve``) instead tells the
        migrator what time it is now.  Idempotent for repeated timestamps
        and a clock-only update when no move is in flight.  Returns True
        when the active migration completed within the step.
        """
        dt = float(sim_time) - self._sim_time
        if dt < -1e-9:
            raise MigrationError(
                f"step_to moved backwards: {sim_time} < {self._sim_time}"
            )
        dt = max(0.0, dt)
        if self._active is None:
            self._sim_time = float(sim_time)
            return False
        return self.advance(dt)

    def abort(self, reason: str = "node failure") -> None:
        """Cancel the in-flight migration without completing it.

        Bucket moves already committed stay committed (the plan is always
        consistent); pending pair transfers are dropped, and retiring
        nodes remain active since they may still own buckets.  The
        controller is expected to re-plan from the resulting topology.
        """
        if self._active is None:
            return
        # A partially-applied round is neither committed nor absent; roll
        # the fluid fractions back to the last round boundary so the
        # post-abort topology matches what the row store actually holds.
        rolled_back = self._active.rollback_partial_round()
        self.aborted_moves += 1
        tel = self._telemetry
        if tel.enabled:
            tel.events.emit(
                "migration.aborted",
                time=self._sim_time,
                before=self._move_before,
                after=self._move_after,
                reason=reason,
                elapsed=self._sim_time - self._move_started_at,
                rolled_back_fraction=rolled_back,
            )
            tel.metrics.counter("migrate.moves_aborted").inc()
            tel.chronicle.record(
                "migration.aborted",
                time=self._sim_time,
                parent=self._move_chronicle_id,
                before=self._move_before,
                after=self._move_after,
                reason=reason,
                elapsed=self._sim_time - self._move_started_at,
                rolled_back_fraction=rolled_back,
            )
            self._move_chronicle_id = None
        self._pair_buckets = {}
        self._retiring_nodes = []
        self._active = None
        self._reset_fault_state()

    # ------------------------------------------------------------------
    # Fault-free fast path
    # ------------------------------------------------------------------

    def _step_migration(self, dt: float) -> None:
        """Advance transfers by ``dt`` and commit the completed rounds."""
        assert self._active is not None
        round_seconds = self._active.round_seconds
        completed_rounds = self._active.advance(dt)
        self._sim_time += dt
        for round_ in completed_rounds:
            corruption = (
                self._injector.take_corruption()
                if self._injector is not None
                else None
            )
            if corruption is not None:
                self._begin_resend(corruption, round_)
                continue
            self._commit_round(round_, round_seconds)

    def _commit_round(self, round_: Tuple[Transfer, ...], round_seconds: float) -> None:
        # Bracket the commit itself rather than diffing against a
        # start-of-move snapshot: live workload legitimately changes row
        # counts *between* advances, but a bucket move must never.
        check_rows = invariants.enabled(invariants.CHEAP)
        before = invariants.snapshot_row_counts(self.cluster) if check_rows else None
        for transfer in round_:
            self._commit_transfer(transfer)
        if check_rows:
            invariants.check_row_conservation(
                self.cluster, before,
                "ClusterMigrator.commit", time=self._sim_time,
            )
        tel = self._telemetry
        if tel.enabled:
            # Rounds are equal-length, so reconstruct each round's
            # window on the simulated timeline (re-sends stretch it).
            end = min(self._round_started_at + round_seconds, self._sim_time)
            end = max(end, self._round_started_at)
            tel.tracer.record(
                "migrate.round",
                self._round_started_at,
                end,
                round=self._rounds_committed,
                transfers=len(round_),
            )
            tel.chronicle.record(
                "migration.round",
                time=end,
                parent=self._move_chronicle_id,
                round=self._rounds_committed,
                transfers=len(round_),
            )
            self._round_started_at = end
        self._rounds_committed += 1

    # ------------------------------------------------------------------
    # Fault-aware path
    # ------------------------------------------------------------------

    def _advance_with_faults(self, dt: float) -> None:
        injector = self._injector
        remaining = float(dt)
        while remaining > 1e-9 and self._active is not None:
            injector.advance(self._sim_time)
            boundary = injector.seconds_to_next_change(self._sim_time)
            stall = injector.stall_record(self._sim_time)
            if stall is not None:
                # Wedged: time passes, no data moves; the watchdog
                # detects and re-drives after the retry timeout.
                step = min(remaining, max(min(boundary, remaining), 1e-9))
                self._sim_time += step
                remaining -= step
                self._watch_stall(stall)
                continue
            self._stall_watch = None
            if self._resend_seconds > 1e-9:
                step = min(remaining, self._resend_seconds)
                self._resend_seconds -= step
                self._sim_time += step
                remaining -= step
                if self._resend_seconds <= 1e-9:
                    self._finish_resends()
                continue
            if self._active.done:
                # Only waiting on re-sends/stalls, which are drained above.
                break
            # Never run past the current round's completion or the next
            # fault boundary, so rounds are handled one at a time.
            step = min(
                remaining,
                max(self._active.seconds_to_round_end, 1e-9),
                max(boundary, 1e-9),
            )
            self._step_migration(step)
            remaining -= step

    def _watch_stall(self, record) -> None:
        """Detect a wedged transfer after the retry timeout and emit one
        re-drive attempt per backoff interval (all in simulated time)."""
        if self._stall_watch is not record:
            self._stall_watch = record
            self._stall_attempts = 0
            self._next_retry_at = (
                record.injected_at + self.retry.transfer_timeout_seconds
            )
        while self._sim_time + 1e-9 >= self._next_retry_at:
            if not self.retry.should_retry(self._stall_attempts + 1):
                break
            if self._stall_attempts == 0:
                self._injector.mark_detected(record, self._next_retry_at)
            attempt = self._stall_attempts + 1
            backoff = self.retry.backoff_seconds(attempt, self._retry_rng)
            self._injector.mark_retry(record, self._next_retry_at, backoff)
            self._stall_attempts = attempt
            self._next_retry_at += backoff

    def _begin_resend(self, record, round_: Tuple[Transfer, ...]) -> None:
        """A round arrived corrupted: hold its bucket commits and pay for
        a full re-send (plus one backoff) before committing."""
        assert self._active is not None
        self._injector.mark_detected(record, self._sim_time)
        backoff = self.retry.backoff_seconds(1, self._retry_rng)
        self._injector.mark_retry(record, self._sim_time, backoff)
        self._resend_seconds += self._active.round_seconds + backoff
        self._pending_resends.append((record, round_))

    def _finish_resends(self) -> None:
        assert self._active is not None
        self._resend_seconds = 0.0
        pending, self._pending_resends = self._pending_resends, []
        for record, round_ in pending:
            self._commit_round(round_, self._active.round_seconds)
            self._injector.mark_recovered(record, self._sim_time)

    def _reset_fault_state(self) -> None:
        self._stall_watch = None
        self._stall_attempts = 0
        self._next_retry_at = 0.0
        self._resend_seconds = 0.0
        self._pending_resends = []

    # ------------------------------------------------------------------

    def _finish_telemetry(self) -> None:
        tel = self._telemetry
        if not tel.enabled:
            return
        seconds = self._sim_time - self._move_started_at
        tel.events.emit(
            "migration.complete",
            time=self._sim_time,
            before=self._move_before,
            after=self._move_after,
            seconds=seconds,
        )
        tel.metrics.histogram(
            "migrate.duration_seconds",
            bounds=tuple(float(2 ** i) for i in range(24)),
        ).observe(seconds)
        if self._retiring_nodes:
            # _finish() decommissions these right after; chronicle them
            # while the list is still known.
            tel.chronicle.record(
                "node.remove",
                time=self._sim_time,
                parent=self._move_chronicle_id,
                nodes=list(self._retiring_nodes),
                reason="scale-in",
            )
        tel.chronicle.record(
            "migration.complete",
            time=self._sim_time,
            parent=self._move_chronicle_id,
            before=self._move_before,
            after=self._move_after,
            seconds=seconds,
        )
        self._move_chronicle_id = None

    def _commit_transfer(self, transfer: Transfer) -> None:
        assert self._active is not None and self._active.node_map is not None
        src_node = self._active.node_map[transfer.sender]
        dst_node = self._active.node_map[transfer.receiver]
        for move in self._pair_buckets.pop((src_node, dst_node), []):
            self.cluster.move_bucket(move.bucket, move.destination_partition)

    def _finish(self) -> None:
        check_rows = invariants.enabled(invariants.CHEAP)
        before = invariants.snapshot_row_counts(self.cluster) if check_rows else None
        # Commit any residual bucket moves (pairs whose buckets were not
        # perfectly covered by the machine schedule's transfers).
        for moves in self._pair_buckets.values():
            for move in moves:
                self.cluster.move_bucket(move.bucket, move.destination_partition)
        self._pair_buckets = {}
        if self._retiring_nodes:
            self.cluster.remove_nodes(self._retiring_nodes)
            self._retiring_nodes = []
        if check_rows:
            invariants.check_row_conservation(
                self.cluster, before,
                "ClusterMigrator.finish", time=self._sim_time,
            )
        if invariants.enabled(invariants.EXPENSIVE):
            invariants.check_bucket_map_agreement(
                self.cluster, "ClusterMigrator.finish", time=self._sim_time
            )
        self._active = None
        self._reset_fault_state()
