"""Reconfiguration plans: which buckets move where.

The Scheduler component of P-Store (Sec. 6) "generates a new partition
plan in which all source machines send an equal amount of data to all
destination machines".  Here that means computing, for a new set of
active partitions, a target :class:`~repro.hstore.cluster.PartitionPlan`
that (a) spreads buckets evenly and (b) moves as few buckets as possible,
then grouping the moved buckets by (source node, destination node) so
the machine-level :mod:`~repro.squall.schedule` can order the transfers.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from ..errors import MigrationError
from ..hstore.cluster import PartitionPlan


@dataclass(frozen=True)
class BucketMove:
    """One bucket changing owner."""

    bucket: int
    source_partition: int
    destination_partition: int


@dataclass(frozen=True)
class ReconfigurationPlan:
    """A target partition plan plus the bucket moves that reach it."""

    current: PartitionPlan
    target: PartitionPlan
    moves: Tuple[BucketMove, ...]

    @property
    def n_moves(self) -> int:
        return len(self.moves)

    def moves_by_node_pair(
        self, node_of_partition: Mapping[int, int]
    ) -> Dict[Tuple[int, int], List[BucketMove]]:
        """Group moves by (source node, destination node)."""
        grouped: Dict[Tuple[int, int], List[BucketMove]] = defaultdict(list)
        for move in self.moves:
            src = node_of_partition[move.source_partition]
            dst = node_of_partition[move.destination_partition]
            if src != dst:
                grouped[(src, dst)].append(move)
        return dict(grouped)


def balanced_target(
    current: PartitionPlan, target_partitions: Sequence[int]
) -> PartitionPlan:
    """Even bucket assignment over ``target_partitions``, minimal movement.

    Partitions keep as many of their current buckets as their fair share
    allows; surplus buckets flow to partitions below their share.  Fair
    shares differ by at most one bucket.
    """
    targets = sorted(set(target_partitions))
    if not targets:
        raise MigrationError("target partition set is empty")
    n_buckets = current.n_buckets
    base, extra = divmod(n_buckets, len(targets))
    # Deterministic quotas: the first `extra` target partitions get one more.
    quota = {pid: base + (1 if i < extra else 0) for i, pid in enumerate(targets)}

    assignment = current.assignment_array()
    keep_count = {pid: 0 for pid in targets}
    surplus: List[int] = []
    for bucket in range(n_buckets):
        owner = int(assignment[bucket])
        if owner in quota and keep_count[owner] < quota[owner]:
            keep_count[owner] += 1
        else:
            surplus.append(bucket)

    receivers: List[int] = []
    for pid in targets:
        receivers.extend([pid] * (quota[pid] - keep_count[pid]))
    if len(receivers) != len(surplus):
        raise MigrationError(
            "internal error: surplus/deficit mismatch "
            f"({len(surplus)} vs {len(receivers)})"
        )
    new_assignment = assignment.copy()
    for bucket, pid in zip(surplus, receivers):
        new_assignment[bucket] = pid
    return PartitionPlan(new_assignment)


def make_reconfiguration_plan(
    current: PartitionPlan, target_partitions: Sequence[int]
) -> ReconfigurationPlan:
    """Plan the rebalance onto ``target_partitions``."""
    target = balanced_target(current, target_partitions)
    moves = tuple(
        BucketMove(bucket=b, source_partition=src, destination_partition=dst)
        for b, src, dst in current.diff(target)
    )
    return ReconfigurationPlan(current=current, target=target, moves=moves)


def plan_balance_error(plan: PartitionPlan, partitions: Sequence[int]) -> int:
    """Max deviation (in buckets) from a perfectly even assignment."""
    counts = plan.counts()
    n_buckets = plan.n_buckets
    per = n_buckets / len(partitions)
    worst = 0
    for pid in partitions:
        worst = max(worst, abs(counts.get(pid, 0) - per))
    return int(np.ceil(worst - 0.5))
