"""Content-addressed on-disk cache for sweep cell results.

Each cell result lives in its own JSON file at
``<root>/<key[:2]>/<key>.json`` where ``key`` is the cell's
:meth:`~repro.runner.spec.RunSpec.cache_key`.  Writes are atomic
(temp file + ``os.replace``), so a sweep killed mid-write never leaves a
half-written entry behind, and two workers racing on the same key both
leave a valid file.  Corrupt or unreadable entries read as misses and
are overwritten on the next store.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import time
from typing import Iterator, Optional

#: Envelope schema identifier written into every cached entry.
ENVELOPE_SCHEMA = "pstore.sweep-cell/v1"


def default_cache_root() -> pathlib.Path:
    """Where sweeps cache results unless told otherwise.

    ``PSTORE_CACHE_DIR`` overrides the default ``.pstore-cache`` in the
    working directory (CI jobs point it at a persistent volume).
    """
    return pathlib.Path(os.environ.get("PSTORE_CACHE_DIR", ".pstore-cache"))


class ResultCache:
    """A directory of content-addressed cell results."""

    def __init__(self, root) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: Lifetime counters for this cache object.  ``corrupt`` counts
        #: entries that existed on disk but failed to parse or validate
        #: (they read as misses and are overwritten on the next store).
        #: The sweep executor snapshots these around a run and surfaces
        #: the delta in its summary line and ``manifest.json``.
        self.stats = {"hits": 0, "misses": 0, "corrupt": 0, "stores": 0}

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def load(self, key: str) -> Optional[dict]:
        """The cached envelope for ``key``, or None on miss/corruption."""
        path = self.path_for(key)
        try:
            text = path.read_text()
        except FileNotFoundError:
            self.stats["misses"] += 1
            return None
        except OSError:
            self.stats["corrupt"] += 1
            return None
        try:
            envelope = json.loads(text)
        except json.JSONDecodeError:
            self.stats["corrupt"] += 1
            return None
        if (
            not isinstance(envelope, dict)
            or envelope.get("schema") != ENVELOPE_SCHEMA
            or envelope.get("key") != key
            or "payload" not in envelope
        ):
            self.stats["corrupt"] += 1
            return None
        self.stats["hits"] += 1
        return envelope

    def store(self, key: str, envelope: dict) -> pathlib.Path:
        """Atomically persist ``envelope`` under ``key``."""
        self.stats["stores"] += 1
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(envelope, sort_keys=True, indent=1)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def keys(self) -> Iterator[str]:
        for path in sorted(self.root.glob("*/*.json")):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def gc(
        self,
        max_bytes: Optional[int] = None,
        max_age_seconds: Optional[float] = None,
        now: Optional[float] = None,
        dry_run: bool = False,
    ) -> dict:
        """Evict entries so long-lived hosts don't grow the cache forever.

        Entries older than ``max_age_seconds`` (by file mtime) go first;
        if the survivors still exceed ``max_bytes``, the oldest are then
        evicted until the total fits.  ``now`` pins the reference clock
        for tests; ``dry_run`` reports without deleting.  Returns a stats
        dict with ``scanned``/``removed``/``kept`` entry counts and the
        matching byte totals (``reclaimed_bytes`` is what got deleted).
        """
        if now is None:
            now = time.time()  # lint: wall-clock-ok
        entries = []
        for path in sorted(self.root.glob("*/*.json")):
            try:
                stat = path.stat()
            except OSError:
                continue  # racing writer/collector; skip
            entries.append((stat.st_mtime, stat.st_size, path))
        scanned_bytes = sum(size for _, size, _ in entries)
        doomed = []
        if max_age_seconds is not None:
            cutoff = now - max_age_seconds
            doomed = [e for e in entries if e[0] < cutoff]
            entries = [e for e in entries if e[0] >= cutoff]
        if max_bytes is not None:
            kept_bytes = sum(size for _, size, _ in entries)
            entries.sort()  # oldest first
            while entries and kept_bytes > max_bytes:
                entry = entries.pop(0)
                doomed.append(entry)
                kept_bytes -= entry[1]
        reclaimed = 0
        for _, size, path in doomed:
            reclaimed += size
            if not dry_run:
                try:
                    path.unlink()
                except OSError:
                    reclaimed -= size
        if not dry_run:
            for shard in self.root.glob("*"):
                if shard.is_dir():
                    try:
                        shard.rmdir()  # only succeeds when empty
                    except OSError:
                        pass
        return {
            "scanned": len(doomed) + len(entries),
            "scanned_bytes": scanned_bytes,
            "removed": len(doomed),
            "reclaimed_bytes": reclaimed,
            "kept": len(entries),
            "kept_bytes": scanned_bytes - reclaimed,
            "dry_run": dry_run,
        }
