"""Content-addressed on-disk cache for sweep cell results.

Each cell result lives in its own JSON file at
``<root>/<key[:2]>/<key>.json`` where ``key`` is the cell's
:meth:`~repro.runner.spec.RunSpec.cache_key`.  Writes are atomic
(temp file + ``os.replace``), so a sweep killed mid-write never leaves a
half-written entry behind, and two workers racing on the same key both
leave a valid file.  Corrupt or unreadable entries read as misses and
are overwritten on the next store.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from typing import Iterator, Optional

#: Envelope schema identifier written into every cached entry.
ENVELOPE_SCHEMA = "pstore.sweep-cell/v1"


def default_cache_root() -> pathlib.Path:
    """Where sweeps cache results unless told otherwise.

    ``PSTORE_CACHE_DIR`` overrides the default ``.pstore-cache`` in the
    working directory (CI jobs point it at a persistent volume).
    """
    return pathlib.Path(os.environ.get("PSTORE_CACHE_DIR", ".pstore-cache"))


class ResultCache:
    """A directory of content-addressed cell results."""

    def __init__(self, root) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def load(self, key: str) -> Optional[dict]:
        """The cached envelope for ``key``, or None on miss/corruption."""
        path = self.path_for(key)
        try:
            envelope = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if (
            not isinstance(envelope, dict)
            or envelope.get("schema") != ENVELOPE_SCHEMA
            or envelope.get("key") != key
            or "payload" not in envelope
        ):
            return None
        return envelope

    def store(self, key: str, envelope: dict) -> pathlib.Path:
        """Atomically persist ``envelope`` under ``key``."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(envelope, sort_keys=True, indent=1)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def keys(self) -> Iterator[str]:
        for path in sorted(self.root.glob("*/*.json")):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()
