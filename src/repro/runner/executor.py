"""The parallel sweep executor.

Decomposes an experiment sweep into independent :class:`RunSpec` cells,
executes the dirty ones across a multiprocess worker pool, and persists
every completed cell into a content-addressed :class:`ResultCache` the
moment it finishes — so interrupted sweeps resume for free and repeat
invocations are pure cache hits.

Determinism contract: cells are hermetic (every RNG stream is derived
from the spec's seed), workers receive the spec and the base config by
value, and results are re-assembled in submission order — so a sweep's
payloads are bit-identical whether it ran with ``jobs=1`` or ``jobs=N``,
with a warm cache or a cold one.  The manifest's ``result_hash`` pins
exactly that: it hashes only ``{label: payload}``, never timings or
worker ids.
"""

from __future__ import annotations

import hashlib
import os
import sys
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..config import PStoreConfig, canonical_json, default_config
from ..errors import SweepError
from ..telemetry import get_telemetry
from ..telemetry.runtime import Telemetry, telemetry_scope
from ..workload import memo as trace_memo
from .cache import ENVELOPE_SCHEMA, ResultCache
from .spec import RunSpec, jsonify

#: Manifest schema identifier.
MANIFEST_SCHEMA = "pstore.sweep/v1"

#: Execution backends a sweep can run under.  ``auto`` picks ``tensor``
#: when every pending cell's experiment declares a tensor program
#: builder, else the historical inline/pool choice.
BACKENDS: Tuple[str, ...] = ("auto", "serial", "process", "tensor")


def _resolve_cell_runner(experiment: str):
    """The registered ``run_cell`` callable for ``experiment``."""
    from ..experiments.registry import get_experiment

    return get_experiment(experiment).cell_runner()


def _execute_cell(task: tuple) -> tuple:
    """Worker entry: run one cell hermetically, return its result.

    ``task`` is ``(index, spec_dict, config_dict, record_events)``; the
    return value is ``(index, payload, events, chronicle, elapsed,
    trace_stats, error)`` where exactly one of ``payload``/``error`` is
    set and ``trace_stats`` is this cell's delta against the worker's
    trace-memo counters.  Runs in a pool worker (or inline for
    ``jobs=1``); everything crossing the boundary is plain picklable
    data.
    """
    index, spec_dict, config_dict, record_events = task
    start = time.perf_counter()
    memo_before = trace_memo.stats()
    try:
        spec = RunSpec.from_dict(spec_dict)
        config = PStoreConfig.from_dict(config_dict)
        run_cell = _resolve_cell_runner(spec.experiment)
        bundle = Telemetry() if record_events else None
        with telemetry_scope(bundle):
            payload = run_cell(spec, config)
        payload = jsonify(payload)
        if not isinstance(payload, dict):
            raise SweepError(
                f"cell {spec.label} returned {type(payload).__name__}, "
                "expected a JSON-serialisable mapping"
            )
        events = bundle.events.snapshot() if bundle is not None else []
        chronicle = bundle.chronicle.snapshot() if bundle is not None else []
        elapsed = time.perf_counter() - start
        return (
            index, payload, jsonify(events), jsonify(chronicle), elapsed,
            trace_memo.delta(memo_before), None,
        )
    except Exception as exc:  # noqa: BLE001 - marshalled to the parent
        detail = "".join(
            traceback.format_exception_only(type(exc), exc)
        ).strip()
        return (
            index, None, [], [], time.perf_counter() - start,
            trace_memo.delta(memo_before), detail,
        )


@dataclass(frozen=True)
class CellOutcome:
    """One executed (or cache-hit) cell of a sweep."""

    spec: RunSpec
    key: str
    payload: Dict[str, Any]
    elapsed_seconds: float
    cached: bool
    worker: Optional[int] = None
    events: Tuple[dict, ...] = field(default=())
    chronicle: Tuple[dict, ...] = field(default=())

    @property
    def label(self) -> str:
        return self.spec.label


@dataclass
class SweepReport:
    """All cells of a completed sweep, in submission order."""

    cells: List[CellOutcome]
    config_hash: str
    jobs: int
    elapsed_seconds: float
    #: Backend the dirty cells actually ran under ("serial", "process",
    #: or "tensor"; "serial" when everything was a cache hit).
    backend: str = "serial"
    #: ResultCache hit/miss/corrupt/store deltas for this run.
    cache_stats: Dict[str, int] = field(default_factory=dict)
    #: Trace-memo hit/miss totals summed over this run's executed cells.
    trace_reuse: Dict[str, int] = field(default_factory=dict)
    #: Tensor-backend stats (tensorized/fallback cell counts plus the
    #: :class:`~repro.sim.tensor.TensorBatchReport` counters).  Empty
    #: unless the tensor backend ran.
    tensor: Dict[str, int] = field(default_factory=dict)

    @property
    def hits(self) -> int:
        return sum(1 for c in self.cells if c.cached)

    @property
    def executed(self) -> int:
        return len(self.cells) - self.hits

    @property
    def result_hash(self) -> str:
        """SHA-256 over ``{label: payload}`` — the bit-identity anchor.

        Independent of jobs, cache state, timings, and worker placement;
        two sweeps agree iff every cell produced identical results.
        """
        material = canonical_json(
            {c.label: c.payload for c in self.cells}
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def manifest(self) -> dict:
        return {
            "schema": MANIFEST_SCHEMA,
            "config_hash": self.config_hash,
            "jobs": self.jobs,
            "backend": self.backend,
            "n_cells": len(self.cells),
            "hits": self.hits,
            "executed": self.executed,
            "result_hash": self.result_hash,
            "elapsed_seconds": self.elapsed_seconds,
            "cache": dict(self.cache_stats),
            "trace_reuse": dict(self.trace_reuse),
            "tensor": dict(self.tensor),
            "cells": [
                {
                    "label": c.label,
                    "spec": c.spec.to_dict(),
                    "key": c.key,
                    "cached": c.cached,
                    "elapsed_seconds": c.elapsed_seconds,
                    "worker": c.worker,
                    "payload": c.payload,
                }
                for c in self.cells
            ],
        }

    def write_manifest(self, out_dir) -> Dict[str, str]:
        """Write ``manifest.json`` plus the merged per-cell telemetry
        (``events.jsonl`` and ``chronicle.jsonl``, one record per line
        tagged with its cell) into ``out_dir``; returns ``{kind: path}``.

        The chronicle rides alongside the manifest, never inside the
        cell payloads, so enabling it cannot move ``result_hash``.
        """
        import json
        import pathlib

        from ..telemetry.causal import CHRONICLE_SCHEMA

        out = pathlib.Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        paths = {}
        manifest_path = out / "manifest.json"
        manifest_path.write_text(json.dumps(self.manifest(), indent=1))
        paths["manifest"] = str(manifest_path)
        events_path = out / "events.jsonl"
        with events_path.open("w") as handle:
            handle.write(
                json.dumps({"schema": "pstore.events/v1", "merged": True})
                + "\n"
            )
            for cell in self.cells:
                for record in cell.events:
                    tagged = {"cell": cell.label, **record}
                    handle.write(json.dumps(tagged, sort_keys=True) + "\n")
        paths["events"] = str(events_path)
        chronicle_path = out / "chronicle.jsonl"
        with chronicle_path.open("w") as handle:
            handle.write(
                json.dumps({"schema": CHRONICLE_SCHEMA, "merged": True})
                + "\n"
            )
            for cell in self.cells:
                for record in cell.chronicle:
                    tagged = {"cell": cell.label, **record}
                    handle.write(json.dumps(tagged, sort_keys=True) + "\n")
        paths["chronicle"] = str(chronicle_path)
        return paths

    def summary(self) -> str:
        bits = [
            f"{len(self.cells)} cells: {self.hits} cached, "
            f"{self.executed} executed in {self.elapsed_seconds:.1f}s "
            f"(jobs={self.jobs}, backend={self.backend})"
        ]
        if self.cache_stats:
            c = self.cache_stats
            bits.append(
                f"cache {c.get('hits', 0)}h/{c.get('misses', 0)}m/"
                f"{c.get('corrupt', 0)}x"
            )
        if self.trace_reuse.get("hits"):
            bits.append(f"trace reuse {self.trace_reuse['hits']}")
        if self.tensor.get("tensorized"):
            bits.append(
                f"tensor {self.tensor['tensorized']} cells "
                f"({self.tensor.get('evictions', 0)} evictions)"
            )
        return ", ".join(bits) + f", result {self.result_hash[:12]}"


class SweepExecutor:
    """Executes a grid of :class:`RunSpec` cells, caching results.

    Parameters
    ----------
    config:
        base :class:`PStoreConfig` handed to every cell; its
        :meth:`~repro.config.PStoreConfig.config_hash` is part of each
        cache key.
    cache:
        a :class:`ResultCache`, a directory path, or None to disable
        caching.
    jobs:
        worker processes; 1 executes inline in submission order.
    record_events:
        run each cell under a fresh telemetry bundle and return its
        event log and chronicle in the outcome (merged into the
        manifest directory as ``events.jsonl`` / ``chronicle.jsonl``).
    backend:
        one of :data:`BACKENDS`.  ``serial`` runs cells inline,
        ``process`` always uses the spawn pool, ``tensor`` batches every
        tensorizable cell through
        :class:`~repro.sim.tensor.TensorBatchEngine` (cells whose
        experiment declares no tensor program fall back to inline
        execution).  ``auto`` (default) picks ``tensor`` when every
        pending cell is tensorizable, else the historical inline/pool
        choice based on ``jobs``.
    """

    def __init__(
        self,
        config: Optional[PStoreConfig] = None,
        cache=None,
        jobs: int = 1,
        record_events: bool = False,
        backend: str = "auto",
    ) -> None:
        if jobs < 1:
            raise SweepError("jobs must be >= 1")
        if backend not in BACKENDS:
            raise SweepError(
                f"unknown backend {backend!r} (expected one of {BACKENDS})"
            )
        self.config = config if config is not None else default_config()
        if cache is None or isinstance(cache, ResultCache):
            self.cache: Optional[ResultCache] = cache
        else:
            self.cache = ResultCache(cache)
        self.jobs = jobs
        self.record_events = record_events
        self.backend = backend

    # ------------------------------------------------------------------

    def run(
        self,
        specs: Sequence[RunSpec],
        force: bool = False,
        progress=None,
    ) -> SweepReport:
        """Execute every cell of ``specs``; returns a :class:`SweepReport`.

        Cached cells are served from disk unless ``force``.  On a cell
        failure a :class:`SweepError` is raised *after* every completed
        cell has been persisted, so the next invocation resumes from the
        survivors.  ``progress`` (optional) is called with each
        :class:`CellOutcome` as it completes.
        """
        specs = list(specs)
        if not specs:
            raise SweepError("sweep grid is empty")
        start = time.perf_counter()
        cache_before = (
            dict(self.cache.stats) if self.cache is not None else None
        )
        self._trace_reuse: Dict[str, int] = {"hits": 0, "misses": 0}
        self._tensor_stats: Dict[str, int] = {}
        config_hash = self.config.config_hash()
        keys = [spec.cache_key(config_hash) for spec in specs]

        outcomes: List[Optional[CellOutcome]] = [None] * len(specs)
        pending: List[int] = []
        seen: Dict[str, int] = {}
        duplicates: List[Tuple[int, int]] = []
        for i, (spec, key) in enumerate(zip(specs, keys)):
            if key in seen:
                duplicates.append((i, seen[key]))
                continue
            seen[key] = i
            envelope = None if force else (
                self.cache.load(key) if self.cache is not None else None
            )
            if envelope is not None:
                outcomes[i] = CellOutcome(
                    spec=spec,
                    key=key,
                    payload=envelope["payload"],
                    elapsed_seconds=float(
                        envelope.get("elapsed_seconds", 0.0)
                    ),
                    cached=True,
                )
            else:
                pending.append(i)

        backend = self._resolve_backend(specs, pending)
        failures = self._execute_pending(
            specs, keys, pending, outcomes, progress, backend
        )
        for i, first in duplicates:
            original = outcomes[first]
            if original is not None:
                outcomes[i] = CellOutcome(
                    spec=specs[i],
                    key=keys[i],
                    payload=original.payload,
                    elapsed_seconds=0.0,
                    cached=True,
                )
        if failures:
            label, detail = failures[0]
            more = (
                f" (+{len(failures) - 1} more)" if len(failures) > 1 else ""
            )
            raise SweepError(
                f"cell {label} failed: {detail}{more}; completed cells "
                "are cached, re-run to resume"
            )

        cells = [c for c in outcomes if c is not None]
        elapsed = time.perf_counter() - start
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.counter("sweep.cells").inc(len(cells))
            tel.metrics.counter("sweep.hits").inc(
                sum(1 for c in cells if c.cached)
            )
        cache_delta = {}
        if cache_before is not None and self.cache is not None:
            cache_delta = {
                k: self.cache.stats.get(k, 0) - cache_before.get(k, 0)
                for k in self.cache.stats
            }
        return SweepReport(
            cells=cells,
            config_hash=config_hash,
            jobs=self.jobs,
            elapsed_seconds=elapsed,
            backend=backend,
            cache_stats=cache_delta,
            trace_reuse=dict(self._trace_reuse),
            tensor=dict(self._tensor_stats),
        )

    # ------------------------------------------------------------------

    def _resolve_backend(
        self, specs: Sequence[RunSpec], pending: Sequence[int]
    ) -> str:
        """The backend the dirty cells will run under.

        Explicit choices win; ``auto`` upgrades to ``tensor`` when every
        pending cell's experiment declares a tensor program builder (all
        cells then share trace/config shape by construction) — unless
        the caller asked for worker processes: the tensor batch runs in
        one process, so an explicit ``jobs > 1`` on a pool-sized grid
        (heavyweight cells, minutes each) must keep the pool.  Pass
        ``backend="tensor"`` to force batching regardless.
        """
        if self.backend != "auto":
            return self.backend
        if self.jobs > 1 and len(pending) > 1:
            return "process"
        if pending and self._all_tensorizable(specs, pending):
            return "tensor"
        return "serial"

    @staticmethod
    def _all_tensorizable(
        specs: Sequence[RunSpec], pending: Sequence[int]
    ) -> bool:
        from ..experiments.registry import get_experiment

        try:
            return all(
                get_experiment(specs[i].experiment).has_tensor_cell
                for i in pending
            )
        except Exception:  # noqa: BLE001 - unknown experiments fail later
            return False

    def _execute_pending(
        self,
        specs: Sequence[RunSpec],
        keys: Sequence[str],
        pending: List[int],
        outcomes: List[Optional[CellOutcome]],
        progress,
        backend: str,
    ) -> List[Tuple[str, str]]:
        """Run the dirty cells (inline, pooled, or tensor-batched)."""
        if not pending:
            return []
        config_dict = self.config.to_dict()
        tasks = [
            (i, specs[i].to_dict(), config_dict, self.record_events)
            for i in pending
        ]
        failures: List[Tuple[str, str]] = []

        def complete(result: tuple, worker: Optional[int]) -> None:
            index, payload, events, chronicle, elapsed, trace, error = result
            spec, key = specs[index], keys[index]
            for bucket in ("hits", "misses"):
                self._trace_reuse[bucket] += int(
                    (trace or {}).get(bucket, 0)
                )
            if error is not None:
                failures.append((spec.label, error))
                return
            outcome = CellOutcome(
                spec=spec,
                key=key,
                payload=payload,
                elapsed_seconds=elapsed,
                cached=False,
                worker=worker,
                events=tuple(events),
                chronicle=tuple(chronicle),
            )
            outcomes[index] = outcome
            if self.cache is not None:
                self.cache.store(key, self._envelope(outcome))
            tel = get_telemetry()
            if tel.enabled:
                tel.events.emit(
                    "sweep.cell",
                    label=spec.label,
                    key=key,
                    seconds=elapsed,
                    worker=worker,
                )
            if progress is not None:
                progress(outcome)

        if backend == "tensor":
            self._execute_tensor(specs, pending, config_dict, complete)
            return failures

        if backend == "serial" or len(tasks) == 1:
            for task in tasks:
                complete(_execute_cell(task), worker=None)
            return failures

        import multiprocessing as mp

        ctx = mp.get_context("spawn")
        self._export_import_path()
        with ctx.Pool(processes=min(self.jobs, len(tasks))) as pool:
            for result in pool.imap_unordered(_execute_cell, tasks):
                complete(result, worker=None)
        return failures

    def _execute_tensor(
        self,
        specs: Sequence[RunSpec],
        pending: Sequence[int],
        config_dict: dict,
        complete,
    ) -> None:
        """Run the dirty cells through the tensor batch engine.

        Each tensorizable cell contributes a
        :class:`~repro.sim.tensor.TensorProgram`; the batch engine
        advances every quiescent cell with one fused array step and the
        per-cell results flow through the same ``complete`` path as the
        other backends (so payloads, caching, and ``result_hash`` are
        produced exactly as today).  Cells whose experiment declares no
        tensor program run inline via :func:`_execute_cell`.
        """
        from ..experiments.registry import get_experiment
        from ..sim.tensor import TensorBatchEngine

        entries = []  # (index, program, bundle, build_seconds, trace_delta)
        fallback: List[int] = []
        for i in pending:
            spec = specs[i]
            try:
                builder = get_experiment(spec.experiment).tensor_cell_builder()
            except Exception:  # noqa: BLE001 - let _execute_cell report it
                builder = None
            if builder is None:
                fallback.append(i)
                continue
            bundle = Telemetry() if self.record_events else None
            start = time.perf_counter()
            memo_before = trace_memo.stats()
            try:
                with telemetry_scope(bundle):
                    program = builder(spec, self.config)
            except Exception as exc:  # noqa: BLE001 - marshalled like workers
                detail = "".join(
                    traceback.format_exception_only(type(exc), exc)
                ).strip()
                complete(
                    (
                        i, None, [], [], time.perf_counter() - start,
                        trace_memo.delta(memo_before), detail,
                    ),
                    None,
                )
                continue
            if bundle is not None:
                program.scope = lambda b=bundle: telemetry_scope(b)
            entries.append(
                (
                    i, program, bundle, time.perf_counter() - start,
                    trace_memo.delta(memo_before),
                )
            )

        stats: Dict[str, int] = {
            "tensorized": len(entries),
            "fallback": len(fallback),
        }
        if entries:
            engine = TensorBatchEngine(
                [entry[1] for entry in entries], clock=time.perf_counter
            )
            report = engine.run()
            batch_stats = report.stats()
            batch_stats.pop("cells", None)
            stats.update(batch_stats)
            for (i, program, bundle, build_s, tdelta), cell in zip(
                entries, report.outcomes
            ):
                elapsed = build_s + cell.elapsed_seconds
                if cell.error is not None:
                    complete((i, None, [], [], elapsed, tdelta, cell.error), None)
                    continue
                try:
                    if program.finalize is None:
                        raise SweepError(
                            f"tensor program {cell.label} has no finalize"
                        )
                    payload = jsonify(program.finalize(cell.result))
                    if not isinstance(payload, dict):
                        raise SweepError(
                            f"cell {cell.label} returned "
                            f"{type(payload).__name__}, expected a "
                            "JSON-serialisable mapping"
                        )
                except Exception as exc:  # noqa: BLE001
                    detail = "".join(
                        traceback.format_exception_only(type(exc), exc)
                    ).strip()
                    complete((i, None, [], [], elapsed, tdelta, detail), None)
                    continue
                events = (
                    bundle.events.snapshot() if bundle is not None else []
                )
                chronicle = (
                    bundle.chronicle.snapshot() if bundle is not None else []
                )
                complete(
                    (
                        i, payload, jsonify(events), jsonify(chronicle),
                        elapsed, tdelta, None,
                    ),
                    None,
                )
        self._tensor_stats = stats

        for i in fallback:
            task = (i, specs[i].to_dict(), config_dict, self.record_events)
            complete(_execute_cell(task), worker=None)

    @staticmethod
    def _export_import_path() -> None:
        """Make sure spawned workers can import this package.

        ``spawn`` children inherit the environment, not ``sys.path``;
        when the package is importable only via a relative
        ``PYTHONPATH=src`` (or an injected ``sys.path``), prepend its
        absolute location so workers resolve the same code.
        """
        package_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        existing = os.environ.get("PYTHONPATH", "")
        parts = existing.split(os.pathsep) if existing else []
        absolute = [os.path.abspath(p) for p in parts if p]
        if package_root not in absolute:
            absolute.insert(0, package_root)
        os.environ["PYTHONPATH"] = os.pathsep.join(absolute)
        if package_root not in sys.path:
            sys.path.insert(0, package_root)

    def _envelope(self, outcome: CellOutcome) -> dict:
        return {
            "schema": ENVELOPE_SCHEMA,
            "key": outcome.key,
            "spec": outcome.spec.to_dict(),
            "config_hash": self.config.config_hash(),
            "elapsed_seconds": outcome.elapsed_seconds,
            "payload": outcome.payload,
        }


def run_sweep(
    specs: Sequence[RunSpec],
    config: Optional[PStoreConfig] = None,
    cache=None,
    jobs: int = 1,
    force: bool = False,
    record_events: bool = False,
    progress=None,
    backend: str = "auto",
) -> SweepReport:
    """One-call convenience wrapper around :class:`SweepExecutor`."""
    executor = SweepExecutor(
        config=config,
        cache=cache,
        jobs=jobs,
        record_events=record_events,
        backend=backend,
    )
    return executor.run(specs, force=force, progress=progress)
