"""Sweep cells: the unit of work of the parallel executor.

A :class:`RunSpec` names one independent cell of an experiment's
evaluation grid — (experiment, cell, strategy, seed, overrides).  Cells
are *hermetic*: everything a cell's result depends on must be derivable
from the spec plus the executor's base config, never from shared mutable
state.  That is what makes parallel execution bit-identical to serial
and what makes cached results trustworthy.

The cache key of a cell is a SHA-256 over the spec's canonical JSON, the
config's :meth:`~repro.config.PStoreConfig.config_hash`, and a cache
schema version — so editing a result-relevant config knob, or bumping
the schema after a semantics change, dirties exactly the affected cells.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Mapping, Tuple

from ..config import canonical_json
from ..errors import ConfigurationError

#: Bump when the meaning of cached payloads changes (invalidates every
#: previously cached cell).
CACHE_SCHEMA_VERSION = 1


def jsonify(value):
    """Coerce ``value`` into plain JSON types (numpy scalars/arrays and
    tuples included), raising for anything non-serialisable."""
    import numpy as np

    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        return float(value)
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return [jsonify(v) for v in value.tolist()]
    if isinstance(value, Mapping):
        return {str(k): jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(v) for v in value]
    raise ConfigurationError(
        f"value {value!r} of type {type(value).__name__} is not "
        "JSON-serialisable (sweep payloads must be plain data)"
    )


@dataclass(frozen=True)
class RunSpec:
    """One independent cell of an experiment sweep.

    Attributes
    ----------
    experiment:
        registry name (see :mod:`repro.experiments.registry`).
    cell:
        cell identifier within the experiment, e.g. ``"static-10"`` or
        ``"tau-60"``.
    strategy:
        :class:`~repro.elasticity.StrategySpec` string when the cell is
        strategy-shaped; empty otherwise.
    seed:
        workload/RNG seed.  Cells derive every RNG stream they use from
        this value (the PR-3 seed-stream discipline), never from process
        state, so results are independent of execution order.
    overrides:
        sorted ``(key, value)`` pairs of experiment options and config
        overrides, e.g. ``(("eval_days", 1),)``.
    """

    experiment: str
    cell: str
    strategy: str = ""
    seed: int = 0
    overrides: Tuple[Tuple[str, Any], ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.experiment or not self.cell:
            raise ConfigurationError(
                "RunSpec needs non-empty experiment and cell names"
            )
        pairs = self.overrides
        if isinstance(pairs, Mapping):
            pairs = tuple(pairs.items())
        normalized = tuple(
            sorted(
                ((str(k), jsonify(v)) for k, v in pairs),
                key=lambda kv: kv[0],
            )
        )
        object.__setattr__(self, "overrides", normalized)
        if self.strategy:
            # Validate eagerly so malformed grids fail at declaration
            # time, with the one typed StrategySpecError.
            from ..elasticity.base import StrategySpec

            StrategySpec.parse(self.strategy)

    # ------------------------------------------------------------------

    @property
    def label(self) -> str:
        """Human-readable cell id, e.g. ``fig09/p-store#21``."""
        return f"{self.experiment}/{self.cell}#{self.seed}"

    def options(self) -> dict:
        """The overrides as a plain dict."""
        return dict(self.overrides)

    def option(self, key: str, default=None):
        return dict(self.overrides).get(key, default)

    def to_dict(self) -> dict:
        return {
            "experiment": self.experiment,
            "cell": self.cell,
            "strategy": self.strategy,
            "seed": self.seed,
            "overrides": [[k, v] for k, v in self.overrides],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunSpec":
        try:
            return cls(
                experiment=str(data["experiment"]),
                cell=str(data["cell"]),
                strategy=str(data.get("strategy", "")),
                seed=int(data.get("seed", 0)),
                overrides=tuple(
                    (k, v) for k, v in data.get("overrides", ())
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"bad RunSpec mapping: {exc}") from None

    def canonical(self) -> str:
        """Canonical JSON of the spec (the hashed representation)."""
        return canonical_json(self.to_dict())

    def cache_key(self, config_hash: str) -> str:
        """Content address of this cell's result.

        Same spec + same result-relevant config → same key, in any
        process on any machine; that is what the cache-key stability
        tests pin down.
        """
        material = canonical_json(
            {
                "schema": CACHE_SCHEMA_VERSION,
                "spec": self.to_dict(),
                "config": config_hash,
            }
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()
