"""Parallel sweep execution with content-addressed result caching.

The paper's evaluation is a grid of independent (experiment × strategy ×
seed) simulations; this package runs that grid across a worker pool with
bit-identical-to-serial results and caches each cell's payload on disk,
so re-running a sweep only executes dirty cells and interrupted sweeps
resume for free.  See ``docs/API.md``.
"""

from .cache import ResultCache, default_cache_root
from .executor import (
    BACKENDS,
    CellOutcome,
    SweepExecutor,
    SweepReport,
    run_sweep,
)
from .spec import CACHE_SCHEMA_VERSION, RunSpec, jsonify

__all__ = [
    "BACKENDS",
    "CACHE_SCHEMA_VERSION",
    "CellOutcome",
    "ResultCache",
    "RunSpec",
    "SweepExecutor",
    "SweepReport",
    "default_cache_root",
    "jsonify",
    "run_sweep",
]
