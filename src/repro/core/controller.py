"""The Predictive Controller (Section 6 of the paper).

The controller runs the monitor -> predict -> plan -> migrate cycle:

1. it watches the measured aggregate load (supplied by the simulator or
   by a live monitoring hook);
2. when no migration is in flight, it asks the Predictor for a load
   forecast over the planning horizon and inflates it by the configured
   buffer (15% by default, Sec. 8.2);
3. it hands the forecast to the Planner (Algorithms 1-3) and keeps only
   the *first* move of the optimal schedule — receding-horizon control;
4. scale-in moves are debounced: the planner must call for them on
   ``scale_in_confirmations`` consecutive cycles before one is issued;
5. if the planner reports that no feasible schedule exists (a flash
   crowd), the controller falls back to a reactive emergency scale-out,
   either at the regular migration rate or at a boosted rate
   (Sec. 4.3.1; both strategies are compared in Fig. 11).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional, Sequence

import numpy as np

from ..config import PStoreConfig
from ..errors import InfeasiblePlanError, PlanningError
from ..prediction.base import Predictor
from ..telemetry import get_telemetry
from .moves import MoveSchedule
from .planner import Planner, PlanRequest


@dataclass(frozen=True)
class Decision:
    """Outcome of one controller cycle.

    ``target_machines`` is None when the controller decides to do
    nothing this cycle.  ``emergency`` marks a reactive fallback taken
    because the planner found no feasible schedule; ``rate_multiplier``
    is the migration-rate boost to apply (1 = regular rate ``R``).
    """

    target_machines: Optional[int] = None
    emergency: bool = False
    rate_multiplier: float = 1.0
    planned_schedule: Optional[MoveSchedule] = None
    reason: str = "no-op"
    #: chronicle ID of the ``plan.decision`` record behind this decision
    #: (None when telemetry is disabled), so downstream actors — the
    #: migrator, the simulators — can parent their own records on it.
    record_id: Optional[str] = None

    @property
    def acts(self) -> bool:
        return self.target_machines is not None


class PredictiveController:
    """Receding-horizon controller over a Predictor and a Planner.

    Parameters
    ----------
    config:
        model parameters; also supplies the 15% prediction inflation and
        the 3-cycle scale-in debounce.
    predictor:
        fitted :class:`~repro.prediction.base.Predictor`.
    horizon_intervals:
        forecast window ``T`` in planner intervals.  Defaults to the
        paper's lower bound of ``2 D / P`` (time for two back-to-back
        parallel migrations), rounded up, plus one.
    emergency_rate_multiplier:
        migration-rate boost used on infeasible plans (1.0 reproduces
        the paper's default "keep rate R" policy; 8.0 the boosted one).
    telemetry:
        telemetry bundle to record cycle spans and decision metrics
        into; defaults to the process-global one at construction time.
    injector:
        optional :class:`~repro.faults.FaultInjector`; when an active
        forecast-drift window is open, the predictor's output is scaled
        by its magnitude before inflation (model drift / tampering).
    """

    def __init__(
        self,
        config: PStoreConfig,
        predictor: Predictor,
        horizon_intervals: Optional[int] = None,
        emergency_rate_multiplier: float = 1.0,
        telemetry=None,
        injector=None,
    ):
        if emergency_rate_multiplier <= 0:
            raise PlanningError("emergency_rate_multiplier must be positive")
        self.config = config
        self.predictor = predictor
        self.planner = Planner(config)
        self._injector = injector
        if horizon_intervals is not None:
            self.horizon_intervals = horizon_intervals
        elif config.horizon_intervals:
            self.horizon_intervals = config.horizon_intervals
        else:
            self.horizon_intervals = self.minimum_horizon_intervals(config)
        if self.horizon_intervals < 1:
            raise PlanningError("horizon must be at least one interval")
        self.emergency_rate_multiplier = emergency_rate_multiplier
        self._telemetry = telemetry if telemetry is not None else get_telemetry()
        self._scale_in_streak = 0
        self._last_schedule: Optional[MoveSchedule] = None
        self._last_snapshot_id: Optional[str] = None
        #: When set, the next ``plan.decision`` chronicle record parents on
        #: this ID instead of the forecast snapshot — the error-triggered
        #: re-plan path (``repro.serve``) points it at the
        #: ``forecast.accuracy`` record that forced the cycle.  One-shot.
        self.replan_parent: Optional[str] = None

    @staticmethod
    def minimum_horizon_intervals(config: PStoreConfig) -> int:
        """The paper's bound: the horizon must cover two reconfigurations
        with parallel migration, ``2 D / P`` (Sec. 5, "Discussion")."""
        return int(math.ceil(2.0 * config.d_intervals / config.partitions_per_node)) + 1

    @property
    def last_schedule(self) -> Optional[MoveSchedule]:
        """The most recent full plan (for introspection and tests)."""
        return self._last_schedule

    def decide(
        self,
        history: Sequence[float],
        current_machines: int,
        current_load: Optional[float] = None,
    ) -> Decision:
        """Run one predict-plan cycle and return the action to take.

        ``history`` is the measured load per planner interval up to now
        (in txn/s); ``current_machines`` is the active cluster size.

        When telemetry is enabled the cycle is wrapped in a
        ``controller.cycle`` root span with ``predict.forecast`` and
        ``plan.dp`` children, and the decision outcome is recorded as
        both span attributes and ``controller.decisions`` counters.
        """
        if current_machines < 1:
            raise PlanningError("current_machines must be >= 1")
        replan_parent = self.replan_parent
        self.replan_parent = None
        tel = self._telemetry
        with tel.tracer.span(
            "controller.cycle",
            machines=current_machines,
            history_len=len(history),
        ) as cycle:
            decision = self._decide_cycle(history, current_machines,
                                          current_load, tel)
            cycle.set("reason", decision.reason)
            cycle.set("target_machines", decision.target_machines)
            cycle.set("emergency", decision.emergency)
            if tel.enabled:
                kind = self._decision_kind(decision, current_machines)
                tel.metrics.counter("controller.cycles").inc()
                tel.metrics.counter("controller.decisions", kind=kind).inc()
                tel.metrics.gauge("controller.scale_in_streak").set(
                    self._scale_in_streak
                )
                rec = tel.chronicle.record(
                    "plan.decision",
                    time=float(len(history)) * self.config.interval_seconds,
                    parent=(replan_parent if replan_parent is not None
                            else self._last_snapshot_id),
                    decision_kind=kind,
                    reason=decision.reason,
                    target_machines=decision.target_machines,
                    emergency=decision.emergency,
                    rate_multiplier=decision.rate_multiplier,
                    machines=current_machines,
                )
                decision = replace(decision, record_id=rec.get("id"))
        return decision

    @staticmethod
    def _decision_kind(decision: Decision, current_machines: int) -> str:
        """Coarse decision category for the ``controller.decisions`` counter."""
        if decision.emergency:
            return "emergency"
        if decision.target_machines is None:
            if decision.reason.startswith("scale-in pending"):
                return "debounce"
            if decision.reason.startswith("first move"):
                return "wait"
            return "steady"
        if decision.target_machines > current_machines:
            return "scale-out"
        return "scale-in"

    def _decide_cycle(
        self,
        history: Sequence[float],
        current_machines: int,
        current_load: Optional[float],
        tel,
    ) -> Decision:
        with tel.tracer.span(
            "predict.forecast", horizon=self.horizon_intervals
        ) as forecast_span:
            forecast = self.predictor.predict_horizon(
                history, self.horizon_intervals
            )
            forecast_span.set("predicted_next", float(forecast[0]))
        forecast = np.asarray(forecast, dtype=float)
        if self._injector is not None:
            drift = self._injector.forecast_multiplier()
            if drift != 1.0:
                forecast = forecast * drift
        inflated = forecast * self.config.prediction_inflation
        measured_now = float(history[-1]) if current_load is None else current_load
        if tel.enabled:
            tel.events.emit(
                "forecast",
                history_len=len(history),
                measured_now=measured_now,
                predicted_next=float(forecast[0]),
                inflated_next=float(inflated[0]),
                predicted_peak=float(inflated.max()),
                horizon=self.horizon_intervals,
            )
            # Chronicle + accuracy: the forecast is made right after
            # observing slot ``len(history) - 1``, so predicted[i]
            # targets absolute slot ``len(history) + i`` (tau = i + 1).
            # ``time`` is on the history timeline (includes any seeded
            # training window).
            sim_time = float(len(history)) * self.config.interval_seconds
            origin_slot = len(history) - 1
            predictor_name = (
                getattr(self.predictor, "name", "")
                or type(self.predictor).__name__
            )
            snap = tel.chronicle.record(
                "forecast.snapshot",
                time=sim_time,
                origin_slot=origin_slot,
                horizon=self.horizon_intervals,
                predictor=predictor_name,
                measured_now=measured_now,
                predicted_next=float(forecast[0]),
                inflated_next=float(inflated[0]),
                predicted_peak=float(inflated.max()),
            )
            self._last_snapshot_id = snap.get("id")
            tel.accuracy.record_forecast(
                origin_slot=origin_slot,
                predicted=[float(v) for v in forecast],
                inflated=[float(v) for v in inflated],
                predictor=predictor_name,
                snapshot_id=self._last_snapshot_id,
                time=sim_time,
            )

        plan_span_cm = tel.tracer.span(
            "plan.dp",
            initial_machines=current_machines,
            current_load=measured_now,
        )
        try:
            with plan_span_cm as plan_span:
                plan_span.set("feasible", False)
                schedule = self.planner.best_moves(
                    PlanRequest(
                        predicted_load=tuple(inflated),
                        initial_machines=current_machines,
                        current_load=measured_now,
                    )
                )
                plan_span.set("feasible", True)
                plan_span.set("final_machines", schedule.final_machines)
        except InfeasiblePlanError as infeasible:
            # Flash crowd: scale straight to the required size, reactively.
            self._scale_in_streak = 0
            self._last_schedule = None
            target = max(infeasible.required_machines, current_machines)
            if self.config.max_machines:
                target = min(target, self.config.max_machines)
            if target == current_machines:
                return Decision(reason="infeasible-but-at-size")
            if tel.enabled:
                tel.events.emit(
                    "controller.emergency",
                    required_machines=infeasible.required_machines,
                    target_machines=target,
                    rate_multiplier=self.emergency_rate_multiplier,
                )
            return Decision(
                target_machines=target,
                emergency=True,
                rate_multiplier=self.emergency_rate_multiplier,
                reason="no feasible plan; reactive scale-out",
            )

        self._last_schedule = schedule
        first = schedule.first_real_move
        if first is None:
            self._scale_in_streak = 0
            return Decision(planned_schedule=schedule, reason="plan is steady")
        if first.start > 0:
            # The first real move starts in the future; wait for it.
            self._scale_in_streak = 0
            return Decision(
                planned_schedule=schedule,
                reason=f"first move starts at interval {first.start}",
            )

        if first.is_scale_in:
            self._scale_in_streak += 1
            if self._scale_in_streak < self.config.scale_in_confirmations:
                return Decision(
                    planned_schedule=schedule,
                    reason=(
                        f"scale-in pending confirmation "
                        f"({self._scale_in_streak}/"
                        f"{self.config.scale_in_confirmations})"
                    ),
                )
        self._scale_in_streak = 0
        return Decision(
            target_machines=first.after,
            planned_schedule=schedule,
            reason="scale-in confirmed" if first.is_scale_in else "scale-out due",
        )

    def notify_move_started(self) -> None:
        """Reset debounce state when a migration begins."""
        self._scale_in_streak = 0
