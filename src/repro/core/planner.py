"""Predictive-elasticity move planner (Algorithms 1-3 of the paper).

Given a time series of predicted load ``L[1..T]`` and the current cluster
size ``N0``, the planner finds the cheapest feasible sequence of
reconfiguration *moves* such that the predicted load never exceeds the
system's (effective) capacity — including while data is in flight, when
capacity is degraded per Eq. 7.

Two equivalent implementations are provided:

* :class:`Planner` — a bottom-up dynamic program over the ``(t, A)`` grid.
  One table serves every candidate final size, so the outer loop of
  Algorithm 1 costs nothing extra.  This is the production path.
* :func:`best_moves_reference` — a direct transcription of the paper's
  recursive, memoised Algorithms 1-3.  It is slower and kept as an oracle
  for differential testing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import PStoreConfig
from ..errors import InfeasiblePlanError, PlanningError
from . import model
from .moves import Move, MoveSchedule

_INF = math.inf


@dataclass(frozen=True)
class PlanRequest:
    """Inputs to one planning run.

    Attributes
    ----------
    predicted_load:
        ``L[1..T]``: predicted aggregate load (txn/s) for each of the next
        ``T`` planner intervals.  Entry 0 of the internal array is the
        current load, supplied separately.
    initial_machines:
        ``N0``, machines allocated now.
    current_load:
        measured aggregate load right now (defaults to the first predicted
        point); used for the ``t = 0`` feasibility check.
    """

    predicted_load: Tuple[float, ...]
    initial_machines: int
    current_load: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.predicted_load:
            raise PlanningError("predicted_load must be non-empty")
        if self.initial_machines < 1:
            raise PlanningError("initial_machines must be >= 1")
        if any(v < 0 for v in self.predicted_load):
            raise PlanningError("predicted load values must be non-negative")

    @property
    def horizon(self) -> int:
        return len(self.predicted_load)

    def load_array(self) -> List[float]:
        """``L[0..T]`` with ``L[0]`` the current load."""
        current = (
            self.current_load
            if self.current_load is not None
            else self.predicted_load[0]
        )
        return [current, *self.predicted_load]


class Planner:
    """Bottom-up dynamic-programming planner.

    Parameters
    ----------
    config:
        supplies ``Q`` (per-server target rate), ``D`` (in intervals via
        ``d_intervals``), partitions per node, and the optional hard cap on
        machine count.
    """

    def __init__(self, config: PStoreConfig):
        self._config = config
        # Caches keyed by (B, A): durations in intervals and per-move cost,
        # plus the per-interval effective-capacity profile of each move.
        self._duration_cache: Dict[Tuple[int, int], int] = {}
        self._cost_cache: Dict[Tuple[int, int], float] = {}
        self._effcap_cache: Dict[Tuple[int, int], Tuple[float, ...]] = {}
        # Dense per-(B, A) arrays for the vectorized DP, keyed by the grid
        # bound Z (they depend only on Z and the config, not the loads).
        self._grid_cache: Dict[
            int,
            Tuple[
                np.ndarray,
                np.ndarray,
                List[Tuple[int, np.ndarray, np.ndarray]],
            ],
        ] = {}

    @property
    def config(self) -> PStoreConfig:
        return self._config

    # ------------------------------------------------------------------
    # Move primitives (cached)
    # ------------------------------------------------------------------

    def move_duration(self, before: int, after: int) -> int:
        """``T(B,A)`` in whole planner intervals (0 for the no-op move)."""
        key = (before, after)
        cached = self._duration_cache.get(key)
        if cached is None:
            cached = model.move_time_intervals(
                before,
                after,
                self._config.partitions_per_node,
                self._config.d_intervals,
            )
            self._duration_cache[key] = cached
        return cached

    def move_cost(self, before: int, after: int) -> float:
        """``C(B,A)`` in machine-intervals (``B`` for the no-op move)."""
        key = (before, after)
        cached = self._cost_cache.get(key)
        if cached is None:
            if before == after:
                cached = float(before)
            else:
                cached = self.move_duration(before, after) * model.avg_machines_allocated(
                    before, after
                )
            self._cost_cache[key] = cached
        return cached

    def capacity(self, machines: int) -> float:
        return model.capacity(machines, self._config.q)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def machines_needed(self, peak_load: float) -> int:
        """Machines needed so per-server load stays at or below ``Q``."""
        if peak_load <= 0:
            return 1
        return max(1, math.ceil(peak_load / self._config.q - 1e-9))

    def best_moves(self, request: PlanRequest) -> MoveSchedule:
        """Algorithm 1: cheapest feasible move sequence over the horizon.

        Raises :class:`InfeasiblePlanError` when no feasible sequence
        exists (the cluster cannot scale out fast enough for the predicted
        load), carrying the machine count the spike would require.
        """
        loads = request.load_array()
        horizon = request.horizon
        n0 = request.initial_machines
        z = max(self.machines_needed(max(loads)), n0)
        if self._config.max_machines:
            z = min(z, self._config.max_machines)

        cost_table, backptr = self._fill_tables(loads, horizon, n0, z)

        for final in range(1, z + 1):
            if cost_table[horizon][final] != _INF:
                return self._backtrack(backptr, horizon, final, n0)
        raise InfeasiblePlanError(
            f"no feasible move sequence from N0={n0} over horizon T={horizon}",
            required_machines=self.machines_needed(max(loads)),
        )

    def plan(
        self,
        predicted_load: Sequence[float],
        initial_machines: int,
        current_load: Optional[float] = None,
    ) -> MoveSchedule:
        """Convenience wrapper around :meth:`best_moves`."""
        return self.best_moves(
            PlanRequest(
                predicted_load=tuple(predicted_load),
                initial_machines=initial_machines,
                current_load=current_load,
            )
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _fill_tables(
        self,
        loads: List[float],
        horizon: int,
        n0: int,
        z: int,
    ) -> Tuple[np.ndarray, List[List[Optional[Tuple[int, int]]]]]:
        """Compute ``cost[t][A]`` and back-pointers for all states.

        ``cost[t][A]`` is the minimum cost of a feasible series of moves
        that ends with ``A`` machines at interval ``t``; ``backptr[t][A]``
        is ``(prev_t, prev_machines)`` of the last move of that series.

        The ``(t, A)`` grid is filled bottom-up as before, but the inner
        Algorithm 3 scan over ``before`` is a masked vectorized argmin:
        per-``(B, A)`` durations, move costs, and effective-capacity
        feasibility windows are precomputed once per call, so each state
        costs one gather + argmin instead of ``Z`` Python evaluations.
        ``np.argmin`` returns the first minimum, preserving the scalar
        loop's ascending-``before`` tie-breaking exactly.
        """
        dur, mcost, feas_start = self._move_tables(loads, horizon, z)

        cost = np.full((horizon + 1, z + 1), _INF)
        backptr: List[List[Optional[Tuple[int, int]]]] = [
            [None] * (z + 1) for _ in range(horizon + 1)
        ]

        # Base case (Algorithm 2, lines 5-6): at t=0 only N0 is reachable,
        # and only if the current load fits under target capacity.
        if n0 <= z and loads[0] <= self.capacity(n0) + 1e-9:
            cost[0][n0] = float(n0)

        cap_thresh = np.array(
            [self.capacity(a) + 1e-9 for a in range(1, z + 1)]
        )
        before_col = np.arange(z)[:, None]
        after_idx = np.arange(z)
        cost_view = cost[:, 1:]
        reachable = bool(np.isfinite(cost[0]).any())
        for t in range(1, horizon + 1):
            if not reachable:
                continue  # no reachable predecessor state anywhere yet
            start = t - dur
            in_range = start >= 0
            start_clipped = np.where(in_range, start, 0)
            prior = cost_view[start_clipped, before_col]
            feasible = in_range & feas_start[start_clipped, before_col, after_idx]
            candidates = np.where(feasible, prior + mcost, _INF)
            best_before = np.argmin(candidates, axis=0)
            best = candidates[best_before, after_idx]
            new_row = np.where(loads[t] <= cap_thresh, best, _INF)
            finite = np.isfinite(new_row)
            if finite.any():
                cost[t, 1:] = new_row
                for ai in np.nonzero(finite)[0]:
                    bi = int(best_before[ai])
                    backptr[t][ai + 1] = (t - int(dur[bi, ai]), bi + 1)
        return cost, backptr

    def _grid_tables(
        self, z: int
    ) -> Tuple[np.ndarray, np.ndarray, List[Tuple[int, np.ndarray, np.ndarray]]]:
        """Load-independent per-``(B, A)`` move primitives, cached by Z.

        Returns ``(dur, mcost, groups)`` where ``dur[b-1, a-1]`` is the
        effective move duration ``max(1, T(B,A))``, ``mcost`` the move
        cost ``C(B,A)``, and ``groups`` one ``(d, pairs, thresh)`` entry
        per distinct duration: the ``(B-1, A-1)`` index pairs of that
        duration and their effective-capacity thresholds ``eff + 1e-9``
        (Eq. 7), matching the scalar comparison
        ``loads[...] > eff + 1e-9`` exactly.
        """
        cached = self._grid_cache.get(z)
        if cached is not None:
            return cached
        dur = np.empty((z, z), dtype=np.int64)
        mcost = np.empty((z, z))
        for b in range(1, z + 1):
            for a in range(1, z + 1):
                dur[b - 1, a - 1] = max(1, self.move_duration(b, a))
                mcost[b - 1, a - 1] = self.move_cost(b, a)
        groups = []
        for d in np.unique(dur):
            d = int(d)
            pairs = np.argwhere(dur == d)
            thresh = (
                np.array(
                    [self._effcap_profile(b + 1, a + 1, d) for b, a in pairs]
                )
                + 1e-9
            )
            groups.append((d, pairs, thresh))
        tables = (dur, mcost, groups)
        self._grid_cache[z] = tables
        return tables

    def _move_tables(
        self, loads: List[float], horizon: int, z: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-``(B, A)`` durations, costs, and feasibility windows.

        ``feas_start[s, b-1, a-1]`` is whether a ``B -> A`` move starting
        at interval ``s`` keeps the predicted load under the effective
        capacity (Eq. 7) for each interval it spans (Algorithm 3, lines
        6-9).  A window starting at ``s`` covers ``loads[s+1 .. s+d]``.
        """
        dur, mcost, groups = self._grid_tables(z)
        loads_arr = np.asarray(loads, dtype=float)
        feas_start = np.zeros((horizon + 1, z, z), dtype=bool)
        for d, pairs, thresh in groups:
            if d > horizon:
                continue  # such a move cannot complete inside the horizon
            windows = np.lib.stride_tricks.sliding_window_view(loads_arr, d)
            windows = windows[1 : horizon - d + 2]
            ok = np.all(windows[:, None, :] <= thresh[None, :, :], axis=2)
            feas_start[: horizon - d + 1, pairs[:, 0], pairs[:, 1]] = ok
        return dur, mcost, feas_start

    def _effcap_profile(
        self, before: int, after: int, duration: int
    ) -> Tuple[float, ...]:
        """Effective capacity at the end of each interval of a move."""
        key = (before, after)
        cached = self._effcap_cache.get(key)
        if cached is None:
            q = self._config.q
            cached = tuple(
                model.effective_capacity(before, after, i / duration, q)
                for i in range(1, duration + 1)
            )
            self._effcap_cache[key] = cached
        return cached

    def _backtrack(
        self,
        backptr: List[List[Optional[Tuple[int, int]]]],
        horizon: int,
        final: int,
        n0: int,
    ) -> MoveSchedule:
        moves: List[Move] = []
        t, machines = horizon, final
        while t > 0:
            prev = backptr[t][machines]
            if prev is None:  # pragma: no cover - table invariant
                raise PlanningError("broken back-pointer chain")
            prev_t, prev_machines = prev
            moves.append(
                Move(start=prev_t, end=t, before=prev_machines, after=machines)
            )
            t, machines = prev_t, prev_machines
        if t != 0 or machines != n0:  # pragma: no cover - table invariant
            raise PlanningError("backtracking did not reach the initial state")
        moves.reverse()
        return MoveSchedule(moves)


# ----------------------------------------------------------------------
# Reference implementation: literal Algorithms 1-3 (recursive, memoised)
# ----------------------------------------------------------------------


def best_moves_reference(
    predicted_load: Sequence[float],
    initial_machines: int,
    config: PStoreConfig,
    current_load: Optional[float] = None,
) -> MoveSchedule:
    """Literal transcription of the paper's Algorithms 1-3.

    Used as a differential-testing oracle for :class:`Planner`.  Matches
    the paper's structure: for each candidate final size (smallest first),
    reset the memo table, compute ``cost(T, i)`` recursively, and backtrack
    through the memoised best moves on the first feasible hit.
    """
    request = PlanRequest(
        predicted_load=tuple(predicted_load),
        initial_machines=initial_machines,
        current_load=current_load,
    )
    loads = request.load_array()
    horizon = request.horizon
    n0 = request.initial_machines
    planner = Planner(config)  # reuse cached move primitives only
    # Hoisted: Algorithm 2's argmin bound Z depends only on the plan
    # inputs, so compute it once here instead of re-deriving it (max over
    # the load curve plus machines_needed) for every candidate ``before``
    # of every recursive call.
    z = len(memo_z_bound(loads, n0, planner))

    for final in range(1, z + 1):
        memo: Dict[Tuple[int, int], Tuple[float, Optional[Tuple[int, int]]]] = {}
        if _cost_recursive(horizon, final, loads, n0, planner, memo, z) != _INF:
            moves: List[Move] = []
            t, machines = horizon, final
            while t > 0:
                _, prev = memo[(t, machines)]
                assert prev is not None
                prev_t, prev_machines = prev
                moves.append(
                    Move(start=prev_t, end=t, before=prev_machines, after=machines)
                )
                t, machines = prev_t, prev_machines
            moves.reverse()
            return MoveSchedule(moves)
    raise InfeasiblePlanError(
        f"no feasible move sequence from N0={n0} over horizon T={horizon}",
        required_machines=planner.machines_needed(max(loads)),
    )


def _cost_recursive(
    t: int,
    after: int,
    loads: List[float],
    n0: int,
    planner: Planner,
    memo: Dict[Tuple[int, int], Tuple[float, Optional[Tuple[int, int]]]],
    z: int,
) -> float:
    """Algorithm 2 (``cost``)."""
    if t < 0 or (t == 0 and after != n0):
        return _INF
    if loads[t] > planner.capacity(after) + 1e-9:
        return _INF
    if (t, after) in memo:
        return memo[(t, after)][0]
    if t == 0:
        memo[(t, after)] = (float(after), None)
        return float(after)
    best = _INF
    best_prev: Optional[Tuple[int, int]] = None
    for before in range(1, z + 1):
        candidate = _sub_cost_recursive(
            t, before, after, loads, n0, planner, memo, z
        )
        if candidate < best:
            best = candidate
            duration = max(1, planner.move_duration(before, after))
            best_prev = (t - duration, before)
    memo[(t, after)] = (best, best_prev)
    return best


def memo_z_bound(loads: List[float], n0: int, planner: Planner) -> range:
    """Machines 1..Z that Algorithm 2's argmin ranges over."""
    z = max(planner.machines_needed(max(loads)), n0)
    if planner.config.max_machines:
        z = min(z, planner.config.max_machines)
    return range(z)


def _sub_cost_recursive(
    t: int,
    before: int,
    after: int,
    loads: List[float],
    n0: int,
    planner: Planner,
    memo: Dict[Tuple[int, int], Tuple[float, Optional[Tuple[int, int]]]],
    z: int,
) -> float:
    """Algorithm 3 (``sub-cost``)."""
    duration = planner.move_duration(before, after)
    move_cost = planner.move_cost(before, after)
    if duration == 0:
        duration = 1
        move_cost = float(before)
    start = t - duration
    if start < 0:
        return _INF
    q = planner.config.q
    for i in range(1, duration + 1):
        eff = model.effective_capacity(before, after, i / duration, q)
        if loads[start + i] > eff + 1e-9:
            return _INF
    prior = _cost_recursive(start, before, loads, n0, planner, memo, z)
    if prior == _INF:
        return _INF
    return prior + move_cost
