"""P-Store's core contribution: the predictive-elasticity algorithm.

* :mod:`repro.core.model` — the analytic move model (Eqs. 2-7, Alg. 4);
* :mod:`repro.core.moves` — move/schedule value types;
* :mod:`repro.core.planner` — the dynamic-programming planner (Algs. 1-3);
* :mod:`repro.core.controller` — the online Predictive Controller (Sec. 6).
"""

from .model import (
    MoveProfile,
    avg_machines_allocated,
    capacity,
    effective_capacity,
    machines_allocated_at,
    max_parallel,
    move_cost,
    move_profile,
    move_time,
    move_time_intervals,
    moved_fraction,
)
from .controller import Decision, PredictiveController
from .moves import Move, MoveSchedule
from .planner import Planner, PlanRequest, best_moves_reference
from .service import PStoreService, ServiceEvent

__all__ = [
    "Decision",
    "PredictiveController",
    "ServiceEvent",
    "Move",
    "MoveProfile",
    "MoveSchedule",
    "PlanRequest",
    "PStoreService",
    "Planner",
    "avg_machines_allocated",
    "best_moves_reference",
    "capacity",
    "effective_capacity",
    "machines_allocated_at",
    "max_parallel",
    "move_cost",
    "move_profile",
    "move_time",
    "move_time_intervals",
    "moved_fraction",
]
