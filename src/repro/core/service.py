"""PStoreService: the end-to-end system of Section 6 on a live cluster.

The paper's "Putting It All Together" wires a Predictive Controller to
H-Store's monitoring calls and Squall's migration engine.  This module
is that glue for the row-level substrate: feed it transactions and
advance simulated time, and it

* measures the aggregate load per planner interval (:class:`LoadMonitor`);
* streams measurements into an (optionally online/active-learning)
  predictor;
* runs the predict -> plan cycle whenever no migration is in flight,
  executing the first move of each plan (receding horizon);
* drives the Squall-like migrator so bucket moves commit round by round;
* optionally applies E-Store-style hot-bucket rebalancing between
  reconfigurations (the paper's proposed future work).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..config import PStoreConfig
from ..elasticity.predictive import PStoreStrategy
from ..errors import SimulationError
from ..faults.injector import FaultRecord, injector_from_config
from ..hstore.cluster import Cluster
from ..hstore.engine import TransactionExecutor
from ..hstore.monitor import LoadMonitor
from ..hstore.txn import Transaction, TxnResult
from ..prediction.base import Predictor
from ..prediction.online import OnlinePredictor
from ..squall.migrator import ClusterMigrator
from ..squall.rebalance import (
    apply_rebalance,
    hot_bucket_report,
    make_skew_rebalance_plan,
)
from ..telemetry import get_telemetry


@dataclass
class ServiceEvent:
    """One provisioning action taken by the service (for auditing).

    The structured telemetry event log
    (:class:`repro.telemetry.events.EventLog`) subsumes this record —
    every ServiceEvent is mirrored there as a ``service.<kind>`` event
    with the same fields and as a ``service.<kind>`` chronicle record
    with a causal parent — the plain list is kept as a thin
    backwards-compatible view.  ``record_id`` is the chronicle ID the
    event was filed under (None when telemetry is disabled), so audit
    entries can be joined against ``pstore explain`` chains."""

    time: float
    kind: str          # "scale-out" | "scale-in" | "emergency" | "rebalance"
    detail: str
    record_id: Optional[str] = None


class PStoreService:
    """A self-driving elastic database node manager.

    Parameters
    ----------
    cluster:
        the row-level cluster to manage.
    config:
        model parameters; ``interval_seconds`` sets the planning cadence.
    predictor:
        any fitted predictor, or an :class:`OnlinePredictor` that will
        learn from the measured load stream.
    max_machines:
        optional hard cap on cluster size.
    skew_rebalancing:
        enable hot-bucket rebalancing between reconfigurations.
    skew_threshold_share:
        the hottest partition's load share that triggers a rebalance.
    injector:
        optional :class:`~repro.faults.FaultInjector` to run this
        service under chaos; defaults to the one described by
        ``config.faults`` (None when fault injection is disabled, which
        keeps every code path identical to a fault-free run).
    """

    def __init__(
        self,
        cluster: Cluster,
        config: PStoreConfig,
        predictor: Predictor,
        max_machines: Optional[int] = None,
        chunk_kb: Optional[float] = None,
        skew_rebalancing: bool = False,
        skew_threshold_share: float = 0.25,
        telemetry=None,
        injector=None,
    ):
        if max_machines is not None and max_machines < 1:
            raise SimulationError("max_machines must be >= 1 when set")
        self.cluster = cluster
        self.config = config
        self.predictor = predictor
        self.max_machines = max_machines
        self.skew_rebalancing = skew_rebalancing
        self.skew_threshold_share = skew_threshold_share
        self._telemetry = telemetry if telemetry is not None else get_telemetry()

        tel = self._telemetry
        self._injector = (
            injector
            if injector is not None
            else injector_from_config(config, telemetry=tel)
        )
        self.executor = TransactionExecutor(cluster, telemetry=tel)
        self.monitor = LoadMonitor(config.interval_seconds, telemetry=tel)
        self.migrator = ClusterMigrator(
            cluster, config, chunk_kb=chunk_kb, telemetry=tel,
            injector=self._injector,
        )
        self._strategy: Optional[PStoreStrategy] = None
        if predictor.is_fitted or isinstance(predictor, OnlinePredictor):
            self._ensure_strategy()
        self._now = 0.0
        self._migration_target: Optional[int] = None
        self._pending_recovery: List[FaultRecord] = []
        self.events: List[ServiceEvent] = []

    @property
    def injector(self):
        """The attached fault injector (None on fault-free runs)."""
        return self._injector

    def _ensure_strategy(self) -> None:
        if self._strategy is None and self.predictor.is_fitted:
            self._strategy = PStoreStrategy(
                self.config, self.predictor, telemetry=self._telemetry,
                injector=self._injector,
            )

    def _record_event(
        self, kind: str, detail: str, parent: Optional[str] = None, **fields
    ) -> None:
        """File the action in the chronicle and mirror it into the
        telemetry event log; the ``events`` list keeps a thin view."""
        tel = self._telemetry
        record_id: Optional[str] = None
        if tel.enabled:
            rec = tel.chronicle.record(
                f"service.{kind}", time=self._now, parent=parent,
                detail=detail, **fields,
            )
            record_id = rec.get("id")
            tel.events.emit(f"service.{kind}", time=self._now, detail=detail,
                            **fields)
            tel.metrics.counter("service.events", kind=kind).inc()
        self.events.append(
            ServiceEvent(time=self._now, kind=kind, detail=detail,
                         record_id=record_id)
        )

    # ------------------------------------------------------------------
    # Transaction path
    # ------------------------------------------------------------------

    def execute(self, txn: Transaction) -> TxnResult:
        """Execute one transaction and record it for load monitoring."""
        if txn.submit_time < self._now:
            txn.submit_time = self._now
        result = self.executor.execute(txn)
        self.monitor.record(txn.submit_time)
        return result

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self._now

    @property
    def machines(self) -> int:
        return self.cluster.n_nodes

    @property
    def migrating(self) -> bool:
        return self.migrator.migrating

    def advance_time(self, dt: float) -> None:
        """Move the service clock forward, planning and migrating.

        Called by the host once per (sub-)interval; ``dt`` need not align
        with the planner interval.
        """
        if dt <= 0:
            raise SimulationError("dt must be positive")
        self._now += dt

        if self._injector is not None:
            self._injector.advance(self._now)
            self._handle_crashes()

        if self.migrator.migrating:
            finished = self.migrator.advance(dt)
            if finished and self._migration_target is not None:
                self._record_event(
                    "move-complete",
                    f"now at {self.cluster.n_nodes} machines",
                    parent=self._telemetry.chronicle.last("migration.complete"),
                    machines=self.cluster.n_nodes,
                )
                self._migration_target = None

        closed = self.monitor.record(self._now, count=0.0)
        tel = self._telemetry
        if closed and tel.enabled:
            tel.metrics.gauge("service.machines").set(self.cluster.n_nodes)
            tel.events.emit(
                "machines",
                time=self._now,
                slot=self.monitor.completed_intervals - 1,
                machines=self.cluster.n_nodes,
                migrating=self.migrating,
            )
        if closed and isinstance(self.predictor, OnlinePredictor):
            history = self.monitor.history_tps()
            for rate in history[-closed:]:
                self.predictor.observe(float(rate))
            self._ensure_strategy()

        if closed and not self.migrator.migrating:
            self._plan()
            if not self.migrator.migrating and self._pending_recovery:
                # First quiet planning cycle after a crash: the survivors
                # hold every bucket and the planner saw no need to move
                # (or the replacement move has already completed) — the
                # cluster is back to a feasible allocation.
                for record in self._pending_recovery:
                    self._injector.mark_recovered(record, self._now)
                self._pending_recovery = []
            if self.skew_rebalancing:
                self._maybe_rebalance()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _handle_crashes(self) -> None:
        """React to crash faults: abort any in-flight move, re-home the
        victim's buckets onto the survivors, and queue the fault for
        recovery confirmation at the next quiet planning cycle."""
        for record in self._injector.take_new_crashes():
            live = [n.node_id for n in self.cluster.nodes]
            if len(live) <= 1:
                # The last machine cannot be killed; treat the fault as a
                # no-op so the run still terminates deterministically.
                self._injector.mark_detected(record, self._now)
                self._injector.mark_recovered(record, self._now)
                continue
            victim = self._injector.resolve_crash_node(record, live)
            self._injector.mark_detected(record, self._now)
            if self.migrator.migrating:
                self.migrator.sim_time = max(self.migrator.sim_time, self._now)
                self.migrator.abort(reason=f"node {victim} crashed")
                self._migration_target = None
                self._record_event(
                    "migration-aborted",
                    f"node {victim} crashed mid-move",
                    parent=self._telemetry.chronicle.last("migration.aborted"),
                    node=victim,
                )
            summary = self.cluster.fail_node(victim)
            self._pending_recovery.append(record)
            tel = self._telemetry
            if tel.enabled:
                tel.chronicle.record(
                    "node.remove",
                    time=self._now,
                    parent=tel.chronicle.last("fault.injected"),
                    node=victim,
                    machines=summary["survivors"],
                    reason="crash",
                )
            self._record_event(
                "node-down",
                f"node {victim} crashed; {summary['buckets_moved']} buckets "
                f"re-homed onto {summary['survivors']} survivors",
                parent=self._telemetry.chronicle.last("node.remove"),
                node=victim,
                buckets_moved=summary["buckets_moved"],
                kb_recovered=summary["kb_recovered"],
                survivors=summary["survivors"],
            )

    def _plan(self) -> None:
        self._ensure_strategy()
        if self._strategy is None:
            return  # predictor still warming up
        history = self.monitor.history_tps()
        if history.size == 0:
            return
        slot = self.monitor.completed_intervals - 1
        decision = self._strategy.decide(slot, history, self.cluster.n_nodes)
        if not decision.acts:
            return
        target = decision.target_machines
        assert target is not None
        if self.max_machines is not None:
            target = min(target, self.max_machines)
        before = self.cluster.n_nodes
        if target == before or target < 1:
            return
        self.migrator.rate_multiplier = decision.rate_multiplier
        self.migrator.sim_time = self._now
        self.migrator.start_move(
            target, cause_id=getattr(decision, "record_id", None)
        )
        self._migration_target = target
        kind = (
            "emergency"
            if decision.emergency
            else ("scale-out" if target > before else "scale-in")
        )
        self._record_event(
            kind,
            f"{decision.reason} -> {target} machines",
            parent=getattr(decision, "record_id", None),
            reason=decision.reason,
            before=before,
            target=target,
            rate_multiplier=decision.rate_multiplier,
        )
        self._strategy.notify_move_started(target)

    def _maybe_rebalance(self) -> None:
        report = hot_bucket_report(self.cluster)
        fair = 1.0 / max(1, len(self.cluster.partition_ids))
        if report.hottest_share <= max(self.skew_threshold_share, 2 * fair):
            return
        plan = make_skew_rebalance_plan(self.cluster)
        if not plan.moves:
            return
        moved_kb = apply_rebalance(self.cluster, plan)
        self.cluster.reset_bucket_accesses()
        self._record_event(
            "rebalance",
            f"moved {len(plan.moves)} hot buckets ({moved_kb:.0f} kB)",
            n_moves=len(plan.moves),
            moved_kb=moved_kb,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def status(self) -> str:
        """One-line status for logs/UIs."""
        state = "migrating" if self.migrating else "steady"
        return (
            f"t={self._now:,.0f}s machines={self.machines} {state} "
            f"intervals={self.monitor.completed_intervals} "
            f"events={len(self.events)}"
        )
