"""Analytic model of reconfigurations (Sections 4.4.2-4.4.4 of the paper).

This module answers, in closed form, the four questions the planner needs
when evaluating a candidate move from ``B`` to ``A`` machines:

* how many transfers can run in parallel — :func:`max_parallel` (Eq. 2);
* how long the move takes — :func:`move_time` (Eq. 3);
* what the move costs in machine-time — :func:`move_cost` (Eq. 4) via
  :func:`avg_machines_allocated` (Algorithm 4);
* how much capacity the system retains while data is in flight —
  :func:`effective_capacity` (Eq. 7).

All functions treat scale-in and scale-out symmetrically, exactly as the
paper does.  Times are expressed in units of ``D`` (the single-thread
full-database migration time) unless a config is supplied to convert them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import PlanningError


def _check_move(before: int, after: int) -> None:
    if before < 1 or after < 1:
        raise PlanningError(
            f"cluster sizes must be >= 1 (got B={before}, A={after})"
        )


def capacity(n_machines: int, q: float) -> float:
    """Total capacity of ``n`` evenly-loaded machines: ``cap(N) = Q * N`` (Eq. 5)."""
    if n_machines < 0:
        raise PlanningError(f"machine count must be >= 0 (got {n_machines})")
    return q * n_machines


def max_parallel(before: int, after: int, partitions_per_node: int = 1) -> int:
    """Maximum number of parallel data transfers during a move (Eq. 2).

    Each partition may exchange data with at most one other partition at a
    time, so parallelism is bounded by the smaller of the sender and
    receiver partition counts.
    """
    _check_move(before, after)
    p = partitions_per_node
    if p < 1:
        raise PlanningError(f"partitions_per_node must be >= 1 (got {p})")
    if before == after:
        return 0
    if before < after:
        return p * min(before, after - before)
    return p * min(after, before - after)


def moved_fraction(before: int, after: int) -> float:
    """Fraction of the database that a ``B -> A`` move transfers.

    Scaling out from B to A moves ``1 - B/A`` of the data (each of the B
    senders goes from 1/B to 1/A); scale-in is symmetric.
    """
    _check_move(before, after)
    if before == after:
        return 0.0
    if before < after:
        return 1.0 - before / after
    return 1.0 - after / before


def move_time(
    before: int,
    after: int,
    partitions_per_node: int = 1,
    d: float = 1.0,
) -> float:
    """Time for a reconfiguration from ``B`` to ``A`` machines (Eq. 3).

    ``d`` is the single-thread full-database migration time; the result is
    in the same unit.  With maximum parallelism the whole database could be
    moved in ``d / max_parallel``; only the fraction given by
    :func:`moved_fraction` actually moves.
    """
    _check_move(before, after)
    if before == after:
        return 0.0
    par = max_parallel(before, after, partitions_per_node)
    return (d / par) * moved_fraction(before, after)


def avg_machines_allocated(before: int, after: int) -> float:
    """Average machines allocated during a move (Algorithm 4, Appendix B).

    Machines are allocated just-in-time (scale-out) or released as soon as
    they are drained (scale-in), following the three scheduling cases of
    Section 4.4.1:

    1. ``s >= delta``: all machines present for the whole move;
    2. ``delta`` a multiple of ``s``: blocks of ``s`` machines are
       allocated one block at a time;
    3. otherwise: the three-phase schedule.
    """
    _check_move(before, after)
    larger = max(before, after)
    smaller = min(before, after)
    delta = larger - smaller
    if delta == 0:
        return float(before)
    remainder = delta % smaller

    # Case 1: all machines added or removed at once.
    if smaller >= delta:
        return float(larger)

    # Case 2: delta is a perfect multiple of the smaller cluster.
    if remainder == 0:
        return (2 * smaller + larger) / 2.0

    # Case 3: three phases.
    n1 = delta // smaller - 1              # full blocks in phase 1
    t1 = smaller / delta                   # time per phase-1 step
    m1 = (smaller + larger - remainder) / 2.0
    phase1 = n1 * t1 * m1

    t2 = remainder / delta                 # time for phase 2
    m2 = larger - remainder
    phase2 = t2 * m2

    t3 = smaller / delta                   # time for phase 3
    m3 = larger
    phase3 = t3 * m3

    return phase1 + phase2 + phase3


def move_cost(
    before: int,
    after: int,
    partitions_per_node: int = 1,
    d: float = 1.0,
) -> float:
    """Cost of a move in machine-time (Eq. 4): ``T(B,A) * avg-mach-alloc``."""
    _check_move(before, after)
    if before == after:
        return 0.0
    return move_time(before, after, partitions_per_node, d) * avg_machines_allocated(
        before, after
    )


def effective_capacity(
    before: int,
    after: int,
    fraction_moved: float,
    q: float,
) -> float:
    """Effective system capacity after ``fraction_moved`` of a move (Eq. 7).

    While data is in flight it is not evenly distributed, so the busiest
    original machine bounds the whole system's throughput.  ``fraction_moved``
    is the fraction *of the data being moved in this move* that has already
    been transferred (0 at the start, 1 at the end).
    """
    _check_move(before, after)
    if not 0.0 <= fraction_moved <= 1.0:
        raise PlanningError(
            f"fraction_moved must be in [0, 1] (got {fraction_moved})"
        )
    b, a, f = before, after, fraction_moved
    if b == a:
        return capacity(b, q)
    if b < a:
        # Each of the B senders shrinks from 1/B of the data to 1/A.
        largest_share = 1.0 / b - f * (1.0 / b - 1.0 / a)
    else:
        # Each of the A survivors grows from 1/B of the data to 1/A.
        largest_share = 1.0 / b + f * (1.0 / a - 1.0 / b)
    return q / largest_share


def machines_allocated_at(before: int, after: int, fraction_elapsed: float) -> int:
    """Machines physically allocated after ``fraction_elapsed`` of a move.

    This is the instantaneous step function whose time-average Algorithm 4
    computes.  Scale-out allocates just in time; scale-in releases machines
    as soon as they are drained (symmetric).
    """
    _check_move(before, after)
    if not 0.0 <= fraction_elapsed <= 1.0:
        raise PlanningError(
            f"fraction_elapsed must be in [0, 1] (got {fraction_elapsed})"
        )
    larger = max(before, after)
    smaller = min(before, after)
    delta = larger - smaller
    if delta == 0:
        return before
    extra = _extra_machines_at(smaller, delta, fraction_elapsed)
    if before < after:      # scale-out: machines appear over time
        return smaller + extra
    # Scale-in mirrors scale-out in reverse: machines still allocated at
    # elapsed fraction f equal those a scale-out would have at 1 - f.
    return smaller + _extra_machines_at(smaller, delta, 1.0 - fraction_elapsed)


def _extra_machines_at(smaller: int, delta: int, f: float) -> int:
    """Extra machines (beyond the smaller cluster) present at fraction ``f``
    of a scale-out, under just-in-time allocation."""
    if f >= 1.0:
        return delta
    remainder = delta % smaller
    if smaller >= delta:
        # Case 1: everything allocated up front.
        return delta
    if remainder == 0:
        # Case 2: blocks of ``smaller`` machines; block k appears at k*s/delta.
        blocks = delta // smaller
        active = 1 + int(f * blocks)
        return min(delta, active * smaller)
    # Case 3: phase 1 has n1 steps of length s/delta, phase 2 length
    # r/delta, phase 3 length s/delta.
    n1 = delta // smaller - 1
    step = smaller / delta
    # Boundaries (in elapsed fraction) after which each block is present.
    # Block j (j = 1..n1+1 of size s) appears at (j-1) boundaries; the final
    # r machines appear at the start of phase 3.
    t = 0.0
    extra = smaller            # first block present from the start
    for _ in range(n1):
        t += step
        if f >= t - 1e-12:
            extra += smaller
        else:
            return extra
    # phase 2 -> phase 3 boundary
    t += remainder / delta
    if f >= t - 1e-12:
        extra += remainder
    return min(extra, delta)


@dataclass(frozen=True)
class MoveProfile:
    """Precomputed trajectory of a single move, sampled per round.

    Attributes
    ----------
    before, after:
        cluster sizes around the move.
    rounds:
        number of migration rounds (``max(s, delta)`` for unequal sizes).
    times:
        elapsed-fraction grid, one entry per round boundary (0..1).
    machines:
        machines allocated in each inter-boundary segment.
    eff_cap:
        effective capacity at each boundary.
    """

    before: int
    after: int
    rounds: int
    times: tuple
    machines: tuple
    eff_cap: tuple


def move_profile(before: int, after: int, q: float) -> MoveProfile:
    """Sample machine allocation and effective capacity across a move.

    Used to draw Figure 4 and by tests that cross-check Algorithm 4's
    closed-form average against the explicit step function.
    """
    _check_move(before, after)
    if before == after:
        return MoveProfile(before, after, 0, (0.0,), (before,), (capacity(before, q),))
    larger = max(before, after)
    smaller = min(before, after)
    rounds = max(smaller, larger - smaller)
    boundaries = [i / rounds for i in range(rounds + 1)]
    machines = [
        machines_allocated_at(before, after, (i + 0.5) / rounds) for i in range(rounds)
    ]
    eff = [effective_capacity(before, after, f, q) for f in boundaries]
    return MoveProfile(
        before=before,
        after=after,
        rounds=rounds,
        times=tuple(boundaries),
        machines=tuple(machines),
        eff_cap=tuple(eff),
    )


def move_time_intervals(
    before: int,
    after: int,
    partitions_per_node: int,
    d_intervals: float,
) -> int:
    """``T(B,A)`` rounded up to whole planner intervals.

    The DP of Section 4.3 discretises time; each move lasts a positive
    integer number of intervals (the "do nothing" move is handled by the
    planner itself, which forces a minimum length of one interval).
    """
    t = move_time(before, after, partitions_per_node, d_intervals)
    if t == 0.0:
        return 0
    return max(1, math.ceil(t - 1e-9))
