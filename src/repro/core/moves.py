"""Move and schedule-of-moves value types used by the planner.

A *move* is a reconfiguration from ``B`` machines to ``A`` machines with a
definite start and end expressed in planner time intervals (Section 4.3 of
the paper).  ``B == A`` is the valid "do nothing" move, which by convention
lasts exactly one interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from ..errors import PlanningError


@dataclass(frozen=True)
class Move:
    """One reconfiguration step in a planned schedule.

    Attributes
    ----------
    start:
        first time interval of the move (inclusive).
    end:
        last time interval of the move (exclusive); ``end - start`` is the
        duration in intervals and is always >= 1.
    before:
        machines allocated when the move starts (``B``).
    after:
        machines allocated once the move completes (``A``).
    """

    start: int
    end: int
    before: int
    after: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise PlanningError(
                f"move must last at least one interval (start={self.start}, end={self.end})"
            )
        if self.before < 1 or self.after < 1:
            raise PlanningError(
                f"cluster sizes must be >= 1 (B={self.before}, A={self.after})"
            )

    @property
    def duration(self) -> int:
        """Length of the move in whole time intervals."""
        return self.end - self.start

    @property
    def is_noop(self) -> bool:
        """True for the "do nothing" move (B == A)."""
        return self.before == self.after

    @property
    def is_scale_out(self) -> bool:
        return self.after > self.before

    @property
    def is_scale_in(self) -> bool:
        return self.after < self.before

    @property
    def machines_added(self) -> int:
        """Machines added (positive) or removed (negative) by this move."""
        return self.after - self.before

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        arrow = "==" if self.is_noop else "->"
        return f"[{self.start:>3}..{self.end:>3}) {self.before}{arrow}{self.after}"


class MoveSchedule:
    """An ordered, contiguous, non-overlapping sequence of moves.

    This is the object returned by the planner (the ``M`` of Algorithm 1).
    Contiguity is enforced: each move starts where the previous one ended
    and hands over the machine count unchanged.
    """

    def __init__(self, moves: Iterable[Move]):
        self._moves: List[Move] = list(moves)
        self._validate()

    def _validate(self) -> None:
        for prev, cur in zip(self._moves, self._moves[1:]):
            if cur.start != prev.end:
                raise PlanningError(
                    f"moves must be contiguous: {prev} then {cur}"
                )
            if cur.before != prev.after:
                raise PlanningError(
                    f"machine counts must chain: {prev} then {cur}"
                )

    def __len__(self) -> int:
        return len(self._moves)

    def __iter__(self):
        return iter(self._moves)

    def __getitem__(self, idx):
        return self._moves[idx]

    def __bool__(self) -> bool:
        return bool(self._moves)

    def __eq__(self, other) -> bool:
        if not isinstance(other, MoveSchedule):
            return NotImplemented
        return self._moves == other._moves

    @property
    def moves(self) -> Sequence[Move]:
        return tuple(self._moves)

    @property
    def first_real_move(self) -> Move | None:
        """The first move that actually changes the cluster size, if any.

        The controller executes only the first *real* move of each plan
        (receding-horizon control, Section 6).
        """
        for move in self._moves:
            if not move.is_noop:
                return move
        return None

    @property
    def final_machines(self) -> int:
        if not self._moves:
            raise PlanningError("empty schedule has no final machine count")
        return self._moves[-1].after

    @property
    def horizon(self) -> int:
        """Last interval covered by the schedule."""
        if not self._moves:
            return 0
        return self._moves[-1].end

    def machines_at(self, t: int) -> int:
        """Machines allocated at interval ``t`` under this schedule.

        During a scale-out move the *after* count is conservative for cost
        but machines arrive just-in-time; for planning purposes the paper
        accounts a move's cost via Algorithm 4, so this helper reports the
        move's ``after`` count once the move has completed and ``before``
        count while it is in flight.
        """
        if not self._moves:
            raise PlanningError("empty schedule")
        if t < self._moves[0].start:
            return self._moves[0].before
        for move in self._moves:
            if move.start <= t < move.end:
                return move.before if not move.is_noop else move.after
        return self._moves[-1].after

    def total_cost(self, cost_fn) -> float:
        """Sum of per-move costs given a ``cost_fn(move) -> float``."""
        return sum(cost_fn(move) for move in self._moves)

    def describe(self) -> str:
        """Multi-line human-readable rendering of the schedule."""
        if not self._moves:
            return "(empty schedule)"
        return "\n".join(str(m) for m in self._moves)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(str(m) for m in self._moves)
        return f"MoveSchedule({inner})"
