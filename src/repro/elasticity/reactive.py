"""Reactive provisioning in the style of E-Store (Taft et al., VLDB'14).

E-Store continuously monitors load and reconfigures *after* detecting
that the system is (close to) overloaded — which means migration runs
while the cluster is already at peak capacity, producing the latency
spikes of Fig. 9c.  Our reactive baseline follows that scheme:

* **scale-out** triggers as soon as the measured load exceeds
  ``scale_out_threshold`` of the cluster's maximum throughput
  (``N * Q-hat``); the target brings per-server load back down to the
  target rate ``Q`` plus a headroom factor;
* **scale-in** triggers only after the load has stayed below what a
  smaller cluster could comfortably serve for ``scale_in_patience``
  consecutive intervals (reactive systems also debounce, or they thrash).

The ``headroom`` knob is what Figure 12 sweeps (together with Q) to
trace the reactive capacity-cost curve: more headroom means fewer
capacity violations at higher cost.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from ..config import PStoreConfig
from ..errors import SimulationError
from .base import NO_ACTION, ProvisioningStrategy, ScaleDecision


class ReactiveStrategy(ProvisioningStrategy):
    """Threshold-triggered reactive allocation (the E-Store baseline)."""

    def __init__(
        self,
        config: PStoreConfig,
        scale_out_threshold: float = 0.90,
        headroom: float = 1.0,
        scale_in_patience: int = 15,
        min_machines: int = 1,
        max_machines: Optional[int] = None,
        rate_multiplier: float = 4.0,
    ):
        if not 0 < scale_out_threshold <= 1:
            raise SimulationError("scale_out_threshold must be in (0, 1]")
        if headroom <= 0:
            raise SimulationError("headroom must be positive")
        if scale_in_patience < 1:
            raise SimulationError("scale_in_patience must be >= 1")
        if min_machines < 1:
            raise SimulationError("min_machines must be >= 1")
        self.config = config
        self.scale_out_threshold = scale_out_threshold
        self.headroom = headroom
        self.scale_in_patience = scale_in_patience
        self.min_machines = min_machines
        self.max_machines = max_machines
        self.rate_multiplier = rate_multiplier
        self._below_streak = 0
        self.name = "reactive"

    def reset(self, initial_machines: int) -> None:
        super().reset(initial_machines)
        self._below_streak = 0

    def _target_for(self, load_tps: float) -> int:
        """Machines that bring per-server load to Q with headroom."""
        target = max(
            self.min_machines,
            math.ceil(load_tps * self.headroom / self.config.q - 1e-9),
        )
        if self.max_machines is not None:
            target = min(target, self.max_machines)
        return target

    def decide(
        self,
        slot: int,
        history_tps: Sequence[float],
        current_machines: int,
    ) -> ScaleDecision:
        load = float(history_tps[-1])
        max_capacity = current_machines * self.config.q_hat

        # Overload: scale out immediately (and while overloaded!).
        if load > self.scale_out_threshold * max_capacity:
            self._below_streak = 0
            target = max(self._target_for(load), current_machines + 1)
            if self.max_machines is not None:
                target = min(target, self.max_machines)
            if target <= current_machines:
                return NO_ACTION
            return ScaleDecision(
                target_machines=target,
                rate_multiplier=self.rate_multiplier,
                reason=f"load {load:.0f} > {self.scale_out_threshold:.0%} of max capacity",
            )

        # Underload: be patient, then shrink to the fitted size.
        fitted = self._target_for(load)
        if fitted < current_machines:
            self._below_streak += 1
            if self._below_streak >= self.scale_in_patience:
                self._below_streak = 0
                return ScaleDecision(
                    target_machines=fitted,
                    rate_multiplier=self.rate_multiplier,
                    reason=f"load fits {fitted} machines for "
                    f"{self.scale_in_patience} intervals",
                )
        else:
            self._below_streak = 0
        return NO_ACTION
