"""The "Simple" time-of-day strategy of Figure 12/13.

"The Simple strategy increases machines in the morning and decreases
them at night.  It seems like it could work ... but it breaks down as
soon as there is any deviation from the pattern."  It is a fixed
schedule: scale to ``day_machines`` at a morning hour and back to
``night_machines`` at a night hour, every day, regardless of load.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import SimulationError
from .base import NO_ACTION, ProvisioningStrategy, ScaleDecision


class SimpleStrategy(ProvisioningStrategy):
    """Clock-driven day/night allocation.

    Parameters
    ----------
    day_machines, night_machines:
        cluster sizes to hold during the day and overnight.
    slots_per_day:
        planner intervals per day.
    morning_hour, night_hour:
        local hours (0-24) at which to scale out and in.  The morning
        scale-out is requested early enough that migration completes
        before the daily ramp under normal conditions.
    """

    def __init__(
        self,
        day_machines: int,
        night_machines: int,
        slots_per_day: int,
        morning_hour: float = 7.0,
        night_hour: float = 23.5,
    ):
        if night_machines < 1 or day_machines < night_machines:
            raise SimulationError(
                "need day_machines >= night_machines >= 1 "
                f"(got {day_machines}, {night_machines})"
            )
        if slots_per_day < 1:
            raise SimulationError("slots_per_day must be >= 1")
        if not 0 <= morning_hour < 24 or not 0 <= night_hour < 24:
            raise SimulationError("hours must be in [0, 24)")
        self.day_machines = day_machines
        self.night_machines = night_machines
        self.slots_per_day = slots_per_day
        self._morning_slot = int(morning_hour / 24.0 * slots_per_day)
        self._night_slot = int(night_hour / 24.0 * slots_per_day)
        self.name = f"simple-{night_machines}/{day_machines}"

    def _target_for_slot(self, slot: int) -> int:
        time_of_day = slot % self.slots_per_day
        if self._morning_slot <= time_of_day < self._night_slot:
            return self.day_machines
        return self.night_machines

    def decide(
        self,
        slot: int,
        history_tps: Sequence[float],
        current_machines: int,
    ) -> ScaleDecision:
        target = self._target_for_slot(slot)
        if target == current_machines:
            return NO_ACTION
        direction = "morning scale-out" if target > current_machines else "night scale-in"
        return ScaleDecision(target_machines=target, reason=direction)
