"""P-Store's predictive strategy: a thin adapter over the controller.

Wraps :class:`~repro.core.controller.PredictiveController` in the
:class:`~repro.elasticity.base.ProvisioningStrategy` interface so the
simulators can drive P-Store exactly like the baselines.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..config import PStoreConfig
from ..core.controller import PredictiveController
from ..errors import SimulationError
from ..prediction.base import Predictor
from .base import NO_ACTION, ProvisioningStrategy, ScaleDecision


class PStoreStrategy(ProvisioningStrategy):
    """Predictive provisioning driven by the DP planner.

    Parameters
    ----------
    config:
        model parameters (Q, D, inflation, debounce, ...).
    predictor:
        a fitted predictor (SPAR for "P-Store SPAR", an
        :class:`~repro.prediction.oracle.OraclePredictor` for
        "P-Store Oracle" in Fig. 12).
    horizon_intervals:
        forecast window; defaults to the controller's ``2D/P`` bound.
    emergency_rate_multiplier:
        migration-rate boost for infeasible plans (Fig. 11 compares
        1.0 and 8.0).
    """

    def __init__(
        self,
        config: PStoreConfig,
        predictor: Predictor,
        horizon_intervals: Optional[int] = None,
        emergency_rate_multiplier: float = 1.0,
        name: str = "p-store",
        telemetry=None,
        injector=None,
    ):
        if not predictor.is_fitted:
            raise SimulationError("predictor must be fitted before use")
        self.config = config
        self.controller = PredictiveController(
            config=config,
            predictor=predictor,
            horizon_intervals=horizon_intervals,
            emergency_rate_multiplier=emergency_rate_multiplier,
            telemetry=telemetry,
            injector=injector,
        )
        self.name = name

    @property
    def min_history(self) -> int:
        """Measured intervals the predictor needs before the first plan."""
        return getattr(self.controller.predictor, "min_history", 1)

    def decide(
        self,
        slot: int,
        history_tps: Sequence[float],
        current_machines: int,
    ) -> ScaleDecision:
        if len(history_tps) < self.min_history:
            return NO_ACTION  # still warming up the predictor
        decision = self.controller.decide(history_tps, current_machines)
        if not decision.acts:
            return NO_ACTION
        return ScaleDecision(
            target_machines=decision.target_machines,
            rate_multiplier=decision.rate_multiplier,
            emergency=decision.emergency,
            reason=decision.reason,
            record_id=decision.record_id,
        )

    def notify_move_started(self, target_machines: int) -> None:
        self.controller.notify_move_started()
