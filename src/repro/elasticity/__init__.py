"""Provisioning strategies: P-Store and the paper's baselines."""

from .base import NO_ACTION, ProvisioningStrategy, ScaleDecision, StrategySpec
from .composite import CompositeStrategy, ManualReservation
from .manual import ManualStrategy
from .predictive import PStoreStrategy
from .reactive import ReactiveStrategy
from .simple import SimpleStrategy
from .static import StaticStrategy

__all__ = [
    "CompositeStrategy",
    "ManualReservation",
    "ManualStrategy",
    "NO_ACTION",
    "PStoreStrategy",
    "ProvisioningStrategy",
    "ReactiveStrategy",
    "ScaleDecision",
    "SimpleStrategy",
    "StaticStrategy",
    "StrategySpec",
]
