"""Provisioning-strategy interface shared by all simulators.

A strategy is consulted once per planning interval, *only while no
reconfiguration is in flight* (both P-Store's controller and the reactive
baseline wait for the current migration to finish before planning the
next, Sec. 6).  It sees the measured load history at planner-interval
granularity and the current cluster size and answers with a
:class:`ScaleDecision`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Tuple, Union

from ..errors import SimulationError, StrategySpecError


@dataclass(frozen=True)
class ScaleDecision:
    """What a strategy wants done right now.

    ``target_machines`` of None means "do nothing".  ``rate_multiplier``
    scales the migration rate (the paper's emergency R x 8 mode);
    ``emergency`` tags reactive fallbacks for reporting.
    """

    target_machines: Optional[int] = None
    rate_multiplier: float = 1.0
    emergency: bool = False
    reason: str = ""
    #: chronicle ID of the plan decision behind this action (None for
    #: strategies that don't record one, or with telemetry disabled).
    record_id: Optional[str] = None

    @property
    def acts(self) -> bool:
        return self.target_machines is not None


#: The "do nothing" decision.
NO_ACTION = ScaleDecision()


#: Scalar parameter value of a strategy spec.
ParamValue = Union[int, float, str]

#: Parameter names accepted per strategy kind (``StrategySpec.parse``
#: rejects anything else with one typed error).
_SPEC_PARAMS = {
    "static": {"machines"},
    "simple": {"day", "night", "slots_per_day", "morning_hour", "night_hour"},
    "reactive": {
        "patience", "max_machines", "min_machines", "threshold", "headroom",
        "rate",
    },
    "p-store": {"name", "horizon", "emergency_rate"},
    "predictive": {"predictor", "name", "horizon", "emergency_rate"},
}

#: Parameters that must be present after parsing.
_SPEC_REQUIRED = {
    "static": ("machines",),
    "simple": ("day", "night"),
    "reactive": (),
    "p-store": (),
    "predictive": (),
}


def _coerce_param(text: str) -> ParamValue:
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


@dataclass(frozen=True)
class StrategySpec:
    """Declarative description of a provisioning strategy.

    The one spec grammar shared by the CLI, the experiment cell grids,
    and chaos/fault scenarios (replacing the CLI's old private string
    parser).  String forms::

        p-store                      # SPAR-driven predictive controller
        predictive:mssa              # same controller, any zoo predictor
        predictive                   # shorthand for predictive:spar
        reactive                     # E-Store-style reactive baseline
        reactive:patience=10         # ... with keyword parameters
        static:6                     # fixed 6-machine allocation
        simple:7/3                   # clock-driven day/night allocation

    After the ``:`` a kind-specific positional shorthand (``static:<N>``,
    ``simple:<day>/<night>``, ``predictive:<predictor>``) and/or
    comma-separated ``key=value`` pairs are accepted.  ``predictive``
    predictor slugs resolve through the registry in
    :mod:`repro.prediction.registry`; unknown slugs are rejected at
    parse time so sweep grids fail fast.  Malformed specs raise :class:`StrategySpecError` — the
    single typed error for every consumer.

    Instances are frozen and hashable; :meth:`canonical` returns a
    normalised string (sorted parameters) suitable for cache keys.
    """

    kind: str
    params: Tuple[Tuple[str, ParamValue], ...] = field(default=())

    def __post_init__(self) -> None:
        if self.kind not in _SPEC_PARAMS:
            raise StrategySpecError(
                f"unknown strategy kind {self.kind!r} (expected one of "
                f"{sorted(_SPEC_PARAMS)})"
            )
        normalized = tuple(sorted((str(k), v) for k, v in self.params))
        object.__setattr__(self, "params", normalized)
        allowed = _SPEC_PARAMS[self.kind]
        for key, value in normalized:
            if key not in allowed:
                raise StrategySpecError(
                    f"unknown parameter {key!r} for strategy "
                    f"{self.kind!r} (allowed: {sorted(allowed)})"
                )
            if not isinstance(value, (int, float, str)):
                raise StrategySpecError(
                    f"parameter {key}={value!r} must be an int, float, or "
                    "string"
                )
        missing = [
            k for k in _SPEC_REQUIRED[self.kind] if k not in dict(normalized)
        ]
        if missing:
            raise StrategySpecError(
                f"strategy {self.kind!r} is missing required parameter(s) "
                f"{missing}"
            )
        if self.kind == "predictive":
            from ..prediction.registry import registered_predictors

            slug = dict(normalized).get("predictor", "spar")
            if str(slug) not in registered_predictors():
                raise StrategySpecError(
                    f"unknown predictor {slug!r} in predictive strategy "
                    f"(registered: {registered_predictors()})"
                )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "StrategySpec":
        """Parse a spec string (see the class docstring for the grammar)."""
        if not isinstance(text, str) or not text.strip():
            raise StrategySpecError("strategy spec must be a non-empty string")
        kind, _, arg = text.strip().partition(":")
        if kind not in _SPEC_PARAMS:
            raise StrategySpecError(
                f"unknown strategy spec {text!r} (expected p-store, "
                "predictive:<predictor>, reactive, static:<N>, or "
                "simple:<day>/<night>)"
            )
        params: dict = {}
        positional: list = []
        if arg:
            for part in arg.split(","):
                part = part.strip()
                if not part:
                    raise StrategySpecError(
                        f"empty parameter in strategy spec {text!r}"
                    )
                if "=" in part:
                    key, _, raw = part.partition("=")
                    params[key.strip()] = _coerce_param(raw.strip())
                else:
                    positional.append(part)
        if positional:
            params.update(cls._positional_params(kind, positional, text))
        return cls(kind=kind, params=tuple(params.items()))

    @staticmethod
    def _positional_params(kind: str, positional: list, text: str) -> dict:
        if kind == "static":
            if len(positional) != 1:
                raise StrategySpecError(
                    f"bad strategy spec {text!r} (expected static:<N>)"
                )
            try:
                return {"machines": int(positional[0])}
            except ValueError:
                raise StrategySpecError(
                    f"bad machine count in strategy spec {text!r} "
                    "(expected static:<N>)"
                ) from None
        if kind == "simple":
            try:
                day, night = positional[0].split("/")
                extra = {"day": int(day), "night": int(night)}
            except ValueError:
                raise StrategySpecError(
                    f"bad strategy spec {text!r} "
                    "(expected simple:<day>/<night>)"
                ) from None
            if len(positional) != 1:
                raise StrategySpecError(
                    f"bad strategy spec {text!r} "
                    "(expected simple:<day>/<night>)"
                )
            return extra
        if kind == "predictive":
            if len(positional) != 1:
                raise StrategySpecError(
                    f"bad strategy spec {text!r} "
                    "(expected predictive:<predictor>)"
                )
            return {"predictor": str(positional[0])}
        raise StrategySpecError(
            f"strategy {kind!r} takes only key=value parameters, got "
            f"{positional} in {text!r}"
        )

    @classmethod
    def from_dict(cls, data: Mapping) -> "StrategySpec":
        """Build a spec from a mapping, e.g. ``{"kind": "static",
        "machines": 6}`` (scenario files, sweep grids)."""
        if not isinstance(data, Mapping):
            raise StrategySpecError("strategy spec must be a mapping")
        if "kind" not in data:
            raise StrategySpecError("strategy spec mapping needs a 'kind' key")
        params = {k: v for k, v in data.items() if k != "kind"}
        return cls(kind=str(data["kind"]), params=tuple(params.items()))

    # ------------------------------------------------------------------
    # Introspection / serialisation
    # ------------------------------------------------------------------

    def param(self, key: str, default: ParamValue = None):
        return dict(self.params).get(key, default)

    @property
    def needs_predictor(self) -> bool:
        """True for specs materialised around a fitted predictor."""
        return self.kind in ("p-store", "predictive")

    @property
    def predictor_name(self) -> Optional[str]:
        """Registry slug of the forecaster this spec asks for.

        ``p-store`` is pinned to SPAR (the paper's configuration);
        ``predictive`` defaults to SPAR too (``predictive`` ≡
        ``predictive:spar``) but accepts any registered slug.  ``None``
        for non-predictive kinds.
        """
        if self.kind == "p-store":
            return "spar"
        if self.kind == "predictive":
            return str(self.param("predictor", "spar"))
        return None

    def to_dict(self) -> dict:
        return {"kind": self.kind, **dict(self.params)}

    def canonical(self) -> str:
        """Normalised string form (sorted parameters); parse-stable."""
        if not self.params:
            return self.kind
        rendered = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.kind}:{rendered}"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.canonical()

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------

    def build(
        self,
        config,
        *,
        predictor=None,
        slots_per_day: Optional[int] = None,
        injector=None,
        telemetry=None,
    ) -> "ProvisioningStrategy":
        """Materialise the strategy this spec describes.

        ``predictor`` (fitted) is required for ``p-store`` specs;
        ``slots_per_day`` is required for ``simple`` specs unless the
        spec carries a ``slots_per_day`` parameter.  ``injector`` and
        ``telemetry`` are forwarded to strategies that accept them.
        """
        from .predictive import PStoreStrategy
        from .reactive import ReactiveStrategy
        from .simple import SimpleStrategy
        from .static import StaticStrategy

        params = dict(self.params)
        if self.kind == "static":
            return StaticStrategy(int(params["machines"]))
        if self.kind == "simple":
            spd = params.get("slots_per_day", slots_per_day)
            if spd is None:
                raise StrategySpecError(
                    "simple strategy needs slots_per_day (parameter or "
                    "build argument)"
                )
            return SimpleStrategy(
                day_machines=int(params["day"]),
                night_machines=int(params["night"]),
                slots_per_day=int(spd),
                morning_hour=float(params.get("morning_hour", 5.0)),
                night_hour=float(params.get("night_hour", 23.5)),
            )
        if self.kind == "reactive":
            kwargs = {}
            if "patience" in params:
                kwargs["scale_in_patience"] = int(params["patience"])
            if "max_machines" in params:
                kwargs["max_machines"] = int(params["max_machines"])
            if "min_machines" in params:
                kwargs["min_machines"] = int(params["min_machines"])
            if "threshold" in params:
                kwargs["scale_out_threshold"] = float(params["threshold"])
            if "headroom" in params:
                kwargs["headroom"] = float(params["headroom"])
            if "rate" in params:
                kwargs["rate_multiplier"] = float(params["rate"])
            return ReactiveStrategy(config, **kwargs)
        # p-store / predictive:<name> — the same predictive controller;
        # the caller supplies the fitted predictor (built via
        # `predictor_name` and the registry for predictive specs).
        if predictor is None:
            raise StrategySpecError(
                f"{self.kind} strategy needs a fitted predictor (pass one "
                "to StrategySpec.build)"
            )
        kwargs = {}
        if "horizon" in params:
            kwargs["horizon_intervals"] = int(params["horizon"])
        if "emergency_rate" in params:
            kwargs["emergency_rate_multiplier"] = float(params["emergency_rate"])
        default_name = "p-store"
        if self.kind == "predictive":
            default_name = f"p-store[{self.predictor_name}]"
        return PStoreStrategy(
            config,
            predictor,
            name=str(params.get("name", default_name)),
            injector=injector,
            telemetry=telemetry,
            **kwargs,
        )


class ProvisioningStrategy(abc.ABC):
    """Base class for allocation strategies (Figs. 9, 12, 13)."""

    #: Short name used in reports ("static-10", "reactive", "p-store").
    name: str = "strategy"

    def reset(self, initial_machines: int) -> None:
        """Called once before a simulation run starts."""
        if initial_machines < 1:
            raise SimulationError("initial_machines must be >= 1")

    @abc.abstractmethod
    def decide(
        self,
        slot: int,
        history_tps: Sequence[float],
        current_machines: int,
    ) -> ScaleDecision:
        """Choose an action for planner interval ``slot``.

        ``history_tps`` holds the measured aggregate load (txn/s) for
        every interval up to and including the current one.
        """

    def notify_move_started(self, target_machines: int) -> None:
        """Hook: a reconfiguration the strategy requested has begun."""

    def notify_move_finished(self, machines: int) -> None:
        """Hook: the in-flight reconfiguration has completed."""
