"""Provisioning-strategy interface shared by all simulators.

A strategy is consulted once per planning interval, *only while no
reconfiguration is in flight* (both P-Store's controller and the reactive
baseline wait for the current migration to finish before planning the
next, Sec. 6).  It sees the measured load history at planner-interval
granularity and the current cluster size and answers with a
:class:`ScaleDecision`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Sequence

from ..errors import SimulationError


@dataclass(frozen=True)
class ScaleDecision:
    """What a strategy wants done right now.

    ``target_machines`` of None means "do nothing".  ``rate_multiplier``
    scales the migration rate (the paper's emergency R x 8 mode);
    ``emergency`` tags reactive fallbacks for reporting.
    """

    target_machines: Optional[int] = None
    rate_multiplier: float = 1.0
    emergency: bool = False
    reason: str = ""

    @property
    def acts(self) -> bool:
        return self.target_machines is not None


#: The "do nothing" decision.
NO_ACTION = ScaleDecision()


class ProvisioningStrategy(abc.ABC):
    """Base class for allocation strategies (Figs. 9, 12, 13)."""

    #: Short name used in reports ("static-10", "reactive", "p-store").
    name: str = "strategy"

    def reset(self, initial_machines: int) -> None:
        """Called once before a simulation run starts."""
        if initial_machines < 1:
            raise SimulationError("initial_machines must be >= 1")

    @abc.abstractmethod
    def decide(
        self,
        slot: int,
        history_tps: Sequence[float],
        current_machines: int,
    ) -> ScaleDecision:
        """Choose an action for planner interval ``slot``.

        ``history_tps`` holds the measured aggregate load (txn/s) for
        every interval up to and including the current one.
        """

    def notify_move_started(self, target_machines: int) -> None:
        """Hook: a reconfiguration the strategy requested has begun."""

    def notify_move_finished(self, machines: int) -> None:
        """Hook: the in-flight reconfiguration has completed."""
