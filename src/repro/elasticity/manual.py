"""Manual provisioning: operator-scheduled reconfigurations.

The paper's composite vision (Sec. 1) includes *manual provisioning* for
rare but expected events ("special promotions for B2W").  The strategy
executes a fixed list of (slot, target machines) actions.  It also
doubles as the driver for controlled migration experiments such as the
chunk-size study of Figure 8, where a single move must start at a known
time with a known rate.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..errors import SimulationError
from .base import NO_ACTION, ProvisioningStrategy, ScaleDecision


class ManualStrategy(ProvisioningStrategy):
    """Replay a fixed scaling timetable.

    Parameters
    ----------
    actions:
        iterable of ``(slot, target_machines)`` or
        ``(slot, target_machines, rate_multiplier)`` tuples.  Each fires
        at the first consulted slot >= its scheduled slot (strategies are
        not consulted while a migration is in flight).
    """

    def __init__(self, actions: Sequence[Tuple]):
        parsed = []
        for action in actions:
            if len(action) == 2:
                slot, target = action
                rate = 1.0
            elif len(action) == 3:
                slot, target, rate = action
            else:
                raise SimulationError(
                    "actions must be (slot, target[, rate_multiplier])"
                )
            if slot < 0 or target < 1 or rate <= 0:
                raise SimulationError(f"invalid manual action {action!r}")
            parsed.append((int(slot), int(target), float(rate)))
        self._actions = sorted(parsed)
        self._next = 0
        self.name = "manual"

    def reset(self, initial_machines: int) -> None:
        super().reset(initial_machines)
        self._next = 0

    def decide(
        self,
        slot: int,
        history_tps: Sequence[float],
        current_machines: int,
    ) -> ScaleDecision:
        while self._next < len(self._actions) and self._actions[self._next][0] <= slot:
            due_slot, target, rate = self._actions[self._next]
            self._next += 1
            if target != current_machines:
                return ScaleDecision(
                    target_machines=target,
                    rate_multiplier=rate,
                    reason=f"manual action scheduled at slot {due_slot}",
                )
        return NO_ACTION
