"""Composite provisioning: predictive + manual (+ implicit reactive).

Section 1 of the paper envisions "a composite strategy for elastic
provisioning ... (i) predictive provisioning ... (ii) reactive
provisioning to react in real time to unpredictable load spikes; and
(iii) manual provisioning for rare one-off, but expected, load spikes
(e.g. special promotions for B2W)".

P-Store's controller already embeds (i) and (ii) — the reactive fallback
fires whenever the planner is infeasible.  :class:`CompositeStrategy`
adds (iii): an operator calendar of minimum cluster sizes (e.g. "hold at
least 8 machines through the promotion window") that overrides the
predictive decision whenever the prediction would dip below it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..errors import SimulationError
from .base import NO_ACTION, ProvisioningStrategy, ScaleDecision


@dataclass(frozen=True)
class ManualReservation:
    """An operator-declared minimum cluster size over a slot window."""

    start_slot: int
    end_slot: int
    min_machines: int
    label: str = "reservation"

    def __post_init__(self) -> None:
        if self.start_slot < 0 or self.end_slot <= self.start_slot:
            raise SimulationError(
                f"invalid reservation window [{self.start_slot}, {self.end_slot})"
            )
        if self.min_machines < 1:
            raise SimulationError("min_machines must be >= 1")

    def active_at(self, slot: int) -> bool:
        return self.start_slot <= slot < self.end_slot


class CompositeStrategy(ProvisioningStrategy):
    """A base strategy constrained by manual reservations.

    Parameters
    ----------
    base:
        the underlying strategy (normally a
        :class:`~repro.elasticity.predictive.PStoreStrategy`).
    reservations:
        operator calendar; overlapping reservations compose by maximum.
    lead_slots:
        how many slots *before* a reservation window the scale-out is
        initiated, so migration completes before the event begins.
    """

    def __init__(
        self,
        base: ProvisioningStrategy,
        reservations: Sequence[ManualReservation],
        lead_slots: int = 6,
    ):
        if lead_slots < 0:
            raise SimulationError("lead_slots must be >= 0")
        self.base = base
        self.reservations: List[ManualReservation] = sorted(
            reservations, key=lambda r: r.start_slot
        )
        self.lead_slots = lead_slots
        self.name = f"{base.name}+manual"

    def reset(self, initial_machines: int) -> None:
        super().reset(initial_machines)
        self.base.reset(initial_machines)

    def _floor_at(self, slot: int) -> int:
        """Minimum machines demanded by the calendar at ``slot``
        (looking ``lead_slots`` ahead so moves start early)."""
        floor = 0
        for reservation in self.reservations:
            if reservation.start_slot - self.lead_slots <= slot < reservation.end_slot:
                floor = max(floor, reservation.min_machines)
        return floor

    def decide(
        self,
        slot: int,
        history_tps: Sequence[float],
        current_machines: int,
    ) -> ScaleDecision:
        decision = self.base.decide(slot, history_tps, current_machines)
        floor = self._floor_at(slot)
        target = decision.target_machines

        if floor > current_machines and (target is None or target < floor):
            return ScaleDecision(
                target_machines=floor,
                rate_multiplier=decision.rate_multiplier,
                reason=f"manual reservation requires >= {floor} machines",
            )
        if target is not None and target < max(floor, 1):
            # The base wants to scale below the reserved floor: clamp, or
            # suppress entirely if we are already at the floor.
            if current_machines == floor:
                return NO_ACTION
            return ScaleDecision(
                target_machines=floor,
                rate_multiplier=decision.rate_multiplier,
                reason=f"scale-in clamped to reserved floor of {floor}",
            )
        return decision

    def notify_move_started(self, target_machines: int) -> None:
        self.base.notify_move_started(target_machines)

    def notify_move_finished(self, machines: int) -> None:
        self.base.notify_move_finished(machines)
