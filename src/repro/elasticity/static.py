"""Static allocation: a fixed number of machines, never reconfigures.

The paper evaluates static allocation at 10 machines (peak-provisioned,
Fig. 9a) and 4 machines (trough-provisioned, Fig. 9b).  Its weakness is
inflexibility: 10 machines waste half the fleet at night and still buckle
under Black Friday, while 4 machines violate tail-latency SLAs daily.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import SimulationError
from .base import NO_ACTION, ProvisioningStrategy, ScaleDecision


class StaticStrategy(ProvisioningStrategy):
    """Always hold ``machines`` servers."""

    def __init__(self, machines: int):
        if machines < 1:
            raise SimulationError("machines must be >= 1")
        self.machines = machines
        self.name = f"static-{machines}"

    def reset(self, initial_machines: int) -> None:
        super().reset(initial_machines)
        if initial_machines != self.machines:
            raise SimulationError(
                f"static strategy for {self.machines} machines started "
                f"with {initial_machines}"
            )

    def decide(
        self,
        slot: int,
        history_tps: Sequence[float],
        current_machines: int,
    ) -> ScaleDecision:
        return NO_ACTION
