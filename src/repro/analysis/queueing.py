"""Closed-form M/M/1 helpers behind the parameter discovery of Sec. 4.1.

The paper discovers ``Q`` and ``Q-hat`` empirically (Fig. 7): drive one
server until the latency constraint breaks, then take 80% / 65% of the
saturation rate.  Because our execution engine *is* an M/M/1 system per
partition, the same thresholds can be derived analytically — useful for
configuring the model for SLAs other than "99% under 500 ms", and as an
independent check on the simulator's calibration.

For an M/M/1 queue with service rate ``mu`` and arrival rate ``lam``,
the sojourn time is exponential with rate ``mu - lam``; its ``p``-th
percentile is ``-ln(1 - p) / (mu - lam)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import SimulationError


def sojourn_percentile(mu: float, lam: float, percentile: float) -> float:
    """The ``percentile``-th percentile of M/M/1 sojourn time (seconds)."""
    if mu <= 0:
        raise SimulationError("mu must be positive")
    if not 0 <= lam < mu:
        raise SimulationError(
            f"need 0 <= lambda < mu for a stable queue (lam={lam}, mu={mu})"
        )
    if not 0 < percentile < 100:
        raise SimulationError("percentile must be in (0, 100)")
    return -math.log(1.0 - percentile / 100.0) / (mu - lam)


def mean_sojourn(mu: float, lam: float) -> float:
    """Mean M/M/1 sojourn time, ``1 / (mu - lam)`` (seconds)."""
    return sojourn_percentile(mu, lam, 100.0 * (1.0 - math.exp(-1.0)))


def max_arrival_rate_for_sla(
    mu: float, sla_seconds: float, percentile: float = 99.0
) -> float:
    """Largest arrival rate whose sojourn percentile meets the SLA.

    Solving ``-ln(1-p)/(mu - lam) <= sla`` for ``lam``:
    ``lam <= mu + ln(1-p)/sla``.  Returns 0 if even an idle queue
    violates the SLA (service time alone too slow).
    """
    if sla_seconds <= 0:
        raise SimulationError("sla_seconds must be positive")
    if mu <= 0:
        raise SimulationError("mu must be positive")
    if not 0 < percentile < 100:
        raise SimulationError("percentile must be in (0, 100)")
    lam = mu + math.log(1.0 - percentile / 100.0) / sla_seconds
    return max(0.0, lam)


@dataclass(frozen=True)
class DerivedThresholds:
    """Analytically-derived counterparts of the paper's Q and Q-hat."""

    mu_partition: float
    partitions_per_node: int
    sla_seconds: float
    percentile: float
    #: Largest per-node rate meeting the SLA in steady state.
    sla_knee_tps: float
    #: Q-hat: the knee with the paper's slack factor applied.
    q_hat: float
    #: Q: the knee with the paper's target factor applied.
    q: float


def derive_thresholds(
    mu_partition: float,
    partitions_per_node: int,
    sla_seconds: float = 0.5,
    percentile: float = 99.0,
    q_hat_fraction: float = 0.80,
    q_fraction: float = 0.65,
) -> DerivedThresholds:
    """Derive per-node Q and Q-hat for an arbitrary latency SLA.

    The paper anchors its fractions to the *saturation* rate; here the
    anchor is the SLA knee — the per-node rate at which the steady-state
    latency percentile first violates the SLA — scaled up to the node's
    ``P`` identical partitions.
    """
    if partitions_per_node < 1:
        raise SimulationError("partitions_per_node must be >= 1")
    if not 0 < q_fraction <= q_hat_fraction <= 1:
        raise SimulationError("need 0 < q_fraction <= q_hat_fraction <= 1")
    per_partition = max_arrival_rate_for_sla(
        mu_partition, sla_seconds, percentile
    )
    knee = per_partition * partitions_per_node
    return DerivedThresholds(
        mu_partition=mu_partition,
        partitions_per_node=partitions_per_node,
        sla_seconds=sla_seconds,
        percentile=percentile,
        sla_knee_tps=knee,
        q_hat=q_hat_fraction * knee,
        q=q_fraction * knee,
    )


def utilization_for_sla(
    mu: float, sla_seconds: float, percentile: float = 99.0
) -> float:
    """The utilization ``rho`` at which the SLA is exactly met."""
    lam = max_arrival_rate_for_sla(mu, sla_seconds, percentile)
    return lam / mu
