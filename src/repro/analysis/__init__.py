"""Result analysis: SLA accounting, capacity-cost curves, tail CDFs,
and plain-text report rendering used by the bench harness."""

from .capacity import (
    CapacityCostCurve,
    SweepPoint,
    normalize_curves,
    pareto_frontier,
    sweep_strategy,
)
from .cdf import (
    EmpiricalCdf,
    cdf_comparison,
    dominates,
    empirical_cdf,
    top_tail_cdf,
)
from .queueing import (
    DerivedThresholds,
    derive_thresholds,
    max_arrival_rate_for_sla,
    mean_sojourn,
    sojourn_percentile,
    utilization_for_sla,
)
from .report import (
    ascii_table,
    paper_vs_measured,
    series_block,
    sparkline,
)
from .sla import (
    improvement_over,
    render_sla_table,
    total_violations,
    violation_counts,
)

__all__ = [
    "CapacityCostCurve",
    "DerivedThresholds",
    "derive_thresholds",
    "max_arrival_rate_for_sla",
    "mean_sojourn",
    "sojourn_percentile",
    "utilization_for_sla",
    "EmpiricalCdf",
    "SweepPoint",
    "ascii_table",
    "cdf_comparison",
    "dominates",
    "empirical_cdf",
    "improvement_over",
    "normalize_curves",
    "paper_vs_measured",
    "pareto_frontier",
    "render_sla_table",
    "series_block",
    "sparkline",
    "sweep_strategy",
    "top_tail_cdf",
    "total_violations",
    "violation_counts",
]
