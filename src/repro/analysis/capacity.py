"""Capacity-cost analysis for the 4.5-month sweeps (Figure 12).

Each provisioning strategy is simulated once per value of the target
per-server rate ``Q``; the resulting (normalised cost, % time with
insufficient capacity) pairs trace the strategy's capacity-cost curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..config import PStoreConfig
from ..elasticity.base import ProvisioningStrategy
from ..errors import SimulationError
from ..sim.capacity_sim import run_capacity_simulation
from ..workload.trace import LoadTrace

#: A factory building a strategy for a given config (one per swept Q).
StrategyFactory = Callable[[PStoreConfig], ProvisioningStrategy]


@dataclass(frozen=True)
class SweepPoint:
    """One simulated (strategy, Q) combination."""

    strategy: str
    q_fraction: float
    q: float
    cost_machine_slots: float
    average_machines: float
    pct_time_insufficient: float


@dataclass
class CapacityCostCurve:
    """All sweep points of one strategy, ordered by cost."""

    strategy: str
    points: List[SweepPoint]

    def sorted_by_cost(self) -> List[SweepPoint]:
        return sorted(self.points, key=lambda p: p.cost_machine_slots)

    def best_under(self, max_insufficient_pct: float) -> Optional[SweepPoint]:
        """Cheapest point meeting a capacity-violation budget."""
        eligible = [
            p
            for p in self.points
            if p.pct_time_insufficient <= max_insufficient_pct
        ]
        if not eligible:
            return None
        return min(eligible, key=lambda p: p.cost_machine_slots)


def sweep_strategy(
    trace: LoadTrace,
    base_config: PStoreConfig,
    strategy_factory: StrategyFactory,
    q_fractions: Sequence[float],
    saturation_tps: float,
    initial_machines: int,
    history_seed: Sequence[float] = (),
    name: Optional[str] = None,
) -> CapacityCostCurve:
    """Run one strategy across a sweep of Q values.

    ``q_fractions`` are fractions of ``saturation_tps`` (the paper sets
    Q to 65% of saturation by default and sweeps around it).
    """
    if not q_fractions:
        raise SimulationError("q_fractions must be non-empty")
    points: List[SweepPoint] = []
    strategy_name = name
    for fraction in q_fractions:
        config = base_config.with_q(fraction * saturation_tps)
        strategy = strategy_factory(config)
        if strategy_name is None:
            strategy_name = strategy.name
        result = run_capacity_simulation(
            trace,
            strategy,
            config,
            initial_machines=initial_machines,
            history_seed=list(history_seed),
        )
        points.append(
            SweepPoint(
                strategy=strategy.name,
                q_fraction=fraction,
                q=config.q,
                cost_machine_slots=result.cost_machine_slots,
                average_machines=result.average_machines,
                pct_time_insufficient=result.pct_time_insufficient,
            )
        )
    return CapacityCostCurve(strategy=strategy_name or "strategy", points=points)


def normalize_curves(
    curves: Sequence[CapacityCostCurve], baseline_cost: float
) -> Dict[str, List[Dict[str, float]]]:
    """Express every point's cost relative to a baseline (Fig. 12's x=1)."""
    if baseline_cost <= 0:
        raise SimulationError("baseline cost must be positive")
    out: Dict[str, List[Dict[str, float]]] = {}
    for curve in curves:
        out[curve.strategy] = [
            {
                "q_fraction": p.q_fraction,
                "normalized_cost": p.cost_machine_slots / baseline_cost,
                "pct_time_insufficient": p.pct_time_insufficient,
            }
            for p in curve.sorted_by_cost()
        ]
    return out


def pareto_frontier(points: Sequence[SweepPoint]) -> List[SweepPoint]:
    """Points not dominated in both cost and capacity violations."""
    ordered = sorted(points, key=lambda p: (p.cost_machine_slots, p.pct_time_insufficient))
    frontier: List[SweepPoint] = []
    best_violation = np.inf
    for point in ordered:
        if point.pct_time_insufficient < best_violation - 1e-12:
            frontier.append(point)
            best_violation = point.pct_time_insufficient
    return frontier
