"""``pstore explain``: causal post-mortems from a run's chronicle.

A run directory produced with ``--telemetry-out`` contains
``chronicle.jsonl`` — the flight recorder's records, each with a stable
ID and a ``parent`` link (:mod:`repro.telemetry.causal`).  This module
turns that file back into walkable causal chains and attributes every
SLA-violating interval to exactly one causal bucket
(:func:`repro.analysis.sla.attribute_violation`):

* ``fault`` — an injected fault was active during the interval;
* ``migration-overhead`` — a reconfiguration was moving data;
* ``under-forecast`` — measured load exceeded even the inflated forecast;
* ``planner-headroom`` — the forecast covered the load, but the chosen
  allocation still ran hot (within-interval spikes vs. the 15% buffer).

Merged sweep chronicles (``pstore sweep`` manifests) tag each row with
its grid cell; IDs are namespaced per cell on load so per-bundle
sequence counters cannot collide.

Timeline caveat: controller-side records (``forecast.snapshot``,
``plan.decision``) are stamped on the *history* timeline, which includes
any seeded training window, while simulator-side records use run-relative
seconds.  ``--window`` therefore filters on the anchor records
(violations and reconfigurations, which share the simulator timeline)
and chains are always rendered whole.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import TelemetryError
from .report import ascii_table
from .sla import CAUSE_BUCKETS, attribute_violation

#: Record kinds treated as violation anchors by ``explain``.
_VIOLATION_KINDS = ("sla.violation", "capacity.insufficient")


def load_chronicle(run_dir) -> List[dict]:
    """Read and validate ``chronicle.jsonl`` from a run directory.

    Accepts both single-run chronicles and merged sweep chronicles; in
    the latter, rows carry a ``cell`` label and their IDs and parent
    links are namespaced as ``<cell>/<id>`` so chains stay unambiguous.
    """
    run_dir = pathlib.Path(run_dir)
    path = run_dir / "chronicle.jsonl"
    if run_dir.is_file():
        path = run_dir
    if not path.exists():
        raise TelemetryError(
            f"no chronicle.jsonl in {run_dir} — re-run with --telemetry-out "
            "(or point at a sweep manifest directory)"
        )
    rows: List[dict] = []
    with path.open() as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise TelemetryError(
                    f"{path}:{line_no}: not valid JSON ({exc})"
                ) from None
    if not rows or "schema" not in rows[0]:
        raise TelemetryError(
            f"{path} is missing its schema header row"
        )
    schema = str(rows[0]["schema"])
    if not schema.startswith("pstore.chronicle/"):
        raise TelemetryError(
            f"{path} has schema {schema!r}, expected pstore.chronicle/*"
        )
    records = []
    for row in rows[1:]:
        cell = row.get("cell")
        if cell is not None:
            row = dict(row)
            if row.get("id"):
                row["id"] = f"{cell}/{row['id']}"
            if row.get("parent"):
                row["parent"] = f"{cell}/{row['parent']}"
        records.append(row)
    return records


def build_index(
    records: List[dict],
) -> Tuple[Dict[str, dict], Dict[str, List[dict]]]:
    """``(by_id, children)`` lookup tables over chronicle records."""
    by_id: Dict[str, dict] = {}
    children: Dict[str, List[dict]] = {}
    for record in records:
        rid = record.get("id")
        if rid:
            by_id[rid] = record
        parent = record.get("parent")
        if parent:
            children.setdefault(parent, []).append(record)
    return by_id, children


def causal_chain(record: dict, by_id: Dict[str, dict]) -> List[dict]:
    """The parent chain of ``record``, root first (cycle-safe)."""
    chain: List[dict] = [record]
    seen = {record.get("id")}
    current = record
    while True:
        parent = current.get("parent")
        if not parent or parent in seen:
            break
        parent_record = by_id.get(parent)
        if parent_record is None:
            # A dangling parent (e.g. a window-trimmed merge): keep a
            # stub so the rendered chain shows the broken link honestly.
            chain.append({"id": parent, "kind": "(missing)"})
            break
        chain.append(parent_record)
        seen.add(parent)
        current = parent_record
    chain.reverse()
    return chain


@dataclass
class ExplainReport:
    """Everything ``pstore explain`` knows about one run."""

    run_dir: str
    records: List[dict]
    violations: List[dict] = field(default_factory=list)
    reconfigurations: List[dict] = field(default_factory=list)
    window: Optional[Tuple[float, float]] = None

    def __post_init__(self) -> None:
        self.by_id, self.children = build_index(self.records)

    @property
    def attribution(self) -> Dict[str, float]:
        """Violation-seconds per causal bucket (window-filtered)."""
        totals = {bucket: 0.0 for bucket in CAUSE_BUCKETS}
        for violation in self.violations:
            totals[attribute_violation(violation)] += float(
                violation.get("seconds", 1) or 0
            )
        return totals

    def chain(self, record: dict) -> List[dict]:
        return causal_chain(record, self.by_id)

    def to_dict(self) -> dict:
        """JSON-able summary (the ``pstore explain --json`` payload)."""
        return {
            "run_dir": self.run_dir,
            "window": list(self.window) if self.window else None,
            "n_records": len(self.records),
            "attribution": self.attribution,
            "violations": [
                {
                    "record": violation,
                    "cause": attribute_violation(violation),
                    "predictor": _violation_predictor(violation, self),
                    "chain": [r.get("id") for r in self.chain(violation)],
                }
                for violation in self.violations
            ],
            "reconfigurations": [
                {
                    "record": move,
                    "rounds": sum(
                        1
                        for child in self.children.get(move.get("id"), [])
                        if child.get("kind") == "migration.round"
                    ),
                    "outcome": self._move_outcome(move),
                }
                for move in self.reconfigurations
            ],
        }

    def _move_outcome(self, move: dict) -> Optional[dict]:
        for child in self.children.get(move.get("id"), []):
            if child.get("kind") in ("migration.complete",
                                     "migration.aborted"):
                return child
        return None


def _in_window(record: dict, window: Optional[Tuple[float, float]]) -> bool:
    if window is None:
        return True
    time = record.get("time")
    if time is None:
        return False
    return window[0] <= float(time) <= window[1]


def explain_run(
    run_dir, window: Optional[Tuple[float, float]] = None
) -> ExplainReport:
    """Load a run's chronicle and build its causal report."""
    if window is not None and window[0] > window[1]:
        raise TelemetryError(
            f"explain window start {window[0]} is after end {window[1]}"
        )
    records = load_chronicle(run_dir)
    violations = [
        r for r in records
        if r.get("kind") in _VIOLATION_KINDS and _in_window(r, window)
    ]
    reconfigurations = [
        r for r in records
        if r.get("kind") == "migration.start" and _in_window(r, window)
    ]
    return ExplainReport(
        run_dir=str(run_dir),
        records=records,
        violations=violations,
        reconfigurations=reconfigurations,
        window=window,
    )


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------


def _fmt_time(value) -> str:
    if value is None:
        return "t=?"
    return f"t={float(value):,.0f}s"


def _fmt_tps(value) -> str:
    return "?" if value is None else f"{float(value):,.0f}"


def _describe(record: dict) -> str:
    """One-line, kind-aware description of a chronicle record."""
    kind = record.get("kind", "?")
    time = _fmt_time(record.get("time"))
    if kind == "forecast.snapshot":
        return (
            f"{time} {record.get('predictor', 'predictor')} forecast: "
            f"next {_fmt_tps(record.get('predicted_next'))} tps "
            f"(inflated {_fmt_tps(record.get('inflated_next'))}, "
            f"peak {_fmt_tps(record.get('predicted_peak'))}) "
            f"from slot {record.get('origin_slot')}"
        )
    if kind == "forecast.accuracy":
        action = record.get("action", "?")
        if action == "recovered":
            return (
                f"{time} forecast accuracy recovered "
                f"({record.get('predictor', '?')} tau={record.get('tau')})"
            )
        value = record.get("value_pct")
        threshold = record.get("threshold_pct")
        detail = ""
        if value is not None and threshold is not None:
            detail = f" {float(value):.1f}% > {float(threshold):.1f}%"
        return (
            f"{time} forecast accuracy breach: "
            f"{record.get('metric', '?')}{detail} "
            f"({record.get('predictor', '?')} tau={record.get('tau')}, "
            f"{record.get('pairs')} pairs) -> {action}"
        )
    if kind == "plan.decision":
        target = record.get("target_machines")
        action = (
            f"-> {target} machines" if target is not None else "no action"
        )
        return (
            f"{time} plan [{record.get('decision_kind', '?')}] {action}: "
            f"{record.get('reason', '')}"
            + (" (EMERGENCY)" if record.get("emergency") else "")
        )
    if kind == "migration.start":
        return (
            f"{time} reconfigure {record.get('before')} -> "
            f"{record.get('after')} machines "
            f"at {_fmt_tps(record.get('rate_kbps'))} kB/s"
            + (" (EMERGENCY)" if record.get("emergency") else "")
        )
    if kind == "migration.round":
        return (
            f"{time} round {record.get('round')} committed "
            f"({record.get('transfers')} transfers)"
        )
    if kind == "migration.complete":
        seconds = record.get("seconds")
        dur = f" in {float(seconds):,.0f}s" if seconds is not None else ""
        return (
            f"{time} move complete: {record.get('before')} -> "
            f"{record.get('after')} machines{dur}"
        )
    if kind == "migration.aborted":
        return f"{time} move ABORTED ({record.get('reason', '?')})"
    if kind == "node.add":
        return f"{time} nodes added: {record.get('nodes')}"
    if kind == "node.remove":
        nodes = record.get("nodes", record.get("node"))
        return f"{time} nodes removed: {nodes} ({record.get('reason', '?')})"
    if kind == "fault.injected":
        return (
            f"{time} fault injected: {record.get('fault_kind', '?')}"
            f" [{record.get('label', '')}]"
            + (
                f" on node {record.get('node')}"
                if record.get("node") is not None
                else ""
            )
        )
    if kind in ("fault.detected", "fault.retry", "fault.recovered"):
        step = kind.split(".", 1)[1]
        return f"{time} fault {step}: {record.get('fault_kind', '?')}"
    if kind == "sla.violation":
        return (
            f"{time} slot {record.get('slot')}: "
            f"{record.get('seconds')}s over SLA "
            f"(worst p99 {record.get('p99_max_ms', 0):,.0f} ms, "
            f"measured {_fmt_tps(record.get('measured_tps'))} tps on "
            f"{record.get('machines')} machines)"
        )
    if kind == "capacity.insufficient":
        return (
            f"{time} slot {record.get('slot')}: peak "
            f"{_fmt_tps(record.get('peak_tps'))} tps exceeded effective "
            f"capacity {_fmt_tps(record.get('eff_cap'))} tps "
            f"({record.get('machines')} machines"
            + (", migrating)" if record.get("migrating") else ")")
        )
    return f"{time} {kind}"


def _violation_predictor(
    violation: dict, report: Optional[ExplainReport] = None
) -> Optional[str]:
    """The forecast model behind a violating interval, if recorded.

    Capacity-sim violations carry the predictor's registry name
    directly; otherwise the causal chain is walked back to the nearest
    ``forecast.snapshot`` record, which has always named its model.
    """
    name = violation.get("predictor")
    if name:
        return str(name)
    if report is not None:
        for record in reversed(report.chain(violation)):
            if (
                record.get("kind") == "forecast.snapshot"
                and record.get("predictor")
            ):
                return str(record["predictor"])
    return None


def _cause_detail(
    violation: dict, cause: str, report: Optional[ExplainReport] = None
) -> str:
    if cause == "under-forecast":
        measured = violation.get("measured_tps", violation.get("peak_tps"))
        model = _violation_predictor(violation, report)
        forecast = f"inflated {model} forecast" if model else "inflated forecast"
        return (
            f"measured {_fmt_tps(measured)} tps > {forecast} "
            f"{_fmt_tps(violation.get('inflated_tps'))} tps"
        )
    if cause == "migration-overhead":
        seconds = violation.get("migrating_seconds")
        if seconds:
            return f"{seconds}s of the interval spent migrating"
        return "interval spent migrating"
    if cause == "fault":
        seconds = violation.get("fault_seconds")
        if seconds:
            return f"{seconds}s of the interval under fault activity"
        return "fault active during the interval"
    measured = violation.get("measured_tps", violation.get("peak_tps"))
    if violation.get("inflated_tps") is None:
        return (
            f"no forecast context — the allocation simply ran hot at "
            f"{_fmt_tps(measured)} tps"
        )
    return (
        f"load {_fmt_tps(measured)} tps was within the inflated forecast "
        f"{_fmt_tps(violation.get('inflated_tps'))} tps"
    )


def render_explain(report: ExplainReport) -> str:
    """Plain-text causal post-mortem of one run."""
    lines: List[str] = []
    title = f"pstore explain — {report.run_dir}"
    lines.append(title)
    lines.append("=" * len(title))
    scope = f"{len(report.records)} chronicle records"
    if report.window is not None:
        scope += (
            f", window {report.window[0]:,.0f}s..{report.window[1]:,.0f}s"
        )
    lines.append(scope)
    lines.append("")

    attribution = report.attribution
    total_seconds = sum(attribution.values())
    counts = {bucket: 0 for bucket in CAUSE_BUCKETS}
    for violation in report.violations:
        counts[attribute_violation(violation)] += 1
    if report.violations:
        lines.append(
            ascii_table(
                ["cause", "violation-seconds", "intervals"],
                [
                    (bucket, f"{attribution[bucket]:,.0f}", counts[bucket])
                    for bucket in CAUSE_BUCKETS
                ],
                title=(
                    f"attribution of {len(report.violations)} violating "
                    f"interval(s), {total_seconds:,.0f} violation-seconds"
                ),
            )
        )
    else:
        lines.append("no SLA-violating intervals in scope — clean run")
    lines.append("")

    for violation in report.violations:
        cause = attribute_violation(violation)
        lines.append(
            f"[{cause}] {violation.get('id', '?')} — "
            f"{_cause_detail(violation, cause, report)}"
        )
        for depth, record in enumerate(report.chain(violation)):
            indent = "  " * depth
            marker = "└─ " if depth else ""
            lines.append(
                f"  {indent}{marker}{record.get('id', '?')} "
                f"{record.get('kind', '?')}: {_describe(record)}"
            )
        lines.append("")

    if report.reconfigurations:
        lines.append(f"reconfigurations ({len(report.reconfigurations)}):")
        for move in report.reconfigurations:
            rounds = sum(
                1
                for child in report.children.get(move.get("id"), [])
                if child.get("kind") == "migration.round"
            )
            outcome = report._move_outcome(move)
            if outcome is None:
                status = "in flight at end of run"
            elif outcome.get("kind") == "migration.aborted":
                status = f"aborted ({outcome.get('reason', '?')})"
            else:
                seconds = outcome.get("seconds")
                status = (
                    f"completed in {float(seconds):,.0f}s"
                    if seconds is not None
                    else "completed"
                )
            detail = f", {rounds} rounds committed" if rounds else ""
            lines.append(
                f"  {move.get('id', '?')}: {_describe(move)} — "
                f"{status}{detail}"
            )
            chain = report.chain(move)
            if len(chain) > 1:
                origin = " -> ".join(
                    f"{r.get('id', '?')}" for r in chain[:-1]
                )
                lines.append(f"      caused by: {origin}")
        lines.append("")

    return "\n".join(lines).rstrip() + "\n"
