"""SLA-violation accounting (Table 2 of the paper).

"We define SLA violations as the total number of seconds during the
experiment in which the 50th, 95th, or 99th percentile latency exceeds
500 ms, since that is the maximum delay that is unnoticeable by users."
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..errors import SimulationError
from ..hstore.latency import PercentileSeries
from ..sim.metrics import SlaRow
from ..sim.simulator import SimulationResult
from .report import ascii_table


def violation_counts(
    series: PercentileSeries, threshold_ms: float = 500.0
) -> Dict[float, int]:
    """Seconds above the SLA for every tracked percentile."""
    return series.violation_summary(threshold_ms)


def total_violations(
    series: PercentileSeries, threshold_ms: float = 500.0
) -> int:
    """Sum across tracked percentiles (the paper's headline "72% fewer
    latency violations" compares these totals)."""
    return sum(violation_counts(series, threshold_ms).values())


def render_sla_table(rows: Sequence[SlaRow]) -> str:
    """Format Table 2."""
    return ascii_table(
        [
            "Elasticity Approach",
            "50th %ile",
            "95th %ile",
            "99th %ile",
            "Avg Machines",
        ],
        [
            (
                row.approach,
                row.violations_p50,
                row.violations_p95,
                row.violations_p99,
                round(row.average_machines, 2),
            )
            for row in rows
        ],
        title="SLA violations (seconds over 500 ms) and machine usage",
    )


def improvement_over(
    baseline: SimulationResult, improved: SimulationResult
) -> float:
    """Percentage reduction in total SLA violations of one run vs another."""
    base = sum(baseline.sla_violations().values())
    if base == 0:
        raise SimulationError("baseline run has no violations to improve on")
    new = sum(improved.sla_violations().values())
    return 100.0 * (base - new) / base
