"""SLA-violation accounting (Table 2 of the paper).

"We define SLA violations as the total number of seconds during the
experiment in which the 50th, 95th, or 99th percentile latency exceeds
500 ms, since that is the maximum delay that is unnoticeable by users."
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence

from ..errors import SimulationError
from ..hstore.latency import PercentileSeries
from ..sim.metrics import SlaRow
from ..sim.simulator import SimulationResult
from .report import ascii_table

#: Causal buckets ``pstore explain`` sorts violating intervals into.
#: Each violation is attributed to exactly one.
CAUSE_FAULT = "fault"
CAUSE_MIGRATION = "migration-overhead"
CAUSE_UNDER_FORECAST = "under-forecast"
CAUSE_HEADROOM = "planner-headroom"
CAUSE_BUCKETS = (
    CAUSE_FAULT,
    CAUSE_MIGRATION,
    CAUSE_UNDER_FORECAST,
    CAUSE_HEADROOM,
)


def attribute_violation(record: Mapping) -> str:
    """Attribute one chronicle ``sla.violation`` (or
    ``capacity.insufficient``) record to exactly one causal bucket.

    Precedence mirrors how directly each cause forces the violation: an
    active fault dominates (the cluster was degraded no matter what the
    planner did), then migration overhead (data movement stole capacity),
    then an under-forecast (the measured load exceeded even the inflated
    prediction that sized the cluster), and otherwise planner headroom —
    the forecast covered the load but the chosen allocation still ran
    hot (within-interval spikes, the paper's 15% buffer being too thin).
    """
    if record.get("fault_seconds"):
        return CAUSE_FAULT
    if record.get("migrating_seconds") or record.get("migrating"):
        return CAUSE_MIGRATION
    inflated = record.get("inflated_tps")
    measured = record.get("measured_tps")
    if measured is None:
        measured = record.get("peak_tps")
    if inflated is not None and measured is not None:
        if float(measured) > float(inflated):
            return CAUSE_UNDER_FORECAST
    return CAUSE_HEADROOM


def attribution_totals(records: Iterable[Mapping]) -> Dict[str, float]:
    """Violation-seconds per causal bucket over chronicle records
    (records without a ``seconds`` field count as one interval each)."""
    totals: Dict[str, float] = {bucket: 0.0 for bucket in CAUSE_BUCKETS}
    for record in records:
        totals[attribute_violation(record)] += float(
            record.get("seconds", 1) or 0
        )
    return totals


def violation_counts(
    series: PercentileSeries, threshold_ms: float = 500.0
) -> Dict[float, int]:
    """Seconds above the SLA for every tracked percentile."""
    return series.violation_summary(threshold_ms)


def total_violations(
    series: PercentileSeries, threshold_ms: float = 500.0
) -> int:
    """Sum across tracked percentiles (the paper's headline "72% fewer
    latency violations" compares these totals)."""
    return sum(violation_counts(series, threshold_ms).values())


def render_sla_table(rows: Sequence[SlaRow]) -> str:
    """Format Table 2."""
    return ascii_table(
        [
            "Elasticity Approach",
            "50th %ile",
            "95th %ile",
            "99th %ile",
            "Avg Machines",
        ],
        [
            (
                row.approach,
                row.violations_p50,
                row.violations_p95,
                row.violations_p99,
                round(row.average_machines, 2),
            )
            for row in rows
        ],
        title="SLA violations (seconds over 500 ms) and machine usage",
    )


def improvement_over(
    baseline: SimulationResult, improved: SimulationResult
) -> float:
    """Percentage reduction in total SLA violations of one run vs another."""
    base = sum(baseline.sla_violations().values())
    if base == 0:
        raise SimulationError("baseline run has no violations to improve on")
    new = sum(improved.sla_violations().values())
    return 100.0 * (base - new) / base
