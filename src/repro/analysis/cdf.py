"""Empirical CDFs of tail latencies (Figure 10).

Figure 10 compares elasticity approaches "in terms of CDFs of the top 1%
of 50th, 95th and 99th percentile latencies measured each second".
Curves that are higher and further left are better.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import SimulationError
from ..hstore.latency import PercentileSeries


@dataclass(frozen=True)
class EmpiricalCdf:
    """Sorted sample values and their cumulative probabilities."""

    values: np.ndarray
    cumulative: np.ndarray

    def probability_at(self, x: float) -> float:
        """P(value <= x)."""
        return float(np.searchsorted(self.values, x, side="right")) / self.values.size

    def quantile(self, p: float) -> float:
        if not 0 <= p <= 1:
            raise SimulationError("p must be in [0, 1]")
        return float(np.quantile(self.values, p))


def empirical_cdf(samples: Sequence[float]) -> EmpiricalCdf:
    values = np.sort(np.asarray(samples, dtype=float))
    if values.size == 0:
        raise SimulationError("cannot build a CDF from no samples")
    cumulative = np.arange(1, values.size + 1) / values.size
    return EmpiricalCdf(values=values, cumulative=cumulative)


def top_tail_cdf(
    series: PercentileSeries, q: float, fraction: float = 0.01
) -> EmpiricalCdf:
    """CDF of the worst ``fraction`` of a per-second percentile series."""
    return empirical_cdf(series.top_fraction(q, fraction))


def cdf_comparison(
    runs: Dict[str, PercentileSeries],
    percentiles: Sequence[float] = (50.0, 95.0, 99.0),
    fraction: float = 0.01,
    probe_ms: Sequence[float] = (200.0, 400.0, 600.0),
) -> Dict[float, List[Tuple[str, Dict[float, float]]]]:
    """Tabulate P(latency <= probe) per run and percentile.

    Returns, for each tracked percentile, a list of
    ``(run name, {probe_ms: cumulative probability})`` — the rows the
    Figure 10 bench prints.
    """
    out: Dict[float, List[Tuple[str, Dict[float, float]]]] = {}
    for q in percentiles:
        rows: List[Tuple[str, Dict[float, float]]] = []
        for name, series in runs.items():
            cdf = top_tail_cdf(series, q, fraction)
            rows.append(
                (name, {probe: cdf.probability_at(probe) for probe in probe_ms})
            )
        out[q] = rows
    return out


def dominates(better: EmpiricalCdf, worse: EmpiricalCdf, probes: int = 50) -> bool:
    """True if ``better`` is (weakly) left of ``worse`` at every probe.

    Used by tests to assert orderings like "P-Store's tail CDF dominates
    the reactive baseline's".
    """
    lo = min(better.values[0], worse.values[0])
    hi = max(better.values[-1], worse.values[-1])
    grid = np.linspace(lo, hi, probes)
    return all(
        better.probability_at(x) >= worse.probability_at(x) - 1e-12 for x in grid
    )
