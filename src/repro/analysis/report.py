"""Plain-text rendering of tables and series for the bench harness.

Every bench prints the rows/series its paper counterpart reports; these
helpers keep that output consistent: fixed-width ASCII tables, unicode
sparklines for load/capacity curves, and a small "paper vs measured"
comparison block used by EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import SimulationError

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width table with a header rule."""
    if not headers:
        raise SimulationError("table needs headers")
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise SimulationError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def sparkline(values: Sequence[float], width: int = 72) -> str:
    """Down-sample a series into a one-line unicode sparkline."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise SimulationError("cannot sparkline an empty series")
    if arr.size > width:
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        arr = np.array([arr[a:b].mean() for a, b in zip(edges, edges[1:]) if b > a])
    lo, hi = float(arr.min()), float(arr.max())
    if hi - lo < 1e-12:
        return _SPARK_LEVELS[0] * arr.size
    scaled = (arr - lo) / (hi - lo) * (len(_SPARK_LEVELS) - 1)
    return "".join(_SPARK_LEVELS[int(round(s))] for s in scaled)


def series_block(
    label: str, values: Sequence[float], unit: str = "", width: int = 72
) -> str:
    """A labelled sparkline with min/mean/max annotations."""
    arr = np.asarray(values, dtype=float)
    return (
        f"{label:<28} {sparkline(arr, width)}\n"
        f"{'':<28} min={arr.min():,.0f}{unit} "
        f"mean={arr.mean():,.0f}{unit} max={arr.max():,.0f}{unit}"
    )


def paper_vs_measured(
    rows: Sequence[Dict[str, object]],
    title: str = "paper vs measured",
) -> str:
    """Render the standard comparison block used by every bench.

    Each row needs keys ``metric``, ``paper`` and ``measured``; an
    optional ``note`` explains scale differences.
    """
    out_rows = []
    for row in rows:
        out_rows.append(
            [
                row["metric"],
                row["paper"],
                row["measured"],
                row.get("note", ""),
            ]
        )
    return ascii_table(
        ["metric", "paper", "measured", "note"], out_rows, title=title
    )
