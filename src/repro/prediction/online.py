"""Online (active-learning) prediction, Section 6 of the paper.

"P-Store has an active learning system.  If training data exists,
parameters a_k and b_j can be learned offline.  Otherwise, P-Store
constantly monitors the system over time and can actively learn the
parameter values. ... we found that updating these parameters once per
week is usually sufficient."

:class:`OnlinePredictor` wraps any batch predictor with that behaviour:
it accumulates observations, fits as soon as enough history exists, and
refits on a fixed cadence (weekly by default).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..errors import NotFittedError, PredictionError
from ..telemetry import get_telemetry
from .base import Predictor, as_series


class OnlinePredictor(Predictor):
    """Continuously-learning wrapper around a batch predictor.

    Parameters
    ----------
    base:
        the underlying model (e.g. a fresh :class:`SparPredictor`).
    refit_every:
        refit cadence in observed slots (e.g. one week of slots).
    min_training:
        observations needed before the first fit; defaults to the base
        model's ``min_history`` plus one period-worth of targets when the
        base exposes it.
    max_history:
        optional cap on retained history (old slots are dropped), so
        long-running controllers don't grow without bound.
    """

    def __init__(
        self,
        base: Predictor,
        refit_every: int,
        min_training: Optional[int] = None,
        max_history: Optional[int] = None,
    ):
        super().__init__()
        if refit_every < 1:
            raise PredictionError("refit_every must be >= 1")
        if max_history is not None and max_history < 1:
            raise PredictionError("max_history must be >= 1 when set")
        self.base = base
        self.refit_every = refit_every
        if min_training is None:
            base_min = getattr(base, "min_history", 1)
            period = getattr(base, "period", 0)
            # At least two extra points past min_history: a bare AR(p)
            # least-squares fit needs p + 2 samples to be determined.
            min_training = base_min + max(period, 2)
        self.min_training = min_training
        self.max_history = max_history
        self._history: List[float] = []
        self._since_fit = 0
        self.fit_count = 0
        #: Exact series the base model was last fitted on.  Checkpoint
        #: restore refits on this snapshot (fits are deterministic), so a
        #: resumed controller carries the *same* model the crashed one
        #: had — not a fresher one fitted on the longer current history.
        self._fit_window: Optional[List[float]] = None

    # ------------------------------------------------------------------
    # Observation stream
    # ------------------------------------------------------------------

    def observe(self, value: float) -> None:
        """Feed one measured load slot; refits when the cadence is due."""
        if not np.isfinite(value) or value < 0:
            raise PredictionError(f"invalid load observation {value!r}")
        self._history.append(float(value))
        if self.max_history is not None and len(self._history) > self.max_history:
            del self._history[: len(self._history) - self.max_history]
        self._since_fit += 1
        due = (
            not self.base.is_fitted and len(self._history) >= self.min_training
        ) or (self.base.is_fitted and self._since_fit >= self.refit_every)
        if due and len(self._history) >= self.min_training:
            self.base.fit(self._history)
            self._fit_window = list(self._history)
            self._fitted = True
            self._since_fit = 0
            self.fit_count += 1
            tel = get_telemetry()
            if tel.enabled:
                tel.metrics.counter(
                    "predictor.refit", model=type(self.base).__name__
                ).inc()

    def observe_many(self, values: Sequence[float]) -> None:
        for value in values:
            self.observe(value)

    def refit_now(self) -> bool:
        """Force an immediate refit on the accumulated history.

        The error-triggered re-plan path (``repro.serve``) calls this when
        the accuracy tracker reports the model has gone stale, instead of
        waiting out the weekly cadence.  Returns ``True`` if a fit
        happened (enough history), ``False`` otherwise.
        """
        if len(self._history) < self.min_training:
            return False
        self.base.fit(self._history)
        self._fit_window = list(self._history)
        self._fitted = True
        self._since_fit = 0
        self.fit_count += 1
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.counter(
                "predictor.refit", model=type(self.base).__name__
            ).inc()
            tel.metrics.counter("predictor.refit_forced").inc()
        return True

    @property
    def history(self) -> np.ndarray:
        return np.asarray(self._history)

    @property
    def min_history(self) -> int:
        return getattr(self.base, "min_history", 1)

    @property
    def name(self) -> str:  # type: ignore[override]
        """The wrapped model's registry slug: accuracy windows and
        chronicle records should be keyed by the actual forecaster, not
        by the learning wrapper."""
        return getattr(self.base, "name", "") or type(self.base).__name__

    @property
    def tau_max(self) -> Optional[int]:
        return getattr(self.base, "tau_max", None)

    # ------------------------------------------------------------------
    # Predictor interface
    # ------------------------------------------------------------------

    def fit(self, series: Sequence[float]) -> "OnlinePredictor":
        """Offline bootstrap: seed the history and fit immediately."""
        arr = as_series(series)
        self._history = [float(v) for v in arr]
        self.base.fit(self._history)
        self._fit_window = list(self._history)
        self._fitted = True
        self._since_fit = 0
        self.fit_count += 1
        return self

    # ------------------------------------------------------------------
    # Checkpointing (``pstore serve --resume``)
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-serialisable snapshot of the learner's stream state."""
        return {
            "base_type": type(self.base).__name__,
            "history": list(self._history),
            "fit_window": (
                list(self._fit_window) if self._fit_window is not None else None
            ),
            "since_fit": self._since_fit,
            "fit_count": self.fit_count,
            "fitted": bool(self.base.is_fitted),
        }

    def restore_state(self, doc: dict) -> None:
        """Rebuild from :meth:`state_dict` output.

        The wrapped base model must be of the same type (an unfitted
        fresh instance is fine); its fitted parameters are reconstructed
        by refitting on the checkpointed fit window, which is exact
        because every fit in this package is deterministic.
        """
        want = doc.get("base_type")
        have = type(self.base).__name__
        if want is not None and want != have:
            raise PredictionError(
                f"checkpoint was taken with base predictor {want}, "
                f"cannot restore into {have}"
            )
        self._history = [float(v) for v in doc.get("history", [])]
        fit_window = doc.get("fit_window")
        self._fit_window = (
            [float(v) for v in fit_window] if fit_window is not None else None
        )
        self._since_fit = int(doc.get("since_fit", 0))
        self.fit_count = int(doc.get("fit_count", 0))
        if doc.get("fitted") and self._fit_window is not None:
            self.base.fit(self._fit_window)
            self._fitted = True
        else:
            self._fitted = False

    def predict_horizon(
        self, history: Sequence[float], horizon: int
    ) -> np.ndarray:
        """Forecast using the internally-maintained model.

        ``history`` may be the caller's own measured series (the
        controller passes one); only the base model's requirements apply.
        """
        if not self.base.is_fitted:
            raise NotFittedError(
                f"online predictor has seen {len(self._history)} of the "
                f"{self.min_training} observations needed for its first fit"
            )
        return self.base.predict_horizon(history, horizon)

    def predict_next(self, horizon: int) -> np.ndarray:
        """Forecast from the internal history (pure streaming use)."""
        return self.predict_horizon(self._history, horizon)
