"""Gradient-boosted regression trees over lag + calendar features.

The zoo's machine-learning contender (Sibyl forecasts time-evolving
workloads with exactly this model family): boosted depth-limited
regression trees fitted on

* **lag features** — the load 1, 2, 3 slots ago plus the seasonal lags
  ``period`` and ``period + 1`` slots ago, and
* **calendar features** — sine/cosine of the slot-of-period phase (two
  harmonics), assuming the series starts at phase zero (the capacity
  simulators always pass history from trace slot 0).

Everything is hand-rolled numpy: greedy SSE splits over quantile
candidate thresholds, no row/feature subsampling, so training is fully
deterministic — two fits on the same series produce bit-identical trees
and forecasts, which the sweep cache and the conformance suite rely on.

Multi-step forecasts are recursive: each predicted slot is appended to
the lag buffer before predicting the next.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import PredictionError
from .base import Predictor, as_series, forecast_instrumentation

#: Tree nodes are tuples: ("leaf", value) or
#: ("split", feature, threshold, left, right).
_Node = tuple


def _fit_tree(
    features: np.ndarray,
    residual: np.ndarray,
    depth: int,
    max_depth: int,
    n_thresholds: int,
    min_leaf: int,
) -> _Node:
    """Greedy SSE-minimising regression tree on the residuals."""
    mean = float(residual.mean())
    if depth >= max_depth or residual.size < 2 * min_leaf:
        return ("leaf", mean)
    base_sse = float(((residual - mean) ** 2).sum())
    best_gain = 0.0
    best: Optional[Tuple[int, float]] = None
    quantiles = np.linspace(0.0, 1.0, n_thresholds + 2)[1:-1]
    for feature in range(features.shape[1]):
        column = features[:, feature]
        thresholds = np.unique(np.quantile(column, quantiles))
        for threshold in thresholds:
            mask = column <= threshold
            n_left = int(mask.sum())
            if n_left < min_leaf or residual.size - n_left < min_leaf:
                continue
            left = residual[mask]
            right = residual[~mask]
            sse = (
                float(((left - left.mean()) ** 2).sum())
                + float(((right - right.mean()) ** 2).sum())
            )
            gain = base_sse - sse
            # Strict inequality keeps the first (feature, threshold) on
            # ties, so the greedy choice is deterministic.
            if gain > best_gain + 1e-12:
                best_gain = gain
                best = (feature, float(threshold))
    if best is None:
        return ("leaf", mean)
    feature, threshold = best
    mask = features[:, feature] <= threshold
    return (
        "split",
        feature,
        threshold,
        _fit_tree(
            features[mask], residual[mask],
            depth + 1, max_depth, n_thresholds, min_leaf,
        ),
        _fit_tree(
            features[~mask], residual[~mask],
            depth + 1, max_depth, n_thresholds, min_leaf,
        ),
    )


def _tree_apply(node: _Node, features: np.ndarray) -> np.ndarray:
    """Vectorised prediction of one tree over a feature matrix."""
    if node[0] == "leaf":
        return np.full(features.shape[0], node[1])
    _, feature, threshold, left, right = node
    out = np.empty(features.shape[0])
    mask = features[:, feature] <= threshold
    out[mask] = _tree_apply(left, features[mask])
    out[~mask] = _tree_apply(right, features[~mask])
    return out


def _tree_apply_one(node: _Node, row: Sequence[float]) -> float:
    while node[0] == "split":
        _, feature, threshold, left, right = node
        node = left if row[feature] <= threshold else right
    return node[1]


class GbtPredictor(Predictor):
    """Gradient-boosted-trees load predictor.

    Parameters
    ----------
    period:
        slots per season (drives the seasonal lags and phase features).
    n_trees, max_depth, learning_rate:
        the usual boosting knobs; defaults favour seconds-fast fits.
    n_thresholds:
        candidate split thresholds per feature (feature quantiles).
    min_leaf:
        minimum samples per leaf.
    """

    name = "gbt"

    def __init__(
        self,
        period: int,
        n_trees: int = 40,
        max_depth: int = 3,
        learning_rate: float = 0.15,
        n_thresholds: int = 8,
        min_leaf: int = 8,
    ):
        super().__init__()
        if period < 2:
            raise PredictionError(f"period must be >= 2 slots (got {period})")
        if n_trees < 1 or max_depth < 1 or min_leaf < 1 or n_thresholds < 1:
            raise PredictionError(
                "n_trees, max_depth, n_thresholds and min_leaf must be >= 1"
            )
        if not 0 < learning_rate <= 1:
            raise PredictionError(
                f"learning_rate must be in (0, 1] (got {learning_rate})"
            )
        self.period = period
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.learning_rate = learning_rate
        self.n_thresholds = n_thresholds
        self.min_leaf = min_leaf
        self.lags: Tuple[int, ...] = (1, 2, 3, period, period + 1)
        self._base: float = 0.0
        self._trees: List[_Node] = []

    @property
    def min_history(self) -> int:
        return max(self.lags)

    def _features(self, values: np.ndarray, anchors: np.ndarray) -> np.ndarray:
        """Feature rows predicting ``values[anchor]`` from its past."""
        columns = [values[anchors - lag] for lag in self.lags]
        phase = 2.0 * math.pi * (anchors % self.period) / self.period
        columns += [np.sin(phase), np.cos(phase),
                    np.sin(2 * phase), np.cos(2 * phase)]
        return np.column_stack(columns)

    def _feature_row(self, buffer: List[float], slot: int) -> List[float]:
        """One feature row from a lag buffer (newest last) at ``slot``."""
        row = [buffer[-lag] for lag in self.lags]
        phase = 2.0 * math.pi * (slot % self.period) / self.period
        row += [math.sin(phase), math.cos(phase),
                math.sin(2 * phase), math.cos(2 * phase)]
        return row

    def fit(self, series: Sequence[float]) -> "GbtPredictor":
        arr = as_series(series)
        max_lag = max(self.lags)
        needed = max_lag + 4 * self.min_leaf
        if arr.size < needed:
            raise PredictionError(
                f"GBT(period={self.period}) needs at least {needed} "
                f"training slots (got {arr.size})"
            )
        anchors = np.arange(max_lag, arr.size)
        features = self._features(arr, anchors)
        targets = arr[anchors]
        self._base = float(targets.mean())
        prediction = np.full(targets.size, self._base)
        self._trees = []
        for _ in range(self.n_trees):
            tree = _fit_tree(
                features, targets - prediction,
                0, self.max_depth, self.n_thresholds, self.min_leaf,
            )
            prediction = prediction + self.learning_rate * _tree_apply(
                tree, features
            )
            self._trees.append(tree)
        self._fit_series = arr
        self._fitted = True
        return self

    def predict_horizon(
        self, history: Sequence[float], horizon: int
    ) -> np.ndarray:
        self._require_fitted()
        if horizon < 1:
            raise PredictionError(f"horizon must be >= 1 (got {horizon})")
        arr = as_series(history)
        max_lag = max(self.lags)
        if arr.size < max_lag:
            raise PredictionError(
                f"history of {arr.size} slots is shorter than the minimum "
                f"context of {max_lag}"
            )
        with forecast_instrumentation("gbt", horizon):
            buffer = list(arr[-max_lag:])
            out = np.empty(horizon)
            for step in range(horizon):
                row = self._feature_row(buffer, arr.size + step)
                value = self._base + self.learning_rate * sum(
                    _tree_apply_one(tree, row) for tree in self._trees
                )
                value = max(float(value), 0.0)
                out[step] = value
                buffer.append(value)
                buffer.pop(0)
            return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GbtPredictor(period={self.period}, trees={self.n_trees}, "
            f"fitted={self._fitted})"
        )
