"""Oracle predictor: returns the true future load.

"P-Store Oracle" in Figure 12 shows the upper bound of P-Store's
performance — a planner fed with perfect predictions.  The oracle holds
the full ground-truth series and, asked to forecast from the end of some
observed prefix, simply reads the next ``horizon`` true values.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import PredictionError
from .base import Predictor, as_series


class OraclePredictor(Predictor):
    """Perfect predictor backed by the ground-truth series.

    The history passed to :meth:`predict_horizon` must be a prefix of the
    truth (only its *length* is used to locate "now"); a mismatch larger
    than floating-point noise raises, which guards against accidentally
    pairing an oracle with the wrong trace.
    """

    name = "oracle"

    def __init__(self, truth: Sequence[float]):
        super().__init__()
        self._truth = as_series(truth)
        self._fit_series = self._truth
        self._fitted = True  # nothing to fit

    @property
    def min_history(self) -> int:
        return 1

    def fit(self, series: Sequence[float]) -> "OraclePredictor":
        # Fitting replaces the truth; useful when reusing one instance.
        self._truth = as_series(series)
        self._fit_series = self._truth
        return self

    def predict_horizon(
        self, history: Sequence[float], horizon: int
    ) -> np.ndarray:
        if horizon < 1:
            raise PredictionError(f"horizon must be >= 1 (got {horizon})")
        arr = as_series(history)
        now = arr.size - 1
        if now >= self._truth.size:
            raise PredictionError(
                f"history of {arr.size} slots is longer than the truth "
                f"({self._truth.size} slots)"
            )
        if not np.allclose(arr[-3:], self._truth[max(0, now - 2) : now + 1]):
            raise PredictionError(
                "history does not match the oracle's ground-truth series"
            )
        end = now + 1 + horizon
        future = self._truth[now + 1 : min(end, self._truth.size)]
        if future.size < horizon:
            # Past the end of the truth: hold the last known value.
            pad = np.full(horizon - future.size, self._truth[-1])
            future = np.concatenate([future, pad])
        return future.copy()
