"""Plain auto-regressive (AR) predictor — the simplest baseline in Sec. 5.

AR(p) models ``y(t) = c + sum_{i=1..p} phi_i * y(t-i)``.  Multi-step
forecasts are produced recursively, feeding earlier forecasts back in as
pseudo-observations.  The paper reports that on the B2W load this baseline
reaches 12.5% MRE at tau = 60 minutes, versus 10.4% for SPAR.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..errors import PredictionError
from .base import Predictor, as_series


def fit_ar_coefficients(
    series: np.ndarray, order: int, ridge: float = 1e-8
) -> np.ndarray:
    """Least-squares AR(p) fit; returns ``[c, phi_1 .. phi_p]``.

    Shared by :class:`ArPredictor` and the Hannan-Rissanen first stage of
    the ARMA fit.
    """
    if series.size <= order + 1:
        raise PredictionError(
            f"AR({order}) needs more than {order + 1} points (got {series.size})"
        )
    rows = series.size - order
    design = np.empty((rows, order + 1))
    design[:, 0] = 1.0
    for lag in range(1, order + 1):
        design[:, lag] = series[order - lag : series.size - lag]
    targets = series[order:]
    gram = design.T @ design + ridge * np.eye(order + 1)
    return np.linalg.solve(gram, design.T @ targets)


class ArPredictor(Predictor):
    """AR(p) baseline predictor.

    Parameters
    ----------
    order:
        number of auto-regressive lags ``p``.
    """

    name = "ar"

    def __init__(self, order: int = 30):
        super().__init__()
        if order < 1:
            raise PredictionError(f"order must be >= 1 (got {order})")
        self.order = order
        self._coeffs: Optional[np.ndarray] = None

    @property
    def min_history(self) -> int:
        return self.order

    def fit(self, series: Sequence[float]) -> "ArPredictor":
        arr = as_series(series)
        self._coeffs = fit_ar_coefficients(arr, self.order)
        self._fit_series = arr
        self._fitted = True
        return self

    @property
    def coefficients(self) -> np.ndarray:
        self._require_fitted()
        assert self._coeffs is not None
        return self._coeffs.copy()

    def predict_horizon(
        self, history: Sequence[float], horizon: int
    ) -> np.ndarray:
        self._require_fitted()
        if horizon < 1:
            raise PredictionError(f"horizon must be >= 1 (got {horizon})")
        arr = as_series(history)
        if arr.size < self.order:
            raise PredictionError(
                f"history of {arr.size} slots is shorter than AR order {self.order}"
            )
        assert self._coeffs is not None
        intercept = self._coeffs[0]
        phi = self._coeffs[1:]
        # Working buffer: most recent `order` values, newest last.
        window = list(arr[-self.order :])
        out = np.empty(horizon)
        for step in range(horizon):
            value = intercept + sum(
                phi[i] * window[-1 - i] for i in range(self.order)
            )
            out[step] = value
            window.append(value)
            window.pop(0)
        return np.clip(out, 0.0, None)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArPredictor(order={self.order}, fitted={self._fitted})"
