"""Load time-series prediction (Section 5 of the paper).

SPAR is the paper's model; AR and ARMA are the baselines it compares
against, the seasonal-naive and last-value predictors are sanity floors,
the oracle supplies perfect predictions for Figure 12's "P-Store Oracle"
upper bound, and mSSA/GBT are the drift-aware zoo contenders.  All of
them implement the :class:`Predictor` protocol and are resolvable by
registry slug through :func:`build_predictor` /
:func:`get_predictor_spec` (see ``docs/PREDICTORS.md``).
"""

from .ar import ArPredictor, fit_ar_coefficients
from .arma import ArmaPredictor
from .base import BacktestResult, Predictor, as_series
from .gbt import GbtPredictor
from .metrics import (
    horizon_error_sweep,
    mean_absolute_error,
    mean_relative_error,
    root_mean_squared_error,
)
from .mssa import MssaPredictor
from .naive import LastValuePredictor, SeasonalNaivePredictor
from .online import OnlinePredictor
from .oracle import OraclePredictor
from .registry import (
    PredictorSpec,
    build_predictor,
    get_predictor_spec,
    register_predictor,
    registered_predictors,
)
from .spar import SparPredictor

__all__ = [
    "ArPredictor",
    "ArmaPredictor",
    "BacktestResult",
    "GbtPredictor",
    "LastValuePredictor",
    "MssaPredictor",
    "OnlinePredictor",
    "OraclePredictor",
    "Predictor",
    "PredictorSpec",
    "SeasonalNaivePredictor",
    "SparPredictor",
    "as_series",
    "build_predictor",
    "fit_ar_coefficients",
    "get_predictor_spec",
    "horizon_error_sweep",
    "mean_absolute_error",
    "mean_relative_error",
    "register_predictor",
    "registered_predictors",
    "root_mean_squared_error",
]
