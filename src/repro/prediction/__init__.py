"""Load time-series prediction (Section 5 of the paper).

SPAR is the default model; AR and ARMA are the baselines the paper
compares against, the seasonal-naive and last-value predictors are sanity
baselines, and the oracle supplies perfect predictions for Figure 12's
"P-Store Oracle" upper bound.
"""

from .ar import ArPredictor, fit_ar_coefficients
from .arma import ArmaPredictor
from .base import BacktestResult, Predictor, as_series
from .metrics import (
    horizon_error_sweep,
    mean_absolute_error,
    mean_relative_error,
    root_mean_squared_error,
)
from .naive import LastValuePredictor, SeasonalNaivePredictor
from .online import OnlinePredictor
from .oracle import OraclePredictor
from .spar import SparPredictor

__all__ = [
    "ArPredictor",
    "ArmaPredictor",
    "BacktestResult",
    "LastValuePredictor",
    "OnlinePredictor",
    "OraclePredictor",
    "Predictor",
    "SeasonalNaivePredictor",
    "SparPredictor",
    "as_series",
    "fit_ar_coefficients",
    "horizon_error_sweep",
    "mean_absolute_error",
    "mean_relative_error",
    "root_mean_squared_error",
]
