"""ARMA(p, q) baseline predictor (Hannan-Rissanen estimation).

The paper compares SPAR against an auto-regressive moving-average model
(12.2% MRE at tau = 60 minutes on B2W, vs 10.4% for SPAR).  We estimate
the model with the classic two-stage Hannan-Rissanen procedure:

1. fit a long AR model and take its residuals as estimates of the
   unobservable innovations;
2. regress ``y(t)`` on ``p`` lags of ``y`` and ``q`` lags of the estimated
   innovations with least squares.

Forecasting is recursive with future innovations set to zero (their
conditional mean).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..errors import PredictionError
from .ar import fit_ar_coefficients
from .base import Predictor, as_series


class ArmaPredictor(Predictor):
    """ARMA(p, q) predictor fitted by Hannan-Rissanen least squares.

    Parameters
    ----------
    p:
        auto-regressive order.
    q:
        moving-average order.
    long_ar_order:
        order of the first-stage AR used to estimate innovations; defaults
        to ``p + q + 10``.
    """

    name = "arma"

    def __init__(self, p: int = 30, q: int = 10, long_ar_order: Optional[int] = None):
        super().__init__()
        if p < 1 or q < 0:
            raise PredictionError(f"need p >= 1, q >= 0 (got p={p}, q={q})")
        self.p = p
        self.q = q
        self.long_ar_order = long_ar_order or (p + q + 10)
        self._intercept: float = 0.0
        self._phi: Optional[np.ndarray] = None
        self._theta: Optional[np.ndarray] = None
        self._long_ar: Optional[np.ndarray] = None

    @property
    def min_history(self) -> int:
        # Enough to rebuild innovations for the q MA lags.
        return self.long_ar_order + max(self.p, self.q) + 1

    def fit(self, series: Sequence[float]) -> "ArmaPredictor":
        arr = as_series(series)
        needed = self.long_ar_order + self.p + self.q + 2
        if arr.size < needed:
            raise PredictionError(
                f"ARMA({self.p},{self.q}) needs at least {needed} training "
                f"slots (got {arr.size})"
            )
        # Stage 1: long AR for innovation estimates.
        self._long_ar = fit_ar_coefficients(arr, self.long_ar_order)
        innovations = self._innovations(arr)

        # Stage 2: regress y(t) on lags of y and lags of innovations.
        start = self.long_ar_order + max(self.p, self.q)
        rows = arr.size - start
        design = np.empty((rows, 1 + self.p + self.q))
        design[:, 0] = 1.0
        anchors = np.arange(start, arr.size)
        for lag in range(1, self.p + 1):
            design[:, lag] = arr[anchors - lag]
        for lag in range(1, self.q + 1):
            design[:, self.p + lag] = innovations[anchors - lag]
        targets = arr[anchors]
        gram = design.T @ design + 1e-8 * np.eye(design.shape[1])
        weights = np.linalg.solve(gram, design.T @ targets)
        self._intercept = float(weights[0])
        self._phi = weights[1 : 1 + self.p]
        self._theta = weights[1 + self.p :]
        self._fit_series = arr
        self._fitted = True
        return self

    def _innovations(self, arr: np.ndarray) -> np.ndarray:
        """One-step residuals of the long AR model, zero-padded at the front."""
        assert self._long_ar is not None
        order = self.long_ar_order
        coeffs = self._long_ar
        innovations = np.zeros(arr.size)
        if arr.size <= order:
            return innovations
        anchors = np.arange(order, arr.size)
        fitted = np.full(anchors.size, coeffs[0])
        for lag in range(1, order + 1):
            fitted += coeffs[lag] * arr[anchors - lag]
        innovations[order:] = arr[anchors] - fitted
        return innovations

    def predict_horizon(
        self, history: Sequence[float], horizon: int
    ) -> np.ndarray:
        self._require_fitted()
        if horizon < 1:
            raise PredictionError(f"horizon must be >= 1 (got {horizon})")
        arr = as_series(history)
        if arr.size < self.min_history:
            raise PredictionError(
                f"history of {arr.size} slots is shorter than the minimum "
                f"context of {self.min_history}"
            )
        assert self._phi is not None and self._theta is not None
        innovations = list(self._innovations(arr)[-max(self.q, 1) :]) if self.q else []
        values = list(arr[-self.p :])
        out = np.empty(horizon)
        for step in range(horizon):
            forecast = self._intercept + sum(
                self._phi[i] * values[-1 - i] for i in range(self.p)
            )
            for j in range(self.q):
                if j < len(innovations):
                    forecast += self._theta[j] * innovations[-1 - j]
            out[step] = forecast
            values.append(forecast)
            values.pop(0)
            if self.q:
                innovations.append(0.0)  # future innovations have mean zero
                innovations.pop(0)
        return np.clip(out, 0.0, None)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArmaPredictor(p={self.p}, q={self.q}, fitted={self._fitted})"
