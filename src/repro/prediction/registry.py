"""The predictor registry: one name → factory table for the whole system.

``repro.api.fit_predictor``, the ``predictive:<name>`` strategy grammar,
``pstore predict --model``, ``pstore serve --predictor`` and the
``shootout`` experiment all resolve forecasters through this module, so
adding a predictor here makes it available everywhere at once.

Each entry is a :class:`PredictorSpec`: the registry slug, the factory,
and the *declared* constructor parameters with their documented
defaults.  :meth:`PredictorSpec.build` validates keyword arguments
against that declaration — an unknown predictor name or an undeclared
kwarg raises :class:`~repro.errors.ConfigurationError` listing what is
actually available, instead of a ``TypeError`` three frames deep.

To add a predictor:

1. subclass :class:`~repro.prediction.base.Predictor`, set its ``name``
   class attribute to the registry slug;
2. call :func:`register_predictor` with a :class:`PredictorSpec`
   (module import time is fine — this module registers the whole zoo on
   import);
3. nothing else: the conformance suite in ``tests/test_predictor_zoo.py``
   picks it up automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Tuple

from ..errors import ConfigurationError
from .ar import ArPredictor
from .arma import ArmaPredictor
from .base import Predictor
from .gbt import GbtPredictor
from .mssa import MssaPredictor
from .naive import LastValuePredictor, SeasonalNaivePredictor
from .oracle import OraclePredictor
from .spar import SparPredictor

#: Default slots-per-period for period-aware predictors: one day of
#: 5-minute slots, matching ``repro.api.run``'s trace resolution.
DEFAULT_PERIOD = 288


@dataclass(frozen=True)
class PredictorSpec:
    """One registry entry.

    Parameters
    ----------
    name:
        registry slug (``"spar"``, ``"mssa"``, ...).
    factory:
        callable building an *unfitted* predictor from keyword args.
    description:
        one-line summary for ``--help`` texts and docs.
    params:
        declared keyword parameters mapped to their defaults; ``build``
        rejects anything else.  ``None`` defaults mean "derived by the
        factory".
    needs_truth:
        the series passed to ``fit_predictor`` *is* the model (the
        oracle): the factory takes it as its only positional argument.
    """

    name: str
    factory: Callable[..., Predictor]
    description: str
    params: Mapping[str, Any] = field(default_factory=dict)
    needs_truth: bool = False

    def accepts(self, key: str) -> bool:
        return key in self.params

    def build(self, **kwargs: Any) -> Predictor:
        """Construct an unfitted predictor, validating ``kwargs``."""
        if self.needs_truth:
            raise ConfigurationError(
                f"predictor {self.name!r} is built from a ground-truth "
                f"series; construct it through fit_predictor(name, series)"
            )
        unknown = sorted(set(kwargs) - set(self.params))
        if unknown:
            accepted = ", ".join(sorted(self.params)) or "(none)"
            raise ConfigurationError(
                f"predictor {self.name!r} does not accept "
                f"{', '.join(repr(k) for k in unknown)} "
                f"(declared parameters: {accepted})"
            )
        return self.factory(**kwargs)


_REGISTRY: Dict[str, PredictorSpec] = {}


def register_predictor(spec: PredictorSpec) -> PredictorSpec:
    """Add one predictor to the registry (slugs must be unique)."""
    if spec.name in _REGISTRY:
        raise ConfigurationError(
            f"predictor {spec.name!r} is already registered"
        )
    _REGISTRY[spec.name] = spec
    return spec


def registered_predictors() -> Tuple[str, ...]:
    """All registry slugs, in registration order."""
    return tuple(_REGISTRY)


def get_predictor_spec(name: str) -> PredictorSpec:
    """Look up one entry; unknown names list what is registered."""
    spec = _REGISTRY.get(str(name))
    if spec is None:
        raise ConfigurationError(
            f"unknown predictor {name!r} "
            f"(expected one of {registered_predictors()})"
        )
    return spec


def build_predictor(name: str, **kwargs: Any) -> Predictor:
    """Resolve ``name`` and build an unfitted predictor."""
    return get_predictor_spec(name).build(**kwargs)


# ----------------------------------------------------------------------
# The zoo.  Order matters: ``repro.api.PREDICTORS`` exposes these in
# registration order, and the first five match the pre-registry tuple.
# ----------------------------------------------------------------------

register_predictor(PredictorSpec(
    name="spar",
    factory=lambda period=DEFAULT_PERIOD, n_periods=7, m_recent=30,
    ridge=1e-6: SparPredictor(
        period=period, n_periods=n_periods, m_recent=m_recent, ridge=ridge
    ),
    description="Sparse Periodic Auto-Regression (the paper's Eq. 8)",
    params={"period": DEFAULT_PERIOD, "n_periods": 7,
            "m_recent": 30, "ridge": 1e-6},
))

register_predictor(PredictorSpec(
    name="arma",
    factory=lambda p=30, q=10, long_ar_order=None: ArmaPredictor(
        p=p, q=q, long_ar_order=long_ar_order
    ),
    description="ARMA(p, q) via Hannan-Rissanen (paper baseline)",
    params={"p": 30, "q": 10, "long_ar_order": None},
))

register_predictor(PredictorSpec(
    name="ar",
    factory=lambda order=30: ArPredictor(order=order),
    description="plain AR(p) least squares (paper baseline)",
    params={"order": 30},
))

register_predictor(PredictorSpec(
    name="naive",
    factory=lambda: LastValuePredictor(),
    description="last observed value held flat",
))

register_predictor(PredictorSpec(
    name="oracle",
    factory=lambda truth: OraclePredictor(truth),
    description="perfect predictions from the ground-truth series",
    needs_truth=True,
))

register_predictor(PredictorSpec(
    name="seasonal",
    factory=lambda period=DEFAULT_PERIOD: SeasonalNaivePredictor(
        period=period
    ),
    description="seasonal-naive floor: same slot one period earlier",
    params={"period": DEFAULT_PERIOD},
))

register_predictor(PredictorSpec(
    name="mssa",
    factory=lambda period=DEFAULT_PERIOD, window=None, rank=8,
    ridge=1e-4: MssaPredictor(
        period=period, window=window, rank=rank, ridge=ridge
    ),
    description="mSSA/tspDB-style low-rank matrix-factorization forecast",
    params={"period": DEFAULT_PERIOD, "window": None,
            "rank": 8, "ridge": 1e-4},
))

register_predictor(PredictorSpec(
    name="gbt",
    factory=lambda period=DEFAULT_PERIOD, n_trees=40, max_depth=3,
    learning_rate=0.15, n_thresholds=8, min_leaf=8: GbtPredictor(
        period=period, n_trees=n_trees, max_depth=max_depth,
        learning_rate=learning_rate, n_thresholds=n_thresholds,
        min_leaf=min_leaf,
    ),
    description="gradient-boosted trees over lag + calendar features",
    params={"period": DEFAULT_PERIOD, "n_trees": 40, "max_depth": 3,
            "learning_rate": 0.15, "n_thresholds": 8, "min_leaf": 8},
))
