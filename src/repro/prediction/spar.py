"""Sparse Periodic Auto-Regression (SPAR), Eq. 8 of the paper.

SPAR models the load at time ``t + tau`` as the sum of a *periodic* term
(the load at the same time-of-period in each of the previous ``n``
periods) and a *recent-offset* term (how far the last ``m`` measurements
deviate from their own periodic expectations)::

    y(t + tau) = sum_{k=1..n} a_k * y(t + tau - k*T)
               + sum_{j=1..m} b_j * dy(t - j)

    dy(t - j)  = y(t - j) - (1/n) * sum_{k=1..n} y(t - j - k*T)

``T`` is the period length in slots (1440 for per-minute data with a daily
period), ``n`` the number of past periods (the paper uses 7 — one week of
daily periods), and ``m`` the number of recent measurements (30).  The
coefficients ``a_k`` and ``b_j`` are fitted with linear least squares,
separately for each forecast offset ``tau`` (and cached), since the
optimal mixing of periodic and recent information shifts with how far
ahead we look.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import PredictionError
from .base import Predictor, as_series, forecast_instrumentation


class SparPredictor(Predictor):
    """SPAR load predictor (the paper's default model).

    Parameters
    ----------
    period:
        slots per period ``T`` (e.g. 1440 one-minute slots per day).
    n_periods:
        ``n``, past periods used by the periodic term (default 7).
    m_recent:
        ``m``, recent measurements used by the offset term (default 30).
    ridge:
        small L2 regularisation added to the normal equations, which keeps
        the fit stable when columns are collinear (e.g. a perfectly
        periodic synthetic trace).
    """

    name = "spar"

    def __init__(
        self,
        period: int,
        n_periods: int = 7,
        m_recent: int = 30,
        ridge: float = 1e-6,
    ):
        super().__init__()
        if period < 2:
            raise PredictionError(f"period must be >= 2 slots (got {period})")
        if n_periods < 1:
            raise PredictionError(f"n_periods must be >= 1 (got {n_periods})")
        if m_recent < 0:
            raise PredictionError(f"m_recent must be >= 0 (got {m_recent})")
        if ridge < 0:
            raise PredictionError(f"ridge must be >= 0 (got {ridge})")
        self.period = period
        self.n_periods = n_periods
        self.m_recent = m_recent
        self.ridge = ridge
        self._train: Optional[np.ndarray] = None
        self._coeffs: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        # Stacked (a, b) coefficient arrays per horizon, plus the largest
        # horizon whose taus are all fitted (fast path for fit_horizon).
        self._stacked: Dict[int, Tuple[np.ndarray, List[np.ndarray]]] = {}
        self._fitted_upto = 0

    # ------------------------------------------------------------------
    # Context requirements
    # ------------------------------------------------------------------

    @property
    def min_history(self) -> int:
        """Fewest observed slots needed before any forecast can be made.

        The periodic term of a ``tau``-ahead forecast reaches back
        ``n*T - tau`` slots from "now"; the offset term reaches back
        ``m + n*T``.  The latter dominates for ``tau < T``.
        """
        return self.m_recent + self.n_periods * self.period

    @property
    def tau_max(self) -> int:
        """The periodic term needs observed data: ``tau < period``."""
        return self.period - 1

    def _check_tau(self, tau: int) -> None:
        if tau < 1:
            raise PredictionError(f"tau must be >= 1 (got {tau})")
        if tau >= self.period:
            raise PredictionError(
                f"tau must be < period={self.period} so the periodic term "
                f"references only observed data (got tau={tau})"
            )

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------

    def fit(self, series: Sequence[float]) -> "SparPredictor":
        """Store the training window; coefficients are fitted lazily per tau."""
        arr = as_series(series)
        needed = self.min_history + self.period  # at least one target per tau
        if arr.size < needed:
            raise PredictionError(
                f"SPAR(T={self.period}, n={self.n_periods}, m={self.m_recent}) "
                f"needs at least {needed} training slots (got {arr.size})"
            )
        self._train = arr
        self._fit_series = arr
        self._coeffs = {}
        self._stacked = {}
        self._fitted_upto = 0
        self._fitted = True
        return self

    def _design(
        self, series: np.ndarray, tau: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Build the regression design matrix for a fixed ``tau``.

        Rows are anchored at "now" indices ``t``; the target is
        ``series[t + tau]``.  Columns are the ``n`` periodic lags followed
        by the ``m`` recent offsets.
        """
        t_len = series.size
        n, m, period = self.n_periods, self.m_recent, self.period
        # y(t + tau - k*T) must exist (index >= 0) and the offsets need
        # y(t - j - k*T) >= 0; targets need t + tau < len.
        t_min = max(n * period - tau, m + n * period)
        t_max = t_len - tau - 1
        if t_max < t_min:
            raise PredictionError(
                f"not enough training data for tau={tau}"
            )
        anchors = np.arange(t_min, t_max + 1)
        periodic = series[
            anchors[:, None] + tau - np.arange(1, n + 1) * period
        ]
        design = np.concatenate(
            [periodic, self._offset_block(series, anchors)], axis=1
        )
        targets = series[anchors + tau]
        return design, targets

    def _offset_block(
        self, series: np.ndarray, anchors: np.ndarray
    ) -> np.ndarray:
        """The ``m`` recent-offset columns ``dy(t - j)`` for each anchor.

        The per-period mean is accumulated sequentially over ``k`` (not
        ``np.sum`` over a gathered axis) so the floating-point result is
        bit-identical to the scalar reference loop for any ``n``.
        """
        n, m, period = self.n_periods, self.m_recent, self.period
        if not m:
            return np.empty((anchors.size, 0))
        recent = anchors[:, None] - np.arange(1, m + 1)
        mean = np.zeros((anchors.size, m))
        for k in range(1, n + 1):
            mean += series[recent - k * period]
        mean /= n
        return series[recent] - mean

    def _fit_tau(self, tau: int) -> Tuple[np.ndarray, np.ndarray]:
        """Fit (and cache) coefficients for forecast offset ``tau``."""
        self._require_fitted()
        self._check_tau(tau)
        cached = self._coeffs.get(tau)
        if cached is not None:
            return cached
        assert self._train is not None
        design, targets = self._design(self._train, tau)
        n_cols = design.shape[1]
        # Ridge-regularised normal equations: (X'X + rI) w = X'y.
        gram = design.T @ design + self.ridge * np.eye(n_cols)
        rhs = design.T @ targets
        weights = np.linalg.solve(gram, rhs)
        a = weights[: self.n_periods]
        b = weights[self.n_periods :]
        self._coeffs[tau] = (a, b)
        return a, b

    def coefficients(self, tau: int) -> Tuple[np.ndarray, np.ndarray]:
        """The fitted ``(a_k, b_j)`` for offset ``tau`` (fitting if needed)."""
        return self._fit_tau(tau)

    def fit_horizon(self, horizon: int) -> None:
        """Batch-fit every uncached ``tau`` in ``1..horizon`` at once.

        The recent-offset columns depend only on the anchor index, not on
        ``tau``, so the block is built once for the longest anchor range
        and sliced per ``tau``; the per-``tau`` normal equations are then
        solved as one stacked ``np.linalg.solve``.  Produces coefficients
        bit-identical to calling :meth:`coefficients` per ``tau``.
        """
        self._require_fitted()
        if horizon < 1:
            raise PredictionError(f"horizon must be >= 1 (got {horizon})")
        if horizon <= self._fitted_upto:
            return
        missing = []
        for tau in range(1, horizon + 1):
            self._check_tau(tau)
            if tau not in self._coeffs:
                missing.append(tau)
        if not missing:
            self._fitted_upto = max(self._fitted_upto, horizon)
            return
        assert self._train is not None
        series = self._train
        t_len = series.size
        n, m, period = self.n_periods, self.m_recent, self.period
        tau_lo = missing[0]
        t_min = max(n * period - tau_lo, m + n * period)
        t_max = t_len - tau_lo - 1
        if t_max < t_min:
            raise PredictionError(
                f"not enough training data for tau={tau_lo}"
            )
        anchors = np.arange(t_min, t_max + 1)
        offset_block = self._offset_block(series, anchors)
        ks = np.arange(1, n + 1) * period
        n_cols = n + m
        ridge_eye = self.ridge * np.eye(n_cols)
        grams = np.empty((len(missing), n_cols, n_cols))
        rhs = np.empty((len(missing), n_cols))
        for i, tau in enumerate(missing):
            rows = t_len - tau - 1 - t_min + 1
            if rows < 1:
                raise PredictionError(
                    f"not enough training data for tau={tau}"
                )
            sub = anchors[:rows]
            design = np.concatenate(
                [series[sub[:, None] + tau - ks], offset_block[:rows]],
                axis=1,
            )
            grams[i] = design.T @ design + ridge_eye
            rhs[i] = design.T @ series[sub + tau]
        weights = np.linalg.solve(grams, rhs[:, :, None])[:, :, 0]
        for i, tau in enumerate(missing):
            self._coeffs[tau] = (weights[i, :n], weights[i, n:])
        self._fitted_upto = max(self._fitted_upto, horizon)

    # ------------------------------------------------------------------
    # Forecasting
    # ------------------------------------------------------------------

    def predict_horizon(
        self, history: Sequence[float], horizon: int
    ) -> np.ndarray:
        """Forecast slots ``t+1 .. t+horizon`` where ``t`` is the last
        index of ``history`` (Eq. 8 applied per tau)."""
        self._require_fitted()
        if horizon < 1:
            raise PredictionError(f"horizon must be >= 1 (got {horizon})")
        arr = as_series(history)
        if arr.size < self.min_history:
            raise PredictionError(
                f"history of {arr.size} slots is shorter than the minimum "
                f"context of {self.min_history}"
            )
        with forecast_instrumentation("spar", horizon):
            t = arr.size - 1
            n, m, period = self.n_periods, self.m_recent, self.period
            # Recent offsets are shared by every tau: one strided gather
            # per periodic lag instead of an m * n Python loop.
            if m:
                recent = t - np.arange(1, m + 1)
                acc = np.zeros(m)
                for k in range(1, n + 1):
                    acc += arr[recent - k * period]
                offsets = arr[recent] - acc / n
            else:
                offsets = np.empty(0)
            self.fit_horizon(horizon)
            coeff_a, coeff_b_rows = self._stacked_coeffs(horizon)
            lags = arr[
                t + np.arange(1, horizon + 1)[:, None]
                - np.arange(1, n + 1) * period
            ]
            out = np.zeros(horizon)
            for k in range(n):
                out += coeff_a[:, k] * lags[:, k]
            if m:
                # One BLAS dot per tau, matching the reference's
                # `b @ offsets` accumulation exactly (a single gemv could
                # round differently).
                out += np.fromiter(
                    (b @ offsets for b in coeff_b_rows), float, horizon
                )
            return np.clip(out, 0.0, None)

    def _stacked_coeffs(
        self, horizon: int
    ) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Fitted coefficients for ``tau = 1..horizon`` as dense stacks."""
        cached = self._stacked.get(horizon)
        if cached is None:
            coeff_a = np.empty((horizon, self.n_periods))
            rows = []
            for tau in range(1, horizon + 1):
                a, b = self._coeffs[tau]
                coeff_a[tau - 1] = a
                rows.append(b)
            cached = (coeff_a, rows)
            self._stacked[horizon] = cached
        return cached

    def predict_horizon_reference(
        self, history: Sequence[float], horizon: int
    ) -> np.ndarray:
        """Scalar-loop transcription of Eq. 8, kept as a differential
        oracle and as the baseline for the perf-regression benchmark."""
        self._require_fitted()
        if horizon < 1:
            raise PredictionError(f"horizon must be >= 1 (got {horizon})")
        arr = as_series(history)
        if arr.size < self.min_history:
            raise PredictionError(
                f"history of {arr.size} slots is shorter than the minimum "
                f"context of {self.min_history}"
            )
        with forecast_instrumentation("spar-reference", horizon):
            t = arr.size - 1
            n, m, period = self.n_periods, self.m_recent, self.period
            offsets = np.empty(m)
            for j in range(1, m + 1):
                mean = sum(
                    arr[t - j - k * period] for k in range(1, n + 1)
                ) / n
                offsets[j - 1] = arr[t - j] - mean
            out = np.empty(horizon)
            for tau in range(1, horizon + 1):
                a, b = self._fit_tau(tau)
                periodic = sum(
                    a[k - 1] * arr[t + tau - k * period]
                    for k in range(1, n + 1)
                )
                out[tau - 1] = (
                    periodic + float(b @ offsets) if m else periodic
                )
            return np.clip(out, 0.0, None)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SparPredictor(period={self.period}, n={self.n_periods}, "
            f"m={self.m_recent}, fitted={self._fitted})"
        )
