"""Sparse Periodic Auto-Regression (SPAR), Eq. 8 of the paper.

SPAR models the load at time ``t + tau`` as the sum of a *periodic* term
(the load at the same time-of-period in each of the previous ``n``
periods) and a *recent-offset* term (how far the last ``m`` measurements
deviate from their own periodic expectations)::

    y(t + tau) = sum_{k=1..n} a_k * y(t + tau - k*T)
               + sum_{j=1..m} b_j * dy(t - j)

    dy(t - j)  = y(t - j) - (1/n) * sum_{k=1..n} y(t - j - k*T)

``T`` is the period length in slots (1440 for per-minute data with a daily
period), ``n`` the number of past periods (the paper uses 7 — one week of
daily periods), and ``m`` the number of recent measurements (30).  The
coefficients ``a_k`` and ``b_j`` are fitted with linear least squares,
separately for each forecast offset ``tau`` (and cached), since the
optimal mixing of periodic and recent information shifts with how far
ahead we look.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..errors import PredictionError
from .base import Predictor, as_series


class SparPredictor(Predictor):
    """SPAR load predictor (the paper's default model).

    Parameters
    ----------
    period:
        slots per period ``T`` (e.g. 1440 one-minute slots per day).
    n_periods:
        ``n``, past periods used by the periodic term (default 7).
    m_recent:
        ``m``, recent measurements used by the offset term (default 30).
    ridge:
        small L2 regularisation added to the normal equations, which keeps
        the fit stable when columns are collinear (e.g. a perfectly
        periodic synthetic trace).
    """

    def __init__(
        self,
        period: int,
        n_periods: int = 7,
        m_recent: int = 30,
        ridge: float = 1e-6,
    ):
        super().__init__()
        if period < 2:
            raise PredictionError(f"period must be >= 2 slots (got {period})")
        if n_periods < 1:
            raise PredictionError(f"n_periods must be >= 1 (got {n_periods})")
        if m_recent < 0:
            raise PredictionError(f"m_recent must be >= 0 (got {m_recent})")
        if ridge < 0:
            raise PredictionError(f"ridge must be >= 0 (got {ridge})")
        self.period = period
        self.n_periods = n_periods
        self.m_recent = m_recent
        self.ridge = ridge
        self._train: Optional[np.ndarray] = None
        self._coeffs: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------
    # Context requirements
    # ------------------------------------------------------------------

    @property
    def min_history(self) -> int:
        """Fewest observed slots needed before any forecast can be made.

        The periodic term of a ``tau``-ahead forecast reaches back
        ``n*T - tau`` slots from "now"; the offset term reaches back
        ``m + n*T``.  The latter dominates for ``tau < T``.
        """
        return self.m_recent + self.n_periods * self.period

    def _check_tau(self, tau: int) -> None:
        if tau < 1:
            raise PredictionError(f"tau must be >= 1 (got {tau})")
        if tau >= self.period:
            raise PredictionError(
                f"tau must be < period={self.period} so the periodic term "
                f"references only observed data (got tau={tau})"
            )

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------

    def fit(self, series: Sequence[float]) -> "SparPredictor":
        """Store the training window; coefficients are fitted lazily per tau."""
        arr = as_series(series)
        needed = self.min_history + self.period  # at least one target per tau
        if arr.size < needed:
            raise PredictionError(
                f"SPAR(T={self.period}, n={self.n_periods}, m={self.m_recent}) "
                f"needs at least {needed} training slots (got {arr.size})"
            )
        self._train = arr
        self._coeffs = {}
        self._fitted = True
        return self

    def _design(
        self, series: np.ndarray, tau: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Build the regression design matrix for a fixed ``tau``.

        Rows are anchored at "now" indices ``t``; the target is
        ``series[t + tau]``.  Columns are the ``n`` periodic lags followed
        by the ``m`` recent offsets.
        """
        t_len = series.size
        n, m, period = self.n_periods, self.m_recent, self.period
        # y(t + tau - k*T) must exist (index >= 0) and the offsets need
        # y(t - j - k*T) >= 0; targets need t + tau < len.
        t_min = max(n * period - tau, m + n * period)
        t_max = t_len - tau - 1
        if t_max < t_min:
            raise PredictionError(
                f"not enough training data for tau={tau}"
            )
        anchors = np.arange(t_min, t_max + 1)
        cols = []
        for k in range(1, n + 1):
            cols.append(series[anchors + tau - k * period])
        period_mean_cache = {}
        for j in range(1, m + 1):
            base = series[anchors - j]
            mean = np.zeros_like(base)
            for k in range(1, n + 1):
                mean += series[anchors - j - k * period]
            mean /= n
            cols.append(base - mean)
            period_mean_cache[j] = mean
        design = np.column_stack(cols)
        targets = series[anchors + tau]
        return design, targets

    def _fit_tau(self, tau: int) -> Tuple[np.ndarray, np.ndarray]:
        """Fit (and cache) coefficients for forecast offset ``tau``."""
        self._require_fitted()
        self._check_tau(tau)
        cached = self._coeffs.get(tau)
        if cached is not None:
            return cached
        assert self._train is not None
        design, targets = self._design(self._train, tau)
        n_cols = design.shape[1]
        # Ridge-regularised normal equations: (X'X + rI) w = X'y.
        gram = design.T @ design + self.ridge * np.eye(n_cols)
        rhs = design.T @ targets
        weights = np.linalg.solve(gram, rhs)
        a = weights[: self.n_periods]
        b = weights[self.n_periods :]
        self._coeffs[tau] = (a, b)
        return a, b

    def coefficients(self, tau: int) -> Tuple[np.ndarray, np.ndarray]:
        """The fitted ``(a_k, b_j)`` for offset ``tau`` (fitting if needed)."""
        return self._fit_tau(tau)

    # ------------------------------------------------------------------
    # Forecasting
    # ------------------------------------------------------------------

    def predict_horizon(
        self, history: Sequence[float], horizon: int
    ) -> np.ndarray:
        """Forecast slots ``t+1 .. t+horizon`` where ``t`` is the last
        index of ``history`` (Eq. 8 applied per tau)."""
        self._require_fitted()
        if horizon < 1:
            raise PredictionError(f"horizon must be >= 1 (got {horizon})")
        arr = as_series(history)
        if arr.size < self.min_history:
            raise PredictionError(
                f"history of {arr.size} slots is shorter than the minimum "
                f"context of {self.min_history}"
            )
        t = arr.size - 1
        n, m, period = self.n_periods, self.m_recent, self.period
        # Recent offsets are shared by every tau.
        offsets = np.empty(m)
        for j in range(1, m + 1):
            mean = sum(arr[t - j - k * period] for k in range(1, n + 1)) / n
            offsets[j - 1] = arr[t - j] - mean
        out = np.empty(horizon)
        for tau in range(1, horizon + 1):
            a, b = self._fit_tau(tau)
            periodic = sum(
                a[k - 1] * arr[t + tau - k * period] for k in range(1, n + 1)
            )
            out[tau - 1] = periodic + float(b @ offsets) if m else periodic
        return np.clip(out, 0.0, None)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SparPredictor(period={self.period}, n={self.n_periods}, "
            f"m={self.m_recent}, fitted={self._fitted})"
        )
