"""Common interface for load predictors (Section 5 of the paper).

A predictor is *fitted* on a training window of historical load (one value
per time slot) and then asked, given the history observed so far, to
forecast the next ``horizon`` slots.  All predictors in this package:

* operate on 1-D ``numpy`` arrays of non-negative load values;
* are deterministic given their inputs;
* raise :class:`~repro.errors.NotFittedError` if used before fitting.
"""

from __future__ import annotations

import abc
import time
from contextlib import contextmanager
from typing import Optional, Sequence

import numpy as np

from ..errors import NotFittedError, PredictionError
from ..telemetry import get_telemetry


@contextmanager
def forecast_instrumentation(model: str, horizon: int):
    """Meter one ``predict_horizon`` call: bumps the
    ``predictor.forecast{model}`` counter and feeds the wall-clock cost
    into the ``predictor.latency_ms{model,tau}`` histogram.  Free (one
    attribute check) when telemetry is disabled."""
    tel = get_telemetry()
    if not tel.enabled:
        yield
        return
    start = time.perf_counter()  # lint: wall-clock-ok
    try:
        yield
    finally:
        elapsed_ms = (time.perf_counter() - start) * 1e3  # lint: wall-clock-ok
        tel.metrics.counter("predictor.forecast", model=model).inc()
        tel.metrics.histogram(
            "predictor.latency_ms", model=model, tau=str(horizon)
        ).observe(elapsed_ms)


def as_series(values: Sequence[float]) -> np.ndarray:
    """Validate and convert a load series to a float array."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise PredictionError(f"load series must be 1-D (got shape {arr.shape})")
    if arr.size == 0:
        raise PredictionError("load series must be non-empty")
    if np.any(~np.isfinite(arr)):
        raise PredictionError("load series contains NaN or infinite values")
    return arr


class Predictor(abc.ABC):
    """Abstract base class for time-series load predictors.

    Beyond ``fit``/``predict_horizon``, every predictor implements the
    *protocol* the rest of the system programs against:

    * ``name`` — the registry slug (``"spar"``, ``"mssa"``, ...) used as
      the model label in telemetry, chronicles and the accuracy tracker;
    * :meth:`capabilities` — declared requirements (minimum history /
      training, the largest supported tau) that callers can validate
      against instead of try/excepting;
    * :meth:`state_dict` / :meth:`restore_state` — JSON-serialisable
      checkpointing for ``pstore serve --resume``.  The default
      implementation snapshots the training window and *refits* on
      restore, which is exact because every fit in this package is
      deterministic.
    """

    #: Registry slug; the registry sets/validates this per class.
    name: str = ""

    def __init__(self) -> None:
        self._fitted = False
        #: Training series of the last ``fit`` (drives ``state_dict``).
        self._fit_series: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(
                f"{type(self).__name__} must be fitted before predicting"
            )

    # ------------------------------------------------------------------
    # Declared capabilities
    # ------------------------------------------------------------------

    @property
    def tau_max(self) -> Optional[int]:
        """Largest supported forecast offset, or ``None`` if unbounded.

        SPAR and the seasonal-naive baseline can only reach ``tau <
        period`` (their periodic term must reference observed data);
        recursive models forecast arbitrarily far.
        """
        return None

    def capabilities(self) -> dict:
        """Declared requirements callers can validate against up front."""
        return {
            "name": self.name or type(self).__name__,
            "min_history": int(getattr(self, "min_history", 1)),
            "tau_max": self.tau_max,
            "period": getattr(self, "period", None),
            "deterministic": True,
        }

    # ------------------------------------------------------------------
    # Checkpointing (``pstore serve --resume``)
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-serialisable snapshot; restored by :meth:`restore_state`.

        The default stores the training window and lets the restore
        refit — exact, because fits are deterministic.  Predictors with
        stream state (:class:`~repro.prediction.online.OnlinePredictor`)
        override both methods.
        """
        return {
            "type": type(self).__name__,
            "name": self.name,
            "fitted": bool(self._fitted),
            "fit_series": (
                [float(v) for v in self._fit_series]
                if self._fit_series is not None
                else None
            ),
        }

    def restore_state(self, doc: dict) -> None:
        """Rebuild from :meth:`state_dict` output (same predictor type)."""
        want = doc.get("type")
        have = type(self).__name__
        if want is not None and want != have:
            raise PredictionError(
                f"checkpoint was taken with predictor {want}, "
                f"cannot restore into {have}"
            )
        fit_series = doc.get("fit_series")
        if doc.get("fitted") and fit_series is not None:
            self.fit(fit_series)
        else:
            self._fitted = False
            self._fit_series = None

    @abc.abstractmethod
    def fit(self, series: Sequence[float]) -> "Predictor":
        """Fit model parameters on a training window.  Returns ``self``."""

    @abc.abstractmethod
    def predict_horizon(
        self, history: Sequence[float], horizon: int
    ) -> np.ndarray:
        """Forecast the next ``horizon`` slots given observed ``history``.

        ``history`` must include at least the model's minimum context (for
        SPAR: ``n`` periods plus ``m`` recent slots).  Returns an array of
        length ``horizon``; forecasts are clipped at zero since load cannot
        be negative.
        """

    def predict_at(
        self, series: Sequence[float], t: int, tau: int
    ) -> float:
        """Forecast the single value ``series[t + tau]`` using data up to ``t``.

        Convenience for backtesting: equivalent to slicing the history at
        ``t`` and reading entry ``tau - 1`` of :meth:`predict_horizon`.
        """
        if tau < 1:
            raise PredictionError(f"tau must be >= 1 (got {tau})")
        history = as_series(series)[: t + 1]
        return float(self.predict_horizon(history, tau)[tau - 1])

    def backtest(
        self,
        series: Sequence[float],
        tau: int,
        start: Optional[int] = None,
        stop: Optional[int] = None,
        step: int = 1,
    ) -> "BacktestResult":
        """Roll through ``series`` producing ``tau``-ahead forecasts.

        For each evaluation index ``t`` in ``[start, stop)`` (stepping by
        ``step``), forecast ``series[t]`` using only data up to
        ``t - tau``.  Returns actual/predicted pairs for error analysis
        (Figures 5 and 6 of the paper).
        """
        self._require_fitted()
        arr = as_series(series)
        if tau < 1:
            raise PredictionError(f"tau must be >= 1 (got {tau})")
        lo = tau if start is None else start
        hi = arr.size if stop is None else stop
        if not tau <= lo <= hi <= arr.size:
            raise PredictionError(
                f"invalid backtest range [{lo}, {hi}) for series of {arr.size}"
            )
        indices = list(range(lo, hi, step))
        actual = np.empty(len(indices))
        predicted = np.empty(len(indices))
        for out, t in enumerate(indices):
            history = arr[: t - tau + 1]
            predicted[out] = self.predict_horizon(history, tau)[tau - 1]
            actual[out] = arr[t]
        return BacktestResult(
            indices=np.asarray(indices), actual=actual, predicted=predicted, tau=tau
        )


class BacktestResult:
    """Actual-vs-predicted pairs produced by :meth:`Predictor.backtest`."""

    def __init__(
        self,
        indices: np.ndarray,
        actual: np.ndarray,
        predicted: np.ndarray,
        tau: int,
    ):
        self.indices = indices
        self.actual = actual
        self.predicted = predicted
        self.tau = tau

    def mean_relative_error(self) -> float:
        """MRE over all evaluation points with non-zero actual load."""
        from .metrics import mean_relative_error

        return mean_relative_error(self.actual, self.predicted)

    def __len__(self) -> int:
        return self.actual.size
