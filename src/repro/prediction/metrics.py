"""Forecast-accuracy metrics used in Section 5 of the paper.

The paper's headline metric is the *mean relative error* (MRE): the mean
of ``|predicted - actual| / actual`` over all evaluation points, which it
reports as a percentage (e.g. SPAR achieves 10.4% on B2W at tau = 60).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..errors import PredictionError
from .base import Predictor, as_series


def _paired(actual: Sequence[float], predicted: Sequence[float]):
    a = np.asarray(actual, dtype=float)
    p = np.asarray(predicted, dtype=float)
    if a.shape != p.shape:
        raise PredictionError(
            f"actual and predicted must have the same shape "
            f"({a.shape} vs {p.shape})"
        )
    if a.size == 0:
        raise PredictionError("cannot compute error of empty series")
    return a, p


def mean_relative_error(
    actual: Sequence[float], predicted: Sequence[float]
) -> float:
    """MRE as a fraction (multiply by 100 for the paper's percentages).

    Points where the actual load is zero are excluded, since relative
    error is undefined there.
    """
    a, p = _paired(actual, predicted)
    mask = a > 0
    if not np.any(mask):
        raise PredictionError("all actual values are zero; MRE undefined")
    return float(np.mean(np.abs(p[mask] - a[mask]) / a[mask]))


def mean_absolute_error(
    actual: Sequence[float], predicted: Sequence[float]
) -> float:
    a, p = _paired(actual, predicted)
    return float(np.mean(np.abs(p - a)))


def root_mean_squared_error(
    actual: Sequence[float], predicted: Sequence[float]
) -> float:
    a, p = _paired(actual, predicted)
    return float(np.sqrt(np.mean((p - a) ** 2)))


def horizon_error_sweep(
    predictor: Predictor,
    series: Sequence[float],
    taus: Sequence[int],
    start: int,
    stop: int,
    step: int = 1,
) -> Dict[int, float]:
    """MRE of ``predictor`` on ``series`` for each forecast offset in ``taus``.

    This regenerates the "prediction accuracy vs forecasting period"
    panels of Figures 5b and 6b.  ``start``/``stop`` bound the evaluation
    indices (typically the held-out window after training).
    """
    arr = as_series(series)
    results: Dict[int, float] = {}
    for tau in taus:
        result = predictor.backtest(arr, tau=tau, start=start, stop=stop, step=step)
        results[tau] = result.mean_relative_error()
    return results
