"""mSSA-style matrix-factorization predictor (the tspDB lineage).

Multivariate singular spectrum analysis treats a time series as a noisy
observation of a low-rank latent process: stack the series into a Page/
Hankel matrix, truncate its SVD to rank ``r`` to denoise, and learn a
linear recurrence on the denoised signal.  tspDB ships exactly this
model inside a database; here it is the zoo's matrix-factorization
contender against SPAR.

The implementation is the classic recurrent-SSA forecast:

1. build the ``(N - L + 1) x L`` sliding-window (Hankel) matrix of the
   training series;
2. keep the top ``rank`` singular triplets and hankelize (anti-diagonal
   average) the low-rank reconstruction back into a denoised series;
3. fit, by ridge least squares, a linear recurrence
   ``y(t) = c_0 + sum_{j=1..L-1} c_j * y(t - j)`` on the denoised
   series;
4. forecast recursively with the recurrence over the *observed* history
   tail.

With the default window ``L = period + 1`` the recurrence spans one full
season, so the model captures periodic structure without hardcoding a
fixed-phase periodic term the way SPAR does — which is exactly what lets
it track drifting periodicity.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..errors import PredictionError
from .base import Predictor, as_series, forecast_instrumentation


class MssaPredictor(Predictor):
    """Low-rank (SSA / matrix-factorization) load predictor.

    Parameters
    ----------
    period:
        slots per season; only used to pick the default ``window``.
    window:
        Hankel window length ``L`` (defaults to ``period + 1`` so the
        recurrence sees one full season of lags).
    rank:
        singular values kept in the low-rank reconstruction.
    ridge:
        L2 regularisation of the recurrence fit.
    """

    name = "mssa"

    def __init__(
        self,
        period: int,
        window: Optional[int] = None,
        rank: int = 8,
        ridge: float = 1e-4,
    ):
        super().__init__()
        if period < 2:
            raise PredictionError(f"period must be >= 2 slots (got {period})")
        if rank < 1:
            raise PredictionError(f"rank must be >= 1 (got {rank})")
        if ridge < 0:
            raise PredictionError(f"ridge must be >= 0 (got {ridge})")
        self.period = period
        self.window = int(window) if window is not None else period + 1
        if self.window < 3:
            raise PredictionError(
                f"window must be >= 3 slots (got {self.window})"
            )
        self.rank = rank
        self.ridge = ridge
        self._coeffs: Optional[np.ndarray] = None  # [c_0, c_1 .. c_{L-1}]

    @property
    def min_history(self) -> int:
        """The recurrence consumes ``L - 1`` trailing observations."""
        return self.window - 1

    def fit(self, series: Sequence[float]) -> "MssaPredictor":
        arr = as_series(series)
        length, lags = arr.size, self.window
        needed = 2 * lags
        if length < needed:
            raise PredictionError(
                f"mSSA(L={lags}) needs at least {needed} training slots "
                f"(got {length})"
            )
        # 1. Page/Hankel matrix of overlapping windows.
        page = np.lib.stride_tricks.sliding_window_view(arr, lags)
        # 2. Rank-r denoising + hankelization (anti-diagonal averages).
        u, s, vt = np.linalg.svd(page, full_matrices=False)
        r = min(self.rank, s.size)
        low = (u[:, :r] * s[:r]) @ vt[:r]
        sums = np.zeros(length)
        counts = np.zeros(length)
        rows = page.shape[0]
        for col in range(lags):
            sums[col : col + rows] += low[:, col]
            counts[col : col + rows] += 1.0
        denoised = sums / counts
        # 3. Ridge-fit the linear recurrence on the denoised series.
        lagged = np.lib.stride_tricks.sliding_window_view(denoised, lags)
        design = np.concatenate(
            # newest lag first: column j holds y(t - (j+1))
            [np.ones((lagged.shape[0], 1)), lagged[:, -2::-1]],
            axis=1,
        )
        targets = lagged[:, -1]
        gram = design.T @ design + self.ridge * np.eye(lags)
        self._coeffs = np.linalg.solve(gram, design.T @ targets)
        self._fit_series = arr
        self._fitted = True
        return self

    def predict_horizon(
        self, history: Sequence[float], horizon: int
    ) -> np.ndarray:
        self._require_fitted()
        if horizon < 1:
            raise PredictionError(f"horizon must be >= 1 (got {horizon})")
        arr = as_series(history)
        if arr.size < self.min_history:
            raise PredictionError(
                f"history of {arr.size} slots is shorter than the minimum "
                f"context of {self.min_history}"
            )
        assert self._coeffs is not None
        with forecast_instrumentation("mssa", horizon):
            intercept = self._coeffs[0]
            weights = self._coeffs[1:]
            n_lags = weights.size
            # Newest last; each step feeds the forecast back in.
            buffer = list(arr[-n_lags:])
            out = np.empty(horizon)
            for step in range(horizon):
                value = intercept + sum(
                    weights[j] * buffer[-1 - j] for j in range(n_lags)
                )
                # Clip inside the recursion: load is non-negative and an
                # unstable recurrence must not feed back growing negatives.
                value = max(float(value), 0.0)
                out[step] = value
                buffer.append(value)
                buffer.pop(0)
            return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MssaPredictor(window={self.window}, rank={self.rank}, "
            f"fitted={self._fitted})"
        )
