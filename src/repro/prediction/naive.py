"""Trivial predictors used as sanity baselines and in ablations.

* :class:`SeasonalNaivePredictor` — "same time yesterday/last week":
  ``y(t + tau) = y(t + tau - T)``.
* :class:`LastValuePredictor` — "the load will stay where it is":
  ``y(t + tau) = y(t)``.

Neither has parameters to fit, but both follow the common
:class:`~repro.prediction.base.Predictor` contract so they can be swapped
into the controller and the evaluation harness.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import PredictionError
from .base import Predictor, as_series


class SeasonalNaivePredictor(Predictor):
    """Repeat the value observed one period earlier.

    Parameters
    ----------
    period:
        slots per period ``T``.
    """

    name = "seasonal"

    def __init__(self, period: int):
        super().__init__()
        if period < 1:
            raise PredictionError(f"period must be >= 1 (got {period})")
        self.period = period

    @property
    def min_history(self) -> int:
        return self.period

    @property
    def tau_max(self) -> int:
        """Repeating last period's value needs ``tau < period``."""
        return self.period - 1

    def fit(self, series: Sequence[float]) -> "SeasonalNaivePredictor":
        self._fit_series = as_series(series)  # validate; nothing to learn
        self._fitted = True
        return self

    def predict_horizon(
        self, history: Sequence[float], horizon: int
    ) -> np.ndarray:
        self._require_fitted()
        if horizon < 1:
            raise PredictionError(f"horizon must be >= 1 (got {horizon})")
        if horizon >= self.period:
            raise PredictionError(
                f"horizon must be < period={self.period} (got {horizon})"
            )
        arr = as_series(history)
        if arr.size < self.period:
            raise PredictionError(
                f"history of {arr.size} slots is shorter than period {self.period}"
            )
        t = arr.size - 1
        out = np.array(
            [arr[t + tau - self.period] for tau in range(1, horizon + 1)]
        )
        return np.clip(out, 0.0, None)


class LastValuePredictor(Predictor):
    """Forecast every future slot as the most recent observation."""

    name = "naive"

    def __init__(self) -> None:
        super().__init__()

    @property
    def min_history(self) -> int:
        return 1

    def fit(self, series: Sequence[float]) -> "LastValuePredictor":
        self._fit_series = as_series(series)
        self._fitted = True
        return self

    def predict_horizon(
        self, history: Sequence[float], horizon: int
    ) -> np.ndarray:
        self._require_fitted()
        if horizon < 1:
            raise PredictionError(f"horizon must be >= 1 (got {horizon})")
        arr = as_series(history)
        return np.full(horizon, max(arr[-1], 0.0))
