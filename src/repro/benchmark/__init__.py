"""The B2W online-retail benchmark (Section 7 and Appendix C)."""

from .driver import DEFAULT_ACTION_WEIGHTS, B2WDriver
from .loader import (
    cart_id,
    checkout_id,
    customer_id,
    load_b2w_data,
    sku_id,
)
from .schema import (
    CART_STATUSES,
    CART_TABLE,
    CHECKOUT_STATUSES,
    CHECKOUT_TABLE,
    STOCK_TABLE,
    STOCK_TRANSACTION_TABLE,
    STOCK_TXN_STATUSES,
    b2w_schema,
)
from .transactions import ALL_PROCEDURES

__all__ = [
    "ALL_PROCEDURES",
    "B2WDriver",
    "CART_STATUSES",
    "CART_TABLE",
    "CHECKOUT_STATUSES",
    "CHECKOUT_TABLE",
    "DEFAULT_ACTION_WEIGHTS",
    "STOCK_TABLE",
    "STOCK_TRANSACTION_TABLE",
    "STOCK_TXN_STATUSES",
    "b2w_schema",
    "cart_id",
    "checkout_id",
    "customer_id",
    "load_b2w_data",
    "sku_id",
]
