"""Initial data loading for the B2W benchmark.

Populates the stock catalogue and a base population of active carts and
checkouts, sized so the resident data volume approximates the paper's
1106 MB of "active shopping carts and checkouts" at full scale (the
loader scales linearly, so tests load tiny databases with the same code).
"""

from __future__ import annotations


import numpy as np

from ..errors import SimulationError
from ..hstore.cluster import Cluster


def sku_id(index: int) -> str:
    return f"SKU-{index:08d}"


def cart_id(index: int) -> str:
    return f"CART-{index:012d}"


def checkout_id(index: int) -> str:
    return f"CHK-{index:012d}"


def customer_id(index: int) -> str:
    return f"CUST-{index:08d}"


def load_b2w_data(
    cluster: Cluster,
    n_stock: int = 1000,
    n_carts: int = 2000,
    n_checkouts: int = 200,
    seed: int = 17,
    max_lines_per_cart: int = 5,
) -> None:
    """Load stock, carts and checkouts into an (empty) cluster."""
    if n_stock < 1:
        raise SimulationError("need at least one SKU")
    rng = np.random.default_rng(seed)

    for i in range(n_stock):
        cluster.insert(
            "stock",
            {
                "sku": sku_id(i),
                "warehouse": f"WH-{i % 7}",
                "quantity": int(rng.integers(10, 500)),
                "reserved": 0,
                "updated_at": 0.0,
            },
        )

    for i in range(n_carts):
        n_lines = int(rng.integers(1, max_lines_per_cart + 1))
        lines = [
            {
                "sku": sku_id(int(rng.integers(0, n_stock))),
                "quantity": int(rng.integers(1, 4)),
                "unit_price": round(float(rng.uniform(5.0, 400.0)), 2),
            }
            for _ in range(n_lines)
        ]
        cluster.insert(
            "cart",
            {
                "cart_id": cart_id(i),
                "customer_id": customer_id(int(rng.integers(0, max(1, n_carts // 3)))),
                "lines": lines,
                "status": "active",
                "total": sum(l["quantity"] * l["unit_price"] for l in lines),
                "created_at": 0.0,
                "updated_at": 0.0,
            },
        )

    for i in range(n_checkouts):
        source_cart = cart_id(int(rng.integers(0, max(1, n_carts))))
        lines = [
            {
                "sku": sku_id(int(rng.integers(0, n_stock))),
                "quantity": 1,
                "unit_price": round(float(rng.uniform(5.0, 400.0)), 2),
            }
        ]
        cluster.insert(
            "checkout",
            {
                "checkout_id": checkout_id(i),
                "cart_id": source_cart,
                "customer_id": customer_id(int(rng.integers(0, max(1, n_carts // 3)))),
                "lines": lines,
                "payment": None,
                "status": "open",
                "total": sum(l["quantity"] * l["unit_price"] for l in lines),
                "created_at": 0.0,
            },
        )
