"""The B2W benchmark schema (Figure 14 and Appendix C of the paper).

Four tables back the online-retail workload:

* ``cart`` — active shopping carts; one row per cart, lines embedded as
  a JSON list (the production system is a key-value store keyed by cart
  id, which this mirrors);
* ``checkout`` — checkout documents created when a customer begins
  paying; keyed by checkout id and carrying the cart id, payment info
  and the purchased lines;
* ``stock`` — inventory per SKU: available and reserved quantities;
* ``stock_transaction`` — reservation records linking carts to stock.

Every table is partitioned by its primary key; each benchmark
transaction touches exactly one partitioning key, matching the paper's
observation that the B2W workload is single-key (Sec. 7).
"""

from __future__ import annotations

from ..hstore.catalog import Column, Schema, Table

#: Cart / checkout rows dominate the paper's 1106 MB database of
#: "active shopping carts and checkouts"; row weights below give each
#: table a realistic share of the migrated volume.
CART_TABLE = Table(
    name="cart",
    columns=[
        Column("cart_id", "str"),
        Column("customer_id", "str"),
        Column("lines", "json"),           # [{sku, quantity, unit_price}]
        Column("status", "str"),           # active | reserved | checked_out
        Column("total", "float"),
        Column("created_at", "float"),
        Column("updated_at", "float"),
    ],
    primary_key="cart_id",
    avg_row_kb=2.0,
)

CHECKOUT_TABLE = Table(
    name="checkout",
    columns=[
        Column("checkout_id", "str"),
        Column("cart_id", "str"),
        Column("customer_id", "str"),
        Column("lines", "json"),
        Column("payment", "json", nullable=True),
        Column("status", "str"),           # open | paid | cancelled
        Column("total", "float"),
        Column("created_at", "float"),
    ],
    primary_key="checkout_id",
    avg_row_kb=2.5,
)

STOCK_TABLE = Table(
    name="stock",
    columns=[
        Column("sku", "str"),
        Column("warehouse", "str"),
        Column("quantity", "int"),
        Column("reserved", "int"),
        Column("updated_at", "float"),
    ],
    primary_key="sku",
    avg_row_kb=0.5,
)

STOCK_TRANSACTION_TABLE = Table(
    name="stock_transaction",
    columns=[
        Column("transaction_id", "str"),
        Column("sku", "str"),
        Column("cart_id", "str"),
        Column("quantity", "int"),
        Column("status", "str"),           # reserved | purchased | cancelled
        Column("created_at", "float"),
    ],
    primary_key="transaction_id",
    avg_row_kb=0.5,
)


def b2w_schema() -> Schema:
    """The full B2W benchmark schema."""
    return Schema(
        [CART_TABLE, CHECKOUT_TABLE, STOCK_TABLE, STOCK_TRANSACTION_TABLE],
        name="b2w",
    )


#: Valid state machines, used by transactions to reject illegal moves.
CART_STATUSES = ("active", "reserved", "checked_out")
CHECKOUT_STATUSES = ("open", "paid", "cancelled")
STOCK_TXN_STATUSES = ("reserved", "purchased", "cancelled")
