"""All nineteen B2W benchmark transactions (Table 4 of the paper).

Each class implements one stored procedure with the business logic the
appendix describes: carts accumulate lines, checkout reserves stock item
by item, reservations become purchases or are cancelled and released.
Every procedure routes by a single partitioning key — cart id, checkout
id, SKU, or stock-transaction id — keeping the workload single-key.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

from ..errors import TransactionAbort
from ..hstore.txn import StoredProcedure, TxnContext

# ----------------------------------------------------------------------
# Cart transactions
# ----------------------------------------------------------------------


class AddLineToCart(StoredProcedure):
    """Add an item to a shopping cart, creating the cart if needed."""

    name = "AddLineToCart"
    cost_weight = 1.2

    def routing_key(self, params: Mapping[str, Any]) -> Any:
        return params["cart_id"]

    def run(self, ctx: TxnContext, params: Mapping[str, Any]) -> Dict[str, Any]:
        cart = ctx.get("cart", params["cart_id"])
        line = {
            "sku": params["sku"],
            "quantity": int(params.get("quantity", 1)),
            "unit_price": float(params.get("unit_price", 0.0)),
        }
        if line["quantity"] < 1:
            raise TransactionAbort("quantity must be >= 1")
        now = float(params.get("now", 0.0))
        if cart is None:
            cart = {
                "cart_id": params["cart_id"],
                "customer_id": params.get("customer_id", "anonymous"),
                "lines": [line],
                "status": "active",
                "total": line["quantity"] * line["unit_price"],
                "created_at": now,
                "updated_at": now,
            }
            ctx.insert("cart", cart)
            return cart
        if cart["status"] != "active":
            raise TransactionAbort(
                f"cart {params['cart_id']!r} is {cart['status']}, not active"
            )
        lines: List[Dict[str, Any]] = list(cart["lines"])
        for existing in lines:
            if existing["sku"] == line["sku"]:
                existing["quantity"] += line["quantity"]
                break
        else:
            lines.append(line)
        total = sum(l["quantity"] * l["unit_price"] for l in lines)
        ctx.update(
            "cart",
            params["cart_id"],
            {"lines": lines, "total": total, "updated_at": now},
        )
        cart.update(lines=lines, total=total, updated_at=now)
        return cart


class DeleteLineFromCart(StoredProcedure):
    """Remove one item from a cart."""

    name = "DeleteLineFromCart"

    def routing_key(self, params: Mapping[str, Any]) -> Any:
        return params["cart_id"]

    def run(self, ctx: TxnContext, params: Mapping[str, Any]) -> Dict[str, Any]:
        cart = ctx.require("cart", params["cart_id"])
        if cart["status"] != "active":
            raise TransactionAbort("only active carts can be edited")
        lines = [l for l in cart["lines"] if l["sku"] != params["sku"]]
        if len(lines) == len(cart["lines"]):
            raise TransactionAbort(
                f"sku {params['sku']!r} is not in cart {params['cart_id']!r}"
            )
        total = sum(l["quantity"] * l["unit_price"] for l in lines)
        now = float(params.get("now", 0.0))
        ctx.update(
            "cart",
            params["cart_id"],
            {"lines": lines, "total": total, "updated_at": now},
        )
        cart.update(lines=lines, total=total, updated_at=now)
        return cart


class GetCart(StoredProcedure):
    """Retrieve the items currently in a cart."""

    name = "GetCart"
    read_only = True
    cost_weight = 0.8

    def routing_key(self, params: Mapping[str, Any]) -> Any:
        return params["cart_id"]

    def run(self, ctx: TxnContext, params: Mapping[str, Any]) -> Dict[str, Any]:
        return ctx.require("cart", params["cart_id"])


class DeleteCart(StoredProcedure):
    """Delete a shopping cart (abandonment or post-purchase cleanup)."""

    name = "DeleteCart"

    def routing_key(self, params: Mapping[str, Any]) -> Any:
        return params["cart_id"]

    def run(self, ctx: TxnContext, params: Mapping[str, Any]) -> bool:
        if not ctx.delete("cart", params["cart_id"]):
            raise TransactionAbort(f"no cart {params['cart_id']!r}")
        return True


class ReserveCart(StoredProcedure):
    """Mark the items in a cart as reserved before payment."""

    name = "ReserveCart"

    def routing_key(self, params: Mapping[str, Any]) -> Any:
        return params["cart_id"]

    def run(self, ctx: TxnContext, params: Mapping[str, Any]) -> Dict[str, Any]:
        cart = ctx.require("cart", params["cart_id"])
        if cart["status"] != "active":
            raise TransactionAbort(
                f"cart {params['cart_id']!r} is {cart['status']}, not active"
            )
        if not cart["lines"]:
            raise TransactionAbort("cannot reserve an empty cart")
        now = float(params.get("now", 0.0))
        ctx.update(
            "cart", params["cart_id"], {"status": "reserved", "updated_at": now}
        )
        cart.update(status="reserved", updated_at=now)
        return cart


# ----------------------------------------------------------------------
# Stock transactions
# ----------------------------------------------------------------------


class GetStock(StoredProcedure):
    """Retrieve the full stock record for a SKU."""

    name = "GetStock"
    read_only = True
    cost_weight = 0.8

    def routing_key(self, params: Mapping[str, Any]) -> Any:
        return params["sku"]

    def run(self, ctx: TxnContext, params: Mapping[str, Any]) -> Dict[str, Any]:
        return ctx.require("stock", params["sku"])


class GetStockQuantity(StoredProcedure):
    """Determine how many units of a SKU are available."""

    name = "GetStockQuantity"
    read_only = True
    cost_weight = 0.8

    def routing_key(self, params: Mapping[str, Any]) -> Any:
        return params["sku"]

    def run(self, ctx: TxnContext, params: Mapping[str, Any]) -> int:
        stock = ctx.require("stock", params["sku"])
        return int(stock["quantity"]) - int(stock["reserved"])


class ReserveStock(StoredProcedure):
    """Reserve units of a SKU for a checkout in progress."""

    name = "ReserveStock"
    cost_weight = 1.2

    def routing_key(self, params: Mapping[str, Any]) -> Any:
        return params["sku"]

    def run(self, ctx: TxnContext, params: Mapping[str, Any]) -> Dict[str, Any]:
        stock = ctx.require("stock", params["sku"])
        quantity = int(params.get("quantity", 1))
        if quantity < 1:
            raise TransactionAbort("quantity must be >= 1")
        available = int(stock["quantity"]) - int(stock["reserved"])
        if available < quantity:
            raise TransactionAbort(
                f"sku {params['sku']!r}: {available} available, "
                f"{quantity} requested"
            )
        now = float(params.get("now", 0.0))
        reserved = int(stock["reserved"]) + quantity
        ctx.update(
            "stock", params["sku"], {"reserved": reserved, "updated_at": now}
        )
        stock.update(reserved=reserved, updated_at=now)
        return stock


class PurchaseStock(StoredProcedure):
    """Convert a reservation into a purchase (decrement inventory)."""

    name = "PurchaseStock"
    cost_weight = 1.2

    def routing_key(self, params: Mapping[str, Any]) -> Any:
        return params["sku"]

    def run(self, ctx: TxnContext, params: Mapping[str, Any]) -> Dict[str, Any]:
        stock = ctx.require("stock", params["sku"])
        quantity = int(params.get("quantity", 1))
        if int(stock["reserved"]) < quantity:
            raise TransactionAbort(
                f"sku {params['sku']!r}: cannot purchase {quantity} with only "
                f"{stock['reserved']} reserved"
            )
        now = float(params.get("now", 0.0))
        changes = {
            "reserved": int(stock["reserved"]) - quantity,
            "quantity": int(stock["quantity"]) - quantity,
            "updated_at": now,
        }
        if changes["quantity"] < 0:
            raise TransactionAbort("inventory cannot go negative")
        ctx.update("stock", params["sku"], changes)
        stock.update(**changes)
        return stock


class CancelStockReservation(StoredProcedure):
    """Release a reservation, making the units available again."""

    name = "CancelStockReservation"

    def routing_key(self, params: Mapping[str, Any]) -> Any:
        return params["sku"]

    def run(self, ctx: TxnContext, params: Mapping[str, Any]) -> Dict[str, Any]:
        stock = ctx.require("stock", params["sku"])
        quantity = int(params.get("quantity", 1))
        if int(stock["reserved"]) < quantity:
            raise TransactionAbort(
                f"sku {params['sku']!r}: only {stock['reserved']} reserved"
            )
        now = float(params.get("now", 0.0))
        reserved = int(stock["reserved"]) - quantity
        ctx.update(
            "stock", params["sku"], {"reserved": reserved, "updated_at": now}
        )
        stock.update(reserved=reserved, updated_at=now)
        return stock


# ----------------------------------------------------------------------
# Stock-transaction bookkeeping
# ----------------------------------------------------------------------


class CreateStockTransaction(StoredProcedure):
    """Record that an item in a cart has been reserved."""

    name = "CreateStockTransaction"

    def routing_key(self, params: Mapping[str, Any]) -> Any:
        return params["transaction_id"]

    def run(self, ctx: TxnContext, params: Mapping[str, Any]) -> Dict[str, Any]:
        row = {
            "transaction_id": params["transaction_id"],
            "sku": params["sku"],
            "cart_id": params["cart_id"],
            "quantity": int(params.get("quantity", 1)),
            "status": "reserved",
            "created_at": float(params.get("now", 0.0)),
        }
        ctx.insert("stock_transaction", row)
        return row


class GetStockTransaction(StoredProcedure):
    """Retrieve a stock transaction."""

    name = "GetStockTransaction"
    read_only = True
    cost_weight = 0.8

    def routing_key(self, params: Mapping[str, Any]) -> Any:
        return params["transaction_id"]

    def run(self, ctx: TxnContext, params: Mapping[str, Any]) -> Dict[str, Any]:
        return ctx.require("stock_transaction", params["transaction_id"])


class UpdateStockTransaction(StoredProcedure):
    """Mark a stock transaction purchased or cancelled."""

    name = "UpdateStockTransaction"

    def routing_key(self, params: Mapping[str, Any]) -> Any:
        return params["transaction_id"]

    def run(self, ctx: TxnContext, params: Mapping[str, Any]) -> Dict[str, Any]:
        row = ctx.require("stock_transaction", params["transaction_id"])
        status = params["status"]
        if status not in ("purchased", "cancelled"):
            raise TransactionAbort(f"illegal stock-transaction status {status!r}")
        if row["status"] != "reserved":
            raise TransactionAbort(
                f"stock transaction {params['transaction_id']!r} is "
                f"{row['status']}; only reserved ones can change"
            )
        ctx.update("stock_transaction", params["transaction_id"], {"status": status})
        row["status"] = status
        return row


# ----------------------------------------------------------------------
# Checkout transactions
# ----------------------------------------------------------------------


class CreateCheckout(StoredProcedure):
    """Start the checkout process for a cart's contents."""

    name = "CreateCheckout"
    cost_weight = 1.4

    def routing_key(self, params: Mapping[str, Any]) -> Any:
        return params["checkout_id"]

    def run(self, ctx: TxnContext, params: Mapping[str, Any]) -> Dict[str, Any]:
        lines = list(params.get("lines", []))
        row = {
            "checkout_id": params["checkout_id"],
            "cart_id": params["cart_id"],
            "customer_id": params.get("customer_id", "anonymous"),
            "lines": lines,
            "payment": None,
            "status": "open",
            "total": sum(
                l["quantity"] * l["unit_price"] for l in lines
            ),
            "created_at": float(params.get("now", 0.0)),
        }
        ctx.insert("checkout", row)
        return row


class CreateCheckoutPayment(StoredProcedure):
    """Attach payment information to a checkout."""

    name = "CreateCheckoutPayment"

    def routing_key(self, params: Mapping[str, Any]) -> Any:
        return params["checkout_id"]

    def run(self, ctx: TxnContext, params: Mapping[str, Any]) -> Dict[str, Any]:
        checkout = ctx.require("checkout", params["checkout_id"])
        if checkout["status"] != "open":
            raise TransactionAbort("payment allowed only on open checkouts")
        payment = dict(params["payment"])
        ctx.update("checkout", params["checkout_id"], {"payment": payment})
        checkout["payment"] = payment
        return checkout


class AddLineToCheckout(StoredProcedure):
    """Add an item to an open checkout."""

    name = "AddLineToCheckout"

    def routing_key(self, params: Mapping[str, Any]) -> Any:
        return params["checkout_id"]

    def run(self, ctx: TxnContext, params: Mapping[str, Any]) -> Dict[str, Any]:
        checkout = ctx.require("checkout", params["checkout_id"])
        if checkout["status"] != "open":
            raise TransactionAbort("only open checkouts can be edited")
        line = {
            "sku": params["sku"],
            "quantity": int(params.get("quantity", 1)),
            "unit_price": float(params.get("unit_price", 0.0)),
        }
        lines = list(checkout["lines"]) + [line]
        total = sum(l["quantity"] * l["unit_price"] for l in lines)
        ctx.update(
            "checkout", params["checkout_id"], {"lines": lines, "total": total}
        )
        checkout.update(lines=lines, total=total)
        return checkout


class DeleteLineFromCheckout(StoredProcedure):
    """Remove an item from an open checkout (e.g. it went out of stock)."""

    name = "DeleteLineFromCheckout"

    def routing_key(self, params: Mapping[str, Any]) -> Any:
        return params["checkout_id"]

    def run(self, ctx: TxnContext, params: Mapping[str, Any]) -> Dict[str, Any]:
        checkout = ctx.require("checkout", params["checkout_id"])
        if checkout["status"] != "open":
            raise TransactionAbort("only open checkouts can be edited")
        lines = [l for l in checkout["lines"] if l["sku"] != params["sku"]]
        if len(lines) == len(checkout["lines"]):
            raise TransactionAbort(
                f"sku {params['sku']!r} is not in checkout "
                f"{params['checkout_id']!r}"
            )
        total = sum(l["quantity"] * l["unit_price"] for l in lines)
        ctx.update(
            "checkout", params["checkout_id"], {"lines": lines, "total": total}
        )
        checkout.update(lines=lines, total=total)
        return checkout


class GetCheckout(StoredProcedure):
    """Retrieve a checkout document."""

    name = "GetCheckout"
    read_only = True
    cost_weight = 0.8

    def routing_key(self, params: Mapping[str, Any]) -> Any:
        return params["checkout_id"]

    def run(self, ctx: TxnContext, params: Mapping[str, Any]) -> Dict[str, Any]:
        return ctx.require("checkout", params["checkout_id"])


class DeleteCheckout(StoredProcedure):
    """Delete a checkout document."""

    name = "DeleteCheckout"

    def routing_key(self, params: Mapping[str, Any]) -> Any:
        return params["checkout_id"]

    def run(self, ctx: TxnContext, params: Mapping[str, Any]) -> bool:
        if not ctx.delete("checkout", params["checkout_id"]):
            raise TransactionAbort(f"no checkout {params['checkout_id']!r}")
        return True


#: All nineteen procedures of Table 4, keyed by name.
ALL_PROCEDURES = {
    proc.name: proc
    for proc in (
        AddLineToCart(),
        DeleteLineFromCart(),
        GetCart(),
        DeleteCart(),
        GetStock(),
        GetStockQuantity(),
        ReserveStock(),
        PurchaseStock(),
        CancelStockReservation(),
        CreateStockTransaction(),
        ReserveCart(),
        GetStockTransaction(),
        UpdateStockTransaction(),
        CreateCheckout(),
        CreateCheckoutPayment(),
        AddLineToCheckout(),
        DeleteLineFromCheckout(),
        GetCheckout(),
        DeleteCheckout(),
    )
}
