"""Trace-driven workload driver for the B2W benchmark.

The paper replays B2W's production logs; without those logs we generate
statistically equivalent traffic: an open-loop stream whose aggregate
rate follows a :class:`~repro.workload.trace.LoadTrace` and whose
transactions follow realistic retail sessions — browsing stock, editing
carts, and multi-step checkout flows that reserve stock, collect payment
and purchase (or cancel).  Keys are uniformly random, matching the
paper's finding of minimal partition skew (Sec. 8.1).

All nineteen procedures of Table 4 are exercised.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import SimulationError
from ..hstore.engine import TransactionExecutor
from ..hstore.txn import Transaction, TxnResult
from ..workload.trace import LoadTrace
from .loader import cart_id, checkout_id, customer_id, sku_id
from .transactions import ALL_PROCEDURES

#: Relative frequencies of the driver's session actions.  Composite
#: actions (checkout, cancel) expand into several transactions.
DEFAULT_ACTION_WEIGHTS = {
    "browse": 0.32,
    "add_line": 0.24,
    "get_cart": 0.16,
    "delete_line": 0.04,
    "delete_cart": 0.03,
    "checkout": 0.07,
    "checkout_edit": 0.06,
    "cancel_reservation": 0.04,
    "stock_read": 0.04,
}


class B2WDriver:
    """Generates and executes B2W transactions against an executor."""

    def __init__(
        self,
        executor: TransactionExecutor,
        n_stock: int,
        seed: int = 29,
        action_weights: Optional[Dict[str, float]] = None,
        first_cart_index: int = 10_000_000,
    ):
        if n_stock < 1:
            raise SimulationError("n_stock must be >= 1")
        self.executor = executor
        self.n_stock = n_stock
        self._rng = np.random.default_rng(seed)
        weights = dict(action_weights or DEFAULT_ACTION_WEIGHTS)
        unknown = set(weights) - set(DEFAULT_ACTION_WEIGHTS)
        if unknown:
            raise SimulationError(f"unknown driver actions {sorted(unknown)}")
        total = sum(weights.values())
        if total <= 0:
            raise SimulationError("action weights must sum to > 0")
        self._actions = list(weights)
        self._action_p = np.array([weights[a] / total for a in self._actions])
        self._next_cart = first_cart_index
        self._next_checkout = first_cart_index
        self._next_stock_txn = first_cart_index
        # Pools of live entities the driver can legally operate on.
        self._active_carts: List[str] = []
        self._cart_lines: Dict[str, List[dict]] = {}
        self._open_checkouts: List[str] = []
        self._reservations: List[Tuple[str, str, int]] = []  # (txn_id, sku, qty)
        self.txn_counts: Counter = Counter()
        self.aborts = 0

    # ------------------------------------------------------------------
    # Transaction emission
    # ------------------------------------------------------------------

    def _random_sku(self) -> str:
        return sku_id(int(self._rng.integers(0, self.n_stock)))

    def _submit(self, name: str, params: dict, now: float) -> TxnResult:
        txn = Transaction(
            procedure=ALL_PROCEDURES[name],
            params={**params, "now": now},
            submit_time=now,
        )
        result = self.executor.execute(txn)
        self.txn_counts[name] += 1
        if not result.committed:
            self.aborts += 1
        return result

    def _new_cart_id(self) -> str:
        self._next_cart += 1
        return cart_id(self._next_cart)

    def _action_browse(self, now: float) -> None:
        sku = self._random_sku()
        self._submit("GetStockQuantity", {"sku": sku}, now)

    def _action_stock_read(self, now: float) -> None:
        self._submit("GetStock", {"sku": self._random_sku()}, now)
        if self._reservations and self._rng.random() < 0.5:
            txn_id, _, _ = self._reservations[
                int(self._rng.integers(0, len(self._reservations)))
            ]
            self._submit("GetStockTransaction", {"transaction_id": txn_id}, now)

    def _action_add_line(self, now: float) -> None:
        # 40% of adds open a brand-new cart; the rest grow existing ones.
        if not self._active_carts or self._rng.random() < 0.4:
            cart = self._new_cart_id()
            self._active_carts.append(cart)
            self._cart_lines[cart] = []
        else:
            cart = self._choice(self._active_carts)
        sku = self._random_sku()
        line = {
            "sku": sku,
            "quantity": int(self._rng.integers(1, 3)),
            "unit_price": round(float(self._rng.uniform(5.0, 400.0)), 2),
        }
        result = self._submit(
            "AddLineToCart",
            {
                "cart_id": cart,
                "customer_id": customer_id(int(self._rng.integers(0, 100_000))),
                **line,
            },
            now,
        )
        if result.committed:
            self._cart_lines.setdefault(cart, []).append(line)

    def _action_get_cart(self, now: float) -> None:
        if not self._active_carts:
            return self._action_add_line(now)
        self._submit("GetCart", {"cart_id": self._choice(self._active_carts)}, now)

    def _action_delete_line(self, now: float) -> None:
        candidates = [c for c in self._active_carts if self._cart_lines.get(c)]
        if not candidates:
            return self._action_add_line(now)
        cart = self._choice(candidates)
        line = self._cart_lines[cart][-1]
        result = self._submit(
            "DeleteLineFromCart", {"cart_id": cart, "sku": line["sku"]}, now
        )
        if result.committed:
            self._cart_lines[cart] = [
                l for l in self._cart_lines[cart] if l["sku"] != line["sku"]
            ]

    def _action_delete_cart(self, now: float) -> None:
        if not self._active_carts:
            return self._action_browse(now)
        cart = self._choice(self._active_carts)
        result = self._submit("DeleteCart", {"cart_id": cart}, now)
        if result.committed:
            self._forget_cart(cart)

    def _action_checkout(self, now: float) -> None:
        """The full purchase flow of Appendix C."""
        candidates = [c for c in self._active_carts if self._cart_lines.get(c)]
        if not candidates:
            return self._action_add_line(now)
        cart = self._choice(candidates)
        lines = list(self._cart_lines[cart])
        self._submit("ReserveCart", {"cart_id": cart}, now)

        reserved: List[Tuple[str, dict]] = []
        for line in lines:
            result = self._submit(
                "ReserveStock",
                {"sku": line["sku"], "quantity": line["quantity"]},
                now,
            )
            if not result.committed:
                continue  # out of stock: the line is dropped from the order
            self._next_stock_txn += 1
            txn_id = f"STXN-{self._next_stock_txn:012d}"
            self._submit(
                "CreateStockTransaction",
                {
                    "transaction_id": txn_id,
                    "sku": line["sku"],
                    "cart_id": cart,
                    "quantity": line["quantity"],
                },
                now,
            )
            reserved.append((txn_id, line))

        if not reserved:
            return self._forget_cart(cart)

        self._next_checkout += 1
        chk = checkout_id(self._next_checkout)
        self._submit(
            "CreateCheckout",
            {
                "checkout_id": chk,
                "cart_id": cart,
                "lines": [line for _, line in reserved],
            },
            now,
        )
        self._submit(
            "CreateCheckoutPayment",
            {
                "checkout_id": chk,
                "payment": {"method": "credit-card", "installments": 3},
            },
            now,
        )
        for txn_id, line in reserved:
            self._submit(
                "UpdateStockTransaction",
                {"transaction_id": txn_id, "status": "purchased"},
                now,
            )
            self._submit(
                "PurchaseStock",
                {"sku": line["sku"], "quantity": line["quantity"]},
                now,
            )
        self._submit("DeleteCart", {"cart_id": cart}, now)
        self._forget_cart(cart)
        self._open_checkouts.append(chk)

    def _action_checkout_edit(self, now: float) -> None:
        if not self._open_checkouts:
            return self._action_checkout(now)
        chk = self._choice(self._open_checkouts)
        roll = self._rng.random()
        if roll < 0.4:
            self._submit("GetCheckout", {"checkout_id": chk}, now)
        elif roll < 0.7:
            self._submit(
                "AddLineToCheckout",
                {
                    "checkout_id": chk,
                    "sku": self._random_sku(),
                    "quantity": 1,
                    "unit_price": round(float(self._rng.uniform(5.0, 400.0)), 2),
                },
                now,
            )
        elif roll < 0.85:
            result = self._submit("DeleteCheckout", {"checkout_id": chk}, now)
            if result.committed:
                self._open_checkouts.remove(chk)
        else:
            # Editing a paid checkout may legitimately abort; ignore.
            self._submit(
                "DeleteLineFromCheckout",
                {"checkout_id": chk, "sku": self._random_sku()},
                now,
            )

    def _action_cancel_reservation(self, now: float) -> None:
        """Reserve stock and then release it (abandoned checkout)."""
        sku = self._random_sku()
        result = self._submit("ReserveStock", {"sku": sku, "quantity": 1}, now)
        if not result.committed:
            return
        self._next_stock_txn += 1
        txn_id = f"STXN-{self._next_stock_txn:012d}"
        self._submit(
            "CreateStockTransaction",
            {
                "transaction_id": txn_id,
                "sku": sku,
                "cart_id": self._new_cart_id(),
                "quantity": 1,
            },
            now,
        )
        self._submit(
            "UpdateStockTransaction",
            {"transaction_id": txn_id, "status": "cancelled"},
            now,
        )
        self._submit(
            "CancelStockReservation", {"sku": sku, "quantity": 1}, now
        )
        self._reservations.append((txn_id, sku, 1))

    def _forget_cart(self, cart: str) -> None:
        if cart in self._active_carts:
            self._active_carts.remove(cart)
        self._cart_lines.pop(cart, None)

    def _choice(self, pool: List[str]) -> str:
        return pool[int(self._rng.integers(0, len(pool)))]

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def run_second(self, now: float, rate_tps: float) -> int:
        """Issue roughly ``rate_tps`` transactions for second ``now``.

        The action mix expands composite flows, so the realised count can
        exceed the nominal rate slightly; the count of executed
        transactions is returned.
        """
        if rate_tps < 0:
            raise SimulationError("rate must be non-negative")
        before = sum(self.txn_counts.values())
        target = int(self._rng.poisson(rate_tps))
        while sum(self.txn_counts.values()) - before < target:
            action = self._actions[
                int(self._rng.choice(len(self._actions), p=self._action_p))
            ]
            getattr(self, f"_action_{action}")(now)
        return sum(self.txn_counts.values()) - before

    def run_trace(self, trace: LoadTrace, max_seconds: Optional[int] = None) -> int:
        """Replay a trace second by second; returns transactions executed."""
        rates = trace.per_second_rates()
        if max_seconds is not None:
            rates = rates[:max_seconds]
        executed = 0
        for second, rate in enumerate(rates):
            executed += self.run_second(float(second), float(rate))
        return executed
