"""Structured event log: the provisioning audit trail as JSONL rows.

Every provisioning action, interval measurement, and forecast is one
flat dict with a ``kind``, a monotone sequence number, an optional
simulated ``time``, and free-form fields.  This subsumes
:class:`repro.core.service.ServiceEvent` (kept for backwards
compatibility) and extends it to the simulators, which previously had
no audit trail at all.

Well-known kinds (see docs/OBSERVABILITY.md for schemas):

``interval``
    one closed measurement interval: ``slot``, ``tps``;
``forecast``
    one controller forecast: ``history_len``, ``measured_now``,
    ``predicted_next``, ``inflated_next``, ``horizon``;
``migration.start`` / ``migration.complete``
    reconfiguration lifecycle: ``before``, ``after``, ``rate_kbps`` /
    ``seconds``;
``machines``
    per-slot allocation sample: ``slot``, ``machines``, ``migrating``;
``service.*``
    provisioning actions of :class:`~repro.core.service.PStoreService`
    (``service.scale-out``, ``service.emergency``, ...).
"""

from __future__ import annotations

from typing import List, Optional, Tuple


class EventLog:
    """In-memory append-only list of structured events."""

    def __init__(self) -> None:
        self.events: List[dict] = []
        self._seq = 0

    def emit(self, kind: str, time: Optional[float] = None, **fields) -> dict:
        """Append one event; returns the stored dict (already sequenced)."""
        self._seq += 1
        event = {"seq": self._seq, "kind": kind, "time": time}
        event.update(fields)
        self.events.append(event)
        return event

    def by_kind(self, kind: str) -> List[dict]:
        return [e for e in self.events if e["kind"] == kind]

    def __len__(self) -> int:
        return len(self.events)

    def snapshot(self) -> List[dict]:
        return list(self.events)


class NullEventLog:
    """Event log that drops everything; shared by disabled telemetry."""

    events: Tuple[dict, ...] = ()

    def emit(self, kind: str, time: Optional[float] = None, **fields) -> dict:
        return {}

    def by_kind(self, kind: str) -> List[dict]:
        return []

    def __len__(self) -> int:
        return 0

    def snapshot(self) -> List[dict]:
        return []


NULL_EVENTS = NullEventLog()
