"""Live prediction-error tracking (forecast accountability).

The :class:`AccuracyTracker` turns "how wrong was SPAR?" from an offline
post-processing question into a first-class streaming quantity: every
controller forecast registers its per-tau predictions against future
slot indices, and as the simulation clock closes each interval the pair
``(predicted, observed)`` is harvested into a rolling window keyed by
``(predictor, tau)``.  From those windows it exposes, through the
ordinary metrics registry:

``forecast.pairs{predictor,tau}``
    harvested pairs (counter);
``forecast.mape_pct`` / ``forecast.smape_pct`` / ``forecast.bias_pct``
    rolling-window error gauges per ``{predictor,tau}`` — bias is
    signed, positive when the forecast *over*-shoots;
``forecast.coverage_pct``
    how often the *inflated* forecast actually covered the observed
    load (the paper's 15% buffer doing its job);
``forecast.over_machine_intervals`` / ``forecast.under_machine_intervals``
    provisioning cost of the error: machine-intervals the inflated
    forecast would have over- or under-provisioned relative to the
    observed load (requires :meth:`configure` with the capacity ``q``);
``forecast.pairs_dropped``
    registered forecasts whose target slot was never observed.

This is exactly the error signal a live control plane needs to trigger
fallback-to-reactive when prediction quality degrades under drift.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

#: Default rolling-window size per (predictor, tau): one day of
#: 5-minute intervals.
DEFAULT_WINDOW = 288

#: Percent-error histogram bucket edges (0.1% .. ~1000%).
ERROR_PCT_BOUNDS = tuple(0.1 * (10 ** 0.25) ** i for i in range(17))

_PairWindow = Deque[Tuple[float, Optional[float], float]]


class AccuracyTracker:
    """Rolling (predicted, observed) windows per predictor and tau."""

    enabled = True

    def __init__(self, metrics=None, window: int = DEFAULT_WINDOW):
        if window < 1:
            raise ValueError("window must be >= 1 pair")
        self.window = int(window)
        self._metrics = metrics
        #: target slot -> forecasts awaiting that slot's measurement.
        self._pending: Dict[int, List[dict]] = {}
        #: (predictor, tau) -> deque of (predicted, inflated, actual).
        self._windows: Dict[Tuple[str, int], _PairWindow] = {}
        self._pairs_total: Dict[Tuple[str, int], int] = {}
        self._over_cost: Dict[Tuple[str, int], int] = {}
        self._under_cost: Dict[Tuple[str, int], int] = {}
        self._dropped = 0
        self._q: Optional[float] = None

    def configure(self, q: Optional[float] = None) -> None:
        """Attach model parameters (the per-machine capacity ``Q`` in
        txn/s) so errors can be costed in machine-intervals."""
        if q is not None:
            if q <= 0:
                raise ValueError("q must be positive")
            self._q = float(q)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record_forecast(
        self,
        origin_slot: int,
        predicted: Sequence[float],
        inflated: Optional[Sequence[float]] = None,
        predictor: str = "predictor",
        snapshot_id: Optional[str] = None,
        time: Optional[float] = None,
    ) -> None:
        """Register one horizon forecast made *after* observing
        ``origin_slot``: ``predicted[i]`` targets slot
        ``origin_slot + 1 + i`` (tau = ``i + 1``)."""
        for i, value in enumerate(predicted):
            target = int(origin_slot) + 1 + i
            self._pending.setdefault(target, []).append(
                {
                    "predictor": str(predictor),
                    "tau": i + 1,
                    "predicted": float(value),
                    "inflated": (
                        float(inflated[i]) if inflated is not None else None
                    ),
                    "snapshot_id": snapshot_id,
                    "origin_slot": int(origin_slot),
                    "time": time,
                }
            )

    def observe(
        self, slot: int, actual: float, time: Optional[float] = None
    ) -> List[dict]:
        """Harvest every forecast that targeted ``slot``.

        Returns the harvested entries (smallest tau — the most recent
        forecast — first), each augmented with ``actual``.  Pending
        forecasts for slots already behind ``slot`` are evicted as
        dropped: slots close monotonically, so they can never be
        observed any more.
        """
        slot = int(slot)
        stale = [s for s in self._pending if s < slot]
        dropped = 0
        for s in stale:
            dropped += len(self._pending.pop(s))
        self._dropped += dropped
        if dropped and self._metrics is not None:
            self._metrics.counter("forecast.pairs_dropped").inc(dropped)
        harvest = self._pending.pop(slot, [])
        harvest.sort(key=lambda entry: entry["tau"])
        actual = float(actual)
        for entry in harvest:
            entry["actual"] = actual
            self._absorb(entry)
        return harvest

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def _absorb(self, entry: dict) -> None:
        key = (entry["predictor"], entry["tau"])
        window = self._windows.get(key)
        if window is None:
            window = deque(maxlen=self.window)
            self._windows[key] = window
        window.append((entry["predicted"], entry["inflated"], entry["actual"]))
        self._pairs_total[key] = self._pairs_total.get(key, 0) + 1
        if self._q is not None and entry["inflated"] is not None:
            provisioned = math.ceil(entry["inflated"] / self._q)
            needed = math.ceil(entry["actual"] / self._q)
            self._over_cost[key] = (
                self._over_cost.get(key, 0) + max(0, provisioned - needed)
            )
            self._under_cost[key] = (
                self._under_cost.get(key, 0) + max(0, needed - provisioned)
            )
        self._publish(key, entry)

    @staticmethod
    def _window_stats(window: _PairWindow) -> dict:
        """MAPE / sMAPE / signed bias / coverage over one rolling window."""
        ape: List[float] = []
        sape: List[float] = []
        bias: List[float] = []
        covered = 0
        coverable = 0
        for predicted, inflated, actual in window:
            if actual > 0:
                ape.append(abs(predicted - actual) / actual)
                bias.append((predicted - actual) / actual)
            denom = abs(predicted) + abs(actual)
            if denom > 0:
                sape.append(2.0 * abs(predicted - actual) / denom)
            if inflated is not None:
                coverable += 1
                if actual <= inflated:
                    covered += 1
        return {
            "mape_pct": 100.0 * sum(ape) / len(ape) if ape else None,
            "smape_pct": 100.0 * sum(sape) / len(sape) if sape else None,
            "bias_pct": 100.0 * sum(bias) / len(bias) if bias else None,
            "coverage_pct": (
                100.0 * covered / coverable if coverable else None
            ),
        }

    def _publish(self, key: Tuple[str, int], entry: dict) -> None:
        metrics = self._metrics
        if metrics is None:
            return
        predictor, tau = key
        labels = {"predictor": predictor, "tau": str(tau)}
        metrics.counter("forecast.pairs", **labels).inc()
        stats = self._window_stats(self._windows[key])
        for name, value in (
            ("forecast.mape_pct", stats["mape_pct"]),
            ("forecast.smape_pct", stats["smape_pct"]),
            ("forecast.bias_pct", stats["bias_pct"]),
            ("forecast.coverage_pct", stats["coverage_pct"]),
        ):
            if value is not None:
                metrics.gauge(name, **labels).set(value)
        if entry["actual"] > 0:
            metrics.histogram(
                "forecast.abs_pct_error", bounds=ERROR_PCT_BOUNDS, **labels
            ).observe(
                100.0 * abs(entry["predicted"] - entry["actual"])
                / entry["actual"]
            )
        if self._q is not None:
            metrics.gauge(
                "forecast.over_machine_intervals", **labels
            ).set(self._over_cost.get(key, 0))
            metrics.gauge(
                "forecast.under_machine_intervals", **labels
            ).set(self._under_cost.get(key, 0))

    def errors(self, predictor: str, tau: int) -> Optional[dict]:
        """Rolling-window stats for one ``(predictor, tau)`` (or None)."""
        window = self._windows.get((str(predictor), int(tau)))
        if not window:
            return None
        stats = self._window_stats(window)
        stats["pairs_window"] = len(window)
        stats["pairs_total"] = self._pairs_total.get(
            (str(predictor), int(tau)), 0
        )
        return stats

    # ------------------------------------------------------------------
    # Checkpointing (``pstore serve --resume``)
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-serialisable snapshot of every rolling window and all
        still-pending forecasts (no metrics state — gauges repopulate on
        the first harvested pair after a restore)."""
        return {
            "window": self.window,
            "q": self._q,
            "dropped": self._dropped,
            "pending": [
                {"target": target, "entries": [dict(e) for e in entries]}
                for target, entries in sorted(self._pending.items())
            ],
            "windows": [
                {
                    "predictor": key[0],
                    "tau": key[1],
                    "pairs": [list(pair) for pair in self._windows[key]],
                    "pairs_total": self._pairs_total.get(key, 0),
                    "over": self._over_cost.get(key, 0),
                    "under": self._under_cost.get(key, 0),
                }
                for key in sorted(self._windows)
            ],
        }

    def restore_state(self, doc: dict) -> None:
        """Rebuild the tracker from :meth:`state_dict` output."""
        self.window = int(doc.get("window", self.window))
        self._q = doc.get("q")
        self._dropped = int(doc.get("dropped", 0))
        self._pending = {
            int(row["target"]): [dict(e) for e in row["entries"]]
            for row in doc.get("pending", [])
        }
        self._windows = {}
        self._pairs_total = {}
        self._over_cost = {}
        self._under_cost = {}
        for row in doc.get("windows", []):
            key = (str(row["predictor"]), int(row["tau"]))
            window: _PairWindow = deque(maxlen=self.window)
            for predicted, inflated, actual in row["pairs"]:
                window.append(
                    (
                        float(predicted),
                        None if inflated is None else float(inflated),
                        float(actual),
                    )
                )
            self._windows[key] = window
            self._pairs_total[key] = int(row.get("pairs_total", len(window)))
            self._over_cost[key] = int(row.get("over", 0))
            self._under_cost[key] = int(row.get("under", 0))

    @property
    def pairs_dropped(self) -> int:
        return self._dropped

    @property
    def pending_count(self) -> int:
        return sum(len(v) for v in self._pending.values())

    def snapshot(self) -> List[dict]:
        """One row per (predictor, tau), sorted, with rolling stats."""
        rows: List[dict] = []
        for key in sorted(self._windows):
            predictor, tau = key
            stats = self._window_stats(self._windows[key])
            rows.append(
                {
                    "predictor": predictor,
                    "tau": tau,
                    "pairs_window": len(self._windows[key]),
                    "pairs_total": self._pairs_total.get(key, 0),
                    "over_machine_intervals": self._over_cost.get(key, 0),
                    "under_machine_intervals": self._under_cost.get(key, 0),
                    **stats,
                }
            )
        return rows


class NullAccuracyTracker:
    """Tracker that drops everything; shared by disabled telemetry."""

    enabled = False
    window = 0
    pairs_dropped = 0
    pending_count = 0

    def configure(self, q: Optional[float] = None) -> None:
        pass

    def record_forecast(self, origin_slot, predicted, inflated=None,
                        predictor="predictor", snapshot_id=None,
                        time=None) -> None:
        pass

    def observe(self, slot, actual, time=None) -> List[dict]:
        return []

    def errors(self, predictor, tau) -> Optional[dict]:
        return None

    def snapshot(self) -> List[dict]:
        return []

    def state_dict(self) -> dict:
        return {}

    def restore_state(self, doc: dict) -> None:
        pass


NULL_ACCURACY = NullAccuracyTracker()
