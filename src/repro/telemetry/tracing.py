"""Span recording for the monitor -> predict -> plan -> migrate loop.

A :class:`Span` is one timed operation with free-form attributes; the
:class:`SpanRecorder` maintains a stack so spans opened inside an open
span become its children (``parent_id`` linkage, as in OpenTelemetry).
Two clocks coexist:

* ``span(...)`` context managers measure *wall time* (``time.perf_counter``
  deltas on top of a ``time.time`` epoch) — what the controller's
  per-cycle cost accounting needs;
* ``record(...)`` writes a span with caller-supplied start/end, used by
  the simulators to log *simulated-time* operations such as migration
  rounds, where wall time is meaningless.

The :class:`NullRecorder` twin keeps instrumented code branch-free:
``with tracer.span(...)`` costs one method call and a shared no-op
context manager when tracing is disabled.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class Span:
    """One finished (or in-flight) operation."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    end: Optional[float] = None
    clock: str = "wall"
    attrs: Dict[str, object] = field(default_factory=dict)

    def set(self, key: str, value: object) -> None:
        """Attach an attribute (inputs, outcomes, Decision reasons...)."""
        self.attrs[key] = value

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "clock": self.clock,
            "attrs": self.attrs,
        }


class SpanRecorder:
    """Collects spans in memory; export happens at end of run."""

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 1

    def _new_span(self, name: str, start: float, clock: str,
                  parent_id: Optional[int], attrs: dict) -> Span:
        span = Span(
            span_id=self._next_id,
            parent_id=parent_id,
            name=name,
            start=start,
            clock=clock,
            attrs=dict(attrs),
        )
        self._next_id += 1
        return span

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attrs):
        """Open a wall-clock child span of whatever span is open now."""
        parent = self._stack[-1].span_id if self._stack else None
        wall_start = time.time()
        perf_start = time.perf_counter()
        span = self._new_span(name, wall_start, "wall", parent, attrs)
        self._stack.append(span)
        try:
            yield span
        except BaseException:
            # The run is unwinding through this span (fault-triggered
            # exception, KeyboardInterrupt, ...): flush it flagged rather
            # than indistinguishable from a clean completion.
            span.set("aborted", True)
            raise
        finally:
            span.end = wall_start + (time.perf_counter() - perf_start)
            self._stack.pop()
            self.spans.append(span)

    def record(
        self,
        name: str,
        start: float,
        end: float,
        parent_id: Optional[int] = None,
        **attrs,
    ) -> Span:
        """Append a finished span with explicit (simulated) timestamps."""
        span = self._new_span(name, start, "sim", parent_id, attrs)
        span.end = end
        self.spans.append(span)
        return span

    def by_name(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def snapshot(self) -> List[dict]:
        """Every span as a dict — including any still open on the stack
        (a run that aborted mid-span), flushed with ``aborted: True`` and
        ``end: None`` instead of being silently dropped."""
        rows = [s.to_dict() for s in self.spans]
        for span in self._stack:
            row = span.to_dict()
            row["attrs"] = dict(span.attrs, aborted=True)
            rows.append(row)
        return rows


class _NullSpan:
    """Inert span handed out by the null recorder."""

    span_id = 0
    parent_id = None
    name = ""
    start = 0.0
    end = 0.0
    duration = 0.0
    clock = "wall"
    attrs: Dict[str, object] = {}

    def set(self, key: str, value: object) -> None:
        pass

    def to_dict(self) -> dict:
        return {}


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpan()
_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullRecorder:
    """Recorder that drops everything; shared by disabled telemetry."""

    spans: Tuple[Span, ...] = ()
    current = None

    def span(self, name: str, **attrs) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def record(self, name, start, end, parent_id=None, **attrs) -> _NullSpan:
        return NULL_SPAN

    def by_name(self, name: str) -> List[Span]:
        return []

    def snapshot(self) -> List[dict]:
        return []


NULL_RECORDER = NullRecorder()
