"""The reconfiguration flight recorder: a causal chronicle of decisions.

Metrics say *what* happened; the chronicle says *why*.  Every forecast
snapshot, plan decision, migration round, node add/remove, fault event,
and SLA violation becomes one :class:`FlightRecorder` record with a
stable ID and a ``parent`` link, forming walkable causal chains::

    forecast.snapshot -> plan.decision -> migration.start -> migration.round*
                                                          -> migration.complete
    fault.injected    -> fault.detected -> fault.retry* -> fault.recovered
    sla.violation     -> (its dominant cause: fault / move / forecast)

Records persist as ``chronicle.jsonl`` next to ``events.jsonl``
(:func:`repro.telemetry.export.write_chronicle_jsonl`) and are rendered
by ``pstore explain`` (:mod:`repro.analysis.explain`).

IDs are derived from the record kind, the *simulated* timestamp, and a
per-recorder sequence counter — never from wall clocks or ``uuid`` — so
a run's chronicle is bit-identical across machines and repeat runs,
which keeps parallel sweeps cacheable (the PR-4 sim-time lint enforces
this file stays wall-clock free).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

#: Version tag written as the first row of every ``chronicle.jsonl``.
CHRONICLE_SCHEMA = "pstore.chronicle/v1"

#: Short ID prefixes for well-known record kinds (unknown kinds fall
#: back to the initials of their dotted segments).
_KIND_PREFIXES = {
    "forecast.snapshot": "fc",
    "forecast.accuracy": "fa",
    "plan.decision": "pd",
    "migration.start": "mg",
    "migration.round": "mr",
    "migration.complete": "mc",
    "migration.aborted": "mx",
    "node.add": "na",
    "node.remove": "nr",
    "node.report": "np",
    "node.stale": "ns",
    "node.recovered": "nv",
    "service.resume": "rz",
    "fault.injected": "fi",
    "fault.detected": "fd",
    "fault.retry": "fy",
    "fault.recovered": "fv",
    "sla.violation": "sv",
    "capacity.insufficient": "ci",
}


def _stamp(time: Optional[float]) -> str:
    """Deterministic, compact rendering of a simulated timestamp."""
    if time is None:
        return "x"
    value = float(time)
    if value == int(value):
        return str(int(value))
    return format(value, "g")


def make_record_id(kind: str, time: Optional[float], seq: int) -> str:
    """``<prefix>-<sim time>-<sequence>`` — stable given the run inputs."""
    prefix = _KIND_PREFIXES.get(kind)
    if prefix is None:
        prefix = "".join(part[0] for part in kind.split(".") if part) or "r"
    return f"{prefix}-{_stamp(time)}-{seq:05d}"


class FlightRecorder:
    """In-memory append-only chronicle with parent/child linkage."""

    def __init__(self) -> None:
        self.records: List[dict] = []
        self._seq = 0
        self._last: Dict[str, str] = {}

    def record(
        self,
        kind: str,
        time: Optional[float] = None,
        parent: Optional[Union[str, dict]] = None,
        **fields,
    ) -> dict:
        """Append one record; returns the stored dict (with its ``id``).

        ``parent`` may be another record's id string or the record dict
        itself.  ``time`` is a *simulated* timestamp (seconds).
        """
        parent_id = parent.get("id") if isinstance(parent, dict) else parent
        self._seq += 1
        rec = {
            "id": make_record_id(kind, time, self._seq),
            "kind": kind,
            "time": time,
            "parent": parent_id,
        }
        # Reserved keys win: a payload field named e.g. ``kind`` must not
        # clobber the record's identity.
        for key, value in fields.items():
            if key not in rec:
                rec[key] = value
        self.records.append(rec)
        self._last[kind] = rec["id"]
        return rec

    def last(self, kind: str) -> Optional[str]:
        """ID of the most recent record of ``kind`` (None if never seen)."""
        return self._last.get(kind)

    @property
    def seq(self) -> int:
        """The per-recorder sequence counter (for checkpointing)."""
        return self._seq

    def restore(self, records: List[dict], seq: Optional[int] = None) -> None:
        """Reload a previously recorded chronicle (checkpoint resume).

        Replaces the current contents with ``records`` and fast-forwards
        the sequence counter so IDs issued after the restore continue
        the original numbering; ``_last`` is rebuilt so parent links of
        new records resolve against the restored history.
        """
        self.records = [dict(rec) for rec in records]
        self._last = {}
        max_seen = 0
        for rec in self.records:
            kind = rec.get("kind")
            if kind:
                self._last[kind] = rec.get("id")
            rec_id = rec.get("id") or ""
            tail = rec_id.rsplit("-", 1)[-1]
            if tail.isdigit():
                max_seen = max(max_seen, int(tail))
        self._seq = max(max_seen, int(seq) if seq is not None else 0)

    def by_kind(self, kind: str) -> List[dict]:
        return [r for r in self.records if r["kind"] == kind]

    def __len__(self) -> int:
        return len(self.records)

    def snapshot(self) -> List[dict]:
        return list(self.records)


class NullFlightRecorder:
    """Chronicle that drops everything; shared by disabled telemetry."""

    records: Tuple[dict, ...] = ()

    def record(
        self,
        kind: str,
        time: Optional[float] = None,
        parent: Optional[Union[str, dict]] = None,
        **fields,
    ) -> dict:
        return {}

    def last(self, kind: str) -> Optional[str]:
        return None

    def by_kind(self, kind: str) -> List[dict]:
        return []

    def __len__(self) -> int:
        return 0

    def snapshot(self) -> List[dict]:
        return []


NULL_CHRONICLE = NullFlightRecorder()
