"""Observability for the predict -> plan -> migrate control loop.

Three coordinated primitives:

* :mod:`repro.telemetry.metrics` — counters, gauges, and fixed-bucket
  streaming histograms in a label-aware registry;
* :mod:`repro.telemetry.tracing` — wall-clock and simulated-time spans
  with parent/child linkage, one root span per controller cycle;
* :mod:`repro.telemetry.events` — the structured JSONL event log of
  provisioning actions, measurements, and forecasts.

:mod:`repro.telemetry.runtime` bundles the three behind a process-global
default that is a no-op until :func:`enable_telemetry` is called, and
:mod:`repro.telemetry.export` turns a finished run into ``events.jsonl``,
``spans.jsonl``, ``metrics.json``, and an ASCII dashboard.

See docs/OBSERVABILITY.md for metric names, the span hierarchy, and the
artifact file formats.
"""

from .accuracy import (
    DEFAULT_WINDOW,
    NULL_ACCURACY,
    AccuracyTracker,
    NullAccuracyTracker,
)
from .causal import (
    CHRONICLE_SCHEMA,
    NULL_CHRONICLE,
    FlightRecorder,
    NullFlightRecorder,
    make_record_id,
)
from .events import NULL_EVENTS, EventLog, NullEventLog
from .export import (
    EVENTS_SCHEMA,
    METRICS_SCHEMA,
    SPANS_SCHEMA,
    accuracy_summary,
    export_run,
    forecast_mape,
    forecast_vs_actual,
    latency_quantiles,
    machines_series,
    metrics_document,
    migration_summary,
    render_dashboard,
    render_metrics_prom,
    write_chronicle_jsonl,
    write_events_jsonl,
    write_metrics_csv,
    write_metrics_json,
    write_metrics_prom,
    write_spans_jsonl,
)
from .metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    default_buckets,
)
from .runtime import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    disable_telemetry,
    enable_telemetry,
    get_telemetry,
    set_telemetry,
    telemetry_from_config,
    telemetry_scope,
)
from .tracing import NULL_RECORDER, NullRecorder, Span, SpanRecorder

__all__ = [
    "AccuracyTracker",
    "CHRONICLE_SCHEMA",
    "Counter",
    "DEFAULT_WINDOW",
    "EVENTS_SCHEMA",
    "EventLog",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "NULL_ACCURACY",
    "NULL_CHRONICLE",
    "NULL_EVENTS",
    "NULL_RECORDER",
    "NULL_REGISTRY",
    "NULL_TELEMETRY",
    "NullAccuracyTracker",
    "NullEventLog",
    "NullFlightRecorder",
    "NullRecorder",
    "NullRegistry",
    "NullTelemetry",
    "SPANS_SCHEMA",
    "Span",
    "SpanRecorder",
    "Telemetry",
    "accuracy_summary",
    "default_buckets",
    "disable_telemetry",
    "enable_telemetry",
    "export_run",
    "forecast_mape",
    "forecast_vs_actual",
    "get_telemetry",
    "latency_quantiles",
    "machines_series",
    "make_record_id",
    "metrics_document",
    "migration_summary",
    "render_dashboard",
    "render_metrics_prom",
    "set_telemetry",
    "telemetry_from_config",
    "telemetry_scope",
    "write_chronicle_jsonl",
    "write_events_jsonl",
    "write_metrics_csv",
    "write_metrics_json",
    "write_metrics_prom",
    "write_spans_jsonl",
]
