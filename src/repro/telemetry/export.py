"""Run-artifact exporters: JSONL dumps, metrics snapshots, dashboards.

One instrumented run produces three machine-readable artifacts
(``pstore simulate --telemetry-out run1/``):

``events.jsonl``
    the structured event log, one JSON object per line;
``spans.jsonl``
    every recorded span (wall-clock and simulated-time), one per line;
``metrics.json``
    the final metric snapshot plus derived summaries: the
    forecast-vs-actual series with its MAPE, per-reconfiguration
    migration durations, and the latency quantiles of every histogram.

:func:`render_dashboard` turns the same data into the plain-text
summary printed at the end of a CLI run; :func:`write_metrics_csv`
flattens scalar metrics for spreadsheet import.  ``BENCH_*.json``-style
regression baselines can be produced directly from
:func:`metrics_document`.
"""

from __future__ import annotations

import json
import math
import pathlib
import re
from typing import Dict, List, Optional

from .causal import CHRONICLE_SCHEMA

#: Version tags written into every artifact so later PRs can evolve the
#: schemas without breaking old readers.
EVENTS_SCHEMA = "pstore.events/v1"
SPANS_SCHEMA = "pstore.spans/v1"
METRICS_SCHEMA = "pstore.metrics/v1"


def _clean(value):
    """JSON-encodable copy of ``value`` (numpy scalars, inf, nan)."""
    if isinstance(value, dict):
        return {str(k): _clean(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_clean(v) for v in value]
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if hasattr(value, "item"):  # numpy scalar
        return _clean(value.item())
    return value


def write_jsonl(rows: List[dict], path) -> pathlib.Path:
    path = pathlib.Path(path)
    with path.open("w") as fh:
        for row in rows:
            fh.write(json.dumps(_clean(row), sort_keys=True))
            fh.write("\n")
    return path


# ----------------------------------------------------------------------
# Derived series
# ----------------------------------------------------------------------


def forecast_vs_actual(telemetry) -> List[dict]:
    """Align ``forecast`` events with the ``interval`` measurements they
    predicted.

    A forecast emitted with ``history_len = h`` predicts the next
    interval, i.e. the measurement with ``slot == h``; pairs whose
    measurement never arrived (end of run) are dropped.
    """
    measured = {
        e["slot"]: e["tps"]
        for e in telemetry.events.by_kind("interval")
        if e.get("slot") is not None
    }
    pairs: List[dict] = []
    for event in telemetry.events.by_kind("forecast"):
        slot = event.get("history_len")
        if slot is None or slot not in measured:
            continue
        pairs.append(
            {
                "slot": slot,
                "predicted": event.get("predicted_next"),
                "inflated": event.get("inflated_next"),
                "actual": measured[slot],
            }
        )
    return pairs


def forecast_mape(pairs: List[dict]) -> Optional[float]:
    """Mean absolute percentage error of the forecast series (percent)."""
    errors = [
        abs(p["predicted"] - p["actual"]) / p["actual"]
        for p in pairs
        if p.get("predicted") is not None and p.get("actual")
    ]
    if not errors:
        return None
    return 100.0 * sum(errors) / len(errors)


def migration_summary(telemetry) -> List[dict]:
    """One row per completed reconfiguration (from the event log)."""
    return [
        {
            "time": e.get("time"),
            "before": e.get("before"),
            "after": e.get("after"),
            "seconds": e.get("seconds"),
            "emergency": e.get("emergency", False),
        }
        for e in telemetry.events.by_kind("migration.complete")
    ]


def machines_series(telemetry) -> List[dict]:
    """Per-slot machine allocation samples (empty if not instrumented)."""
    return [
        {
            "slot": e.get("slot"),
            "machines": e.get("machines"),
            "migrating": e.get("migrating", False),
        }
        for e in telemetry.events.by_kind("machines")
    ]


def latency_quantiles(telemetry) -> Dict[str, dict]:
    """p50/p95/p99 of every histogram, keyed by ``name{labels}``."""
    out: Dict[str, dict] = {}
    for snap in telemetry.metrics.snapshot():
        if snap.get("kind") != "histogram" or not snap.get("count"):
            continue
        labels = snap.get("labels") or {}
        suffix = (
            "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
            if labels
            else ""
        )
        out[snap["name"] + suffix] = dict(snap["quantiles"], count=snap["count"])
    return out


# ----------------------------------------------------------------------
# Artifact writers
# ----------------------------------------------------------------------


def accuracy_summary(telemetry) -> List[dict]:
    """Per (predictor, tau) rolling error stats from the accuracy
    tracker (empty for bundles without one)."""
    tracker = getattr(telemetry, "accuracy", None)
    return tracker.snapshot() if tracker is not None else []


def metrics_document(telemetry) -> dict:
    """The full ``metrics.json`` document (snapshot + derived series)."""
    pairs = forecast_vs_actual(telemetry)
    return {
        "schema": METRICS_SCHEMA,
        "metrics": telemetry.metrics.snapshot(),
        "derived": {
            "forecast": {
                "n_pairs": len(pairs),
                "mape_pct": forecast_mape(pairs),
                "series": pairs,
            },
            "accuracy": accuracy_summary(telemetry),
            "migrations": migration_summary(telemetry),
            "latency_quantiles": latency_quantiles(telemetry),
        },
    }


def write_events_jsonl(telemetry, path) -> pathlib.Path:
    rows = [{"schema": EVENTS_SCHEMA}] + telemetry.events.snapshot()
    return write_jsonl(rows, path)


def write_spans_jsonl(telemetry, path) -> pathlib.Path:
    rows = [{"schema": SPANS_SCHEMA}] + telemetry.tracer.snapshot()
    return write_jsonl(rows, path)


def write_metrics_json(telemetry, path) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(json.dumps(_clean(metrics_document(telemetry)), indent=2,
                               sort_keys=True))
    return path


def write_chronicle_jsonl(telemetry, path) -> pathlib.Path:
    """The causal chronicle (flight-recorder records) as JSONL."""
    chronicle = getattr(telemetry, "chronicle", None)
    rows = [{"schema": CHRONICLE_SCHEMA}]
    if chronicle is not None:
        rows += chronicle.snapshot()
    return write_jsonl(rows, path)


def _prom_name(name: str) -> str:
    return "pstore_" + re.sub(r"[^A-Za-z0-9_]", "_", name)


def _prom_labels(labels: Dict[str, object]) -> str:
    if not labels:
        return ""
    rendered = ",".join(
        f'{re.sub(r"[^A-Za-z0-9_]", "_", k)}="{v}"'
        for k, v in sorted(labels.items())
    )
    return "{" + rendered + "}"


def _prom_value(value) -> str:
    if value is None:
        return "NaN"
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return format(value, ".10g")


def render_metrics_prom(telemetry) -> str:
    """OpenMetrics-style text exposition of the metrics registry.

    Counters get a ``_total`` suffix, histograms expand into cumulative
    ``_bucket{le=...}`` series plus ``_sum``/``_count``, and every family
    carries a ``# TYPE`` line, so the text drops straight into any
    Prometheus-compatible scraper or ``promtool check metrics``.  The
    live control plane (``pstore serve``) serves exactly this text from
    its ``/metrics`` endpoint; :func:`write_metrics_prom` persists it as
    the ``metrics.prom`` run artifact.
    """
    lines: List[str] = []
    typed: set = set()
    for snap in telemetry.metrics.snapshot():
        name = _prom_name(snap["name"])
        labels = _prom_labels(snap.get("labels") or {})
        kind = snap["kind"]
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")
        if kind == "counter":
            lines.append(f"{name}_total{labels} {_prom_value(snap['value'])}")
        elif kind == "gauge":
            lines.append(f"{name}{labels} {_prom_value(snap['value'])}")
        else:  # histogram
            base_labels = dict(snap.get("labels") or {})
            cumulative = 0
            for bucket in snap.get("buckets", []):
                cumulative += bucket["count"]
                le = (
                    "+Inf"
                    if bucket["le"] is None
                    else _prom_value(bucket["le"])
                )
                bucket_labels = _prom_labels(dict(base_labels, le=le))
                lines.append(f"{name}_bucket{bucket_labels} {cumulative}")
            if not snap.get("buckets") or snap["buckets"][-1]["le"] is not None:
                inf_labels = _prom_labels(dict(base_labels, le="+Inf"))
                lines.append(f"{name}_bucket{inf_labels} {snap['count']}")
            lines.append(f"{name}_sum{labels} {_prom_value(snap['sum'])}")
            lines.append(f"{name}_count{labels} {snap['count']}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_metrics_prom(telemetry, path) -> pathlib.Path:
    """Persist :func:`render_metrics_prom` output as ``metrics.prom``."""
    path = pathlib.Path(path)
    path.write_text(render_metrics_prom(telemetry))
    return path


def write_metrics_csv(telemetry, path) -> pathlib.Path:
    """Scalar metrics (counters/gauges + histogram quantiles) as CSV."""
    lines = ["name,labels,stat,value"]
    for snap in telemetry.metrics.snapshot():
        labels = ";".join(
            f"{k}={v}" for k, v in sorted((snap.get("labels") or {}).items())
        )
        if snap["kind"] in ("counter", "gauge"):
            lines.append(f"{snap['name']},{labels},value,{snap['value']}")
        else:
            for stat in ("count", "mean"):
                lines.append(f"{snap['name']},{labels},{stat},{snap[stat]}")
            for q, v in snap["quantiles"].items():
                lines.append(f"{snap['name']},{labels},{q},{v}")
    path = pathlib.Path(path)
    path.write_text("\n".join(lines) + "\n")
    return path


def export_run(telemetry, out_dir) -> Dict[str, pathlib.Path]:
    """Write the standard artifact set into ``out_dir`` (created if needed)."""
    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    return {
        "events": write_events_jsonl(telemetry, out / "events.jsonl"),
        "spans": write_spans_jsonl(telemetry, out / "spans.jsonl"),
        "metrics": write_metrics_json(telemetry, out / "metrics.json"),
        "chronicle": write_chronicle_jsonl(telemetry, out / "chronicle.jsonl"),
        "prom": write_metrics_prom(telemetry, out / "metrics.prom"),
    }


# ----------------------------------------------------------------------
# Dashboard
# ----------------------------------------------------------------------


def render_dashboard(telemetry, title: str = "run summary") -> str:
    """Plain-text run summary (machines, forecast error, migrations,
    latency quantiles), built on the shared ASCII report helpers."""
    # Imported lazily: repro.analysis pulls in the simulators, which
    # themselves import repro.telemetry at module load.
    from ..analysis.report import ascii_table, series_block

    sections: List[str] = [title, "=" * len(title)]

    machines = [m["machines"] for m in machines_series(telemetry)
                if m.get("machines") is not None]
    if machines:
        sections.append(series_block("machines", machines))

    measured = [e["tps"] for e in telemetry.events.by_kind("interval")]
    if measured:
        sections.append(series_block("measured load (txn/s)", measured))

    pairs = forecast_vs_actual(telemetry)
    mape = forecast_mape(pairs)
    if mape is not None:
        sections.append(
            f"forecast MAPE {mape:.1f}% over {len(pairs)} intervals"
        )

    accuracy = accuracy_summary(telemetry)
    if accuracy:
        def fmt(value, suffix="%"):
            return "-" if value is None else f"{value:.1f}{suffix}"

        shown = accuracy[:12]
        rows = [
            (
                row["predictor"],
                row["tau"],
                row["pairs_window"],
                fmt(row["mape_pct"]),
                fmt(row["smape_pct"]),
                fmt(row["bias_pct"]),
                fmt(row["coverage_pct"]),
            )
            for row in shown
        ]
        table = ascii_table(
            ["predictor", "tau", "n", "MAPE", "sMAPE", "bias", "coverage"],
            rows,
            title="forecast accuracy (rolling window)",
        )
        if len(accuracy) > len(shown):
            table += f"\n(+{len(accuracy) - len(shown)} more taus)"
        sections.append(table)

    migrations = migration_summary(telemetry)
    if migrations:
        rows = [
            (
                f"{m['time']:,.0f}" if m.get("time") is not None else "-",
                m.get("before", "-"),
                m.get("after", "-"),
                f"{m['seconds']:,.0f}" if m.get("seconds") is not None else "-",
                "yes" if m.get("emergency") else "",
            )
            for m in migrations
        ]
        sections.append(
            ascii_table(
                ["t (s)", "before", "after", "duration (s)", "emergency"],
                rows,
                title=f"reconfigurations ({len(migrations)})",
            )
        )

    quantiles = latency_quantiles(telemetry)
    if quantiles:
        rows = [
            (
                name,
                stats["count"],
                f"{stats['p50']:.1f}",
                f"{stats['p95']:.1f}",
                f"{stats['p99']:.1f}",
            )
            for name, stats in sorted(quantiles.items())
        ]
        sections.append(
            ascii_table(
                ["histogram", "n", "p50", "p95", "p99"],
                rows,
                title="latency quantiles (ms unless noted)",
            )
        )

    counters = [
        s for s in telemetry.metrics.snapshot() if s.get("kind") == "counter"
    ]
    if counters:
        rows = [
            (
                s["name"]
                + (
                    "{" + ",".join(
                        f"{k}={v}" for k, v in sorted(s["labels"].items())
                    ) + "}"
                    if s.get("labels")
                    else ""
                ),
                int(s["value"]),
            )
            for s in counters
        ]
        sections.append(ascii_table(["counter", "value"], rows))

    return "\n\n".join(sections)
