"""Metrics primitives: counters, gauges, and streaming histograms.

The registry keys every instrument by ``(name, sorted labels)`` so a
metric family like ``engine.latency_ms{partition=3}`` is one histogram
per partition without the caller managing the fan-out.  Histograms use
fixed log-spaced buckets (not raw samples), so memory stays constant no
matter how many observations stream in; quantiles are recovered by
linear interpolation inside the owning bucket, clamped to the observed
min/max.

A parallel null implementation (:class:`NullRegistry` and the three
``_Null*`` instruments) backs disabled telemetry: every method is a
no-op and every accessor returns a shared singleton, so instrumented
code pays one attribute check and nothing else.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import TelemetryError

#: Label sets are stored as a canonical sorted tuple of (key, value) pairs.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def default_buckets(
    lo: float = 0.1, hi: float = 600_000.0, per_decade: int = 5
) -> Tuple[float, ...]:
    """Log-spaced bucket upper bounds covering ``[lo, hi]``.

    The default spans 0.1 ms to 10 minutes with 5 buckets per decade
    (~34 buckets), which bounds the quantile interpolation error to
    about +/-30% of the true value — plenty for p50/p95/p99 dashboards.
    """
    if lo <= 0 or hi <= lo:
        raise TelemetryError("need 0 < lo < hi for histogram buckets")
    n = int(math.ceil(per_decade * math.log10(hi / lo)))
    ratio = (hi / lo) ** (1.0 / n)
    return tuple(lo * ratio ** i for i in range(n + 1))


class Counter:
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise TelemetryError("counters can only increase")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "labels": dict(self.labels),
            "value": self._value,
        }


class Gauge:
    """A value that can go up and down (machines, utilization, ...)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def add(self, delta: float) -> None:
        self._value += delta

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "labels": dict(self.labels),
            "value": self._value,
        }


class Histogram:
    """Fixed-bucket streaming histogram with interpolated quantiles.

    ``bounds[i]`` is the inclusive upper edge of bucket ``i``; one extra
    overflow bucket catches everything above the last edge.  Only the
    per-bucket counts plus count/sum/min/max are stored.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "bounds", "_counts", "count", "sum",
                 "min", "max")

    def __init__(
        self,
        name: str,
        labels: LabelKey = (),
        bounds: Optional[Iterable[float]] = None,
    ):
        self.name = name
        self.labels = labels
        self.bounds: Tuple[float, ...] = (
            tuple(bounds) if bounds is not None else default_buckets()
        )
        if not self.bounds or any(
            b <= a for a, b in zip(self.bounds, self.bounds[1:])
        ):
            raise TelemetryError("histogram bounds must be strictly increasing")
        self._counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        # Binary search for the first edge >= value.
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        self._counts[lo] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Interpolated ``q``-quantile (``q`` in [0, 1]) of what streamed in."""
        if not 0.0 <= q <= 1.0:
            raise TelemetryError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, n in enumerate(self._counts):
            if n == 0:
                continue
            if cumulative + n >= rank:
                lower = self.bounds[i - 1] if i > 0 else min(self.min, self.bounds[0])
                upper = self.bounds[i] if i < len(self.bounds) else self.max
                within = (rank - cumulative) / n
                est = lower + (upper - lower) * max(0.0, min(1.0, within))
                return max(self.min, min(self.max, est))
            cumulative += n
        return self.max

    def snapshot(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "labels": dict(self.labels),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "quantiles": {
                "p50": self.quantile(0.50),
                "p95": self.quantile(0.95),
                "p99": self.quantile(0.99),
            },
            "buckets": [
                {"le": edge, "count": n}
                for edge, n in zip(self.bounds, self._counts)
                if n
            ]
            + (
                [{"le": None, "count": self._counts[-1]}]
                if self._counts[-1]
                else []
            ),
        }


class MetricsRegistry:
    """Process-wide home of every live instrument, keyed by name+labels."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelKey], object] = {}

    def _get(self, cls, name: str, labels: Dict[str, object], **kwargs):
        key = (name, _label_key(labels))
        found = self._metrics.get(key)
        if found is None:
            found = cls(name, key[1], **kwargs)
            self._metrics[key] = found
        elif not isinstance(found, cls):
            raise TelemetryError(
                f"metric {name!r} already registered as {found.kind}"
            )
        return found

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, bounds: Optional[Iterable[float]] = None, **labels
    ) -> Histogram:
        return self._get(Histogram, name, labels, bounds=bounds)

    def __len__(self) -> int:
        return len(self._metrics)

    def instruments(self) -> List[object]:
        return [self._metrics[k] for k in sorted(self._metrics)]

    def snapshot(self) -> List[dict]:
        """All instruments as plain dicts, sorted by (name, labels)."""
        return [m.snapshot() for m in self.instruments()]


# ----------------------------------------------------------------------
# No-op twins for disabled telemetry
# ----------------------------------------------------------------------


class _NullCounter:
    kind = "counter"
    name = ""
    labels: LabelKey = ()
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def snapshot(self) -> dict:
        return {}


class _NullGauge:
    kind = "gauge"
    name = ""
    labels: LabelKey = ()
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def snapshot(self) -> dict:
        return {}


class _NullHistogram:
    kind = "histogram"
    name = ""
    labels: LabelKey = ()
    count = 0
    sum = 0.0
    mean = 0.0

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def snapshot(self) -> dict:
        return {}


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullRegistry:
    """Registry whose instruments do nothing; shared by disabled telemetry."""

    def counter(self, name: str, **labels) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, **labels) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str, bounds=None, **labels) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def __len__(self) -> int:
        return 0

    def instruments(self) -> List[object]:
        return []

    def snapshot(self) -> List[dict]:
        return []


NULL_REGISTRY = NullRegistry()
