"""Telemetry runtime: the bundle of registry + tracer + event log, and
the process-global default that instrumented code binds to.

Disabled telemetry (the default) is the singleton :data:`NULL_TELEMETRY`
whose parts are all no-ops, so the cost of an instrumentation hook in a
hot path is one ``tel.enabled`` attribute check.  Enabling telemetry
swaps in a live :class:`Telemetry` bundle:

>>> from repro.telemetry import enable_telemetry, get_telemetry
>>> tel = enable_telemetry()
>>> tel is get_telemetry()
True

Instrumented classes resolve :func:`get_telemetry` once at construction
(overridable with an explicit ``telemetry=`` argument), so enable
telemetry *before* building the system you want observed.  Tests use
:func:`telemetry_scope` to install a fresh bundle for one block.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

from .accuracy import NULL_ACCURACY, AccuracyTracker, NullAccuracyTracker
from .causal import NULL_CHRONICLE, FlightRecorder, NullFlightRecorder
from .events import NULL_EVENTS, EventLog, NullEventLog
from .metrics import NULL_REGISTRY, MetricsRegistry, NullRegistry
from .tracing import NULL_RECORDER, NullRecorder, SpanRecorder


class Telemetry:
    """A live telemetry bundle (metrics + spans + events + chronicle +
    forecast accuracy)."""

    enabled = True

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanRecorder] = None,
        events: Optional[EventLog] = None,
        chronicle: Optional[FlightRecorder] = None,
        accuracy: Optional[AccuracyTracker] = None,
    ):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else SpanRecorder()
        self.events = events if events is not None else EventLog()
        self.chronicle = chronicle if chronicle is not None else FlightRecorder()
        self.accuracy = (
            accuracy
            if accuracy is not None
            else AccuracyTracker(metrics=self.metrics)
        )

    def reset(self) -> None:
        """Drop all recorded data (start of a new run)."""
        self.metrics = MetricsRegistry()
        self.tracer = SpanRecorder()
        self.events = EventLog()
        self.chronicle = FlightRecorder()
        self.accuracy = AccuracyTracker(metrics=self.metrics)


class NullTelemetry:
    """Disabled telemetry: every part is a shared no-op."""

    enabled = False
    metrics: NullRegistry = NULL_REGISTRY
    tracer: NullRecorder = NULL_RECORDER
    events: NullEventLog = NULL_EVENTS
    chronicle: NullFlightRecorder = NULL_CHRONICLE
    accuracy: NullAccuracyTracker = NULL_ACCURACY

    def reset(self) -> None:
        pass


NULL_TELEMETRY = NullTelemetry()

_active = NULL_TELEMETRY


def get_telemetry():
    """The process-global telemetry bundle (null when disabled)."""
    return _active


def set_telemetry(telemetry) -> None:
    """Install ``telemetry`` as the process-global bundle."""
    global _active
    _active = telemetry


def enable_telemetry() -> Telemetry:
    """Install and return a fresh live bundle as the global default."""
    telemetry = Telemetry()
    set_telemetry(telemetry)
    return telemetry


def disable_telemetry() -> None:
    """Restore the no-op default."""
    set_telemetry(NULL_TELEMETRY)


@contextmanager
def telemetry_scope(telemetry: Optional[Telemetry] = None):
    """Temporarily install a bundle (a fresh one by default); restores the
    previous global on exit.  Intended for tests and notebooks."""
    previous = get_telemetry()
    installed = telemetry if telemetry is not None else Telemetry()
    set_telemetry(installed)
    try:
        yield installed
    finally:
        set_telemetry(previous)


def telemetry_from_config(config) -> object:
    """Build the bundle a :class:`repro.config.TelemetryConfig` asks for.

    Returns :data:`NULL_TELEMETRY` when the section says disabled, so
    callers can unconditionally ``set_telemetry(telemetry_from_config(c))``.
    """
    if getattr(config, "enabled", False):
        return Telemetry()
    return NULL_TELEMETRY
