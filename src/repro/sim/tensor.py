"""Cross-cell tensor simulation: run a whole sweep as one array program.

:class:`TensorBatchEngine` advances many independent
:class:`~repro.sim.simulator.ElasticDbSimulator` runs ("cells") at once.
Each cell is driven through :meth:`ElasticDbSimulator.drive`, which
yields a :class:`~repro.sim.simulator.BlockRequest` for every quiescent
stretch (no migration, no fault activity, no planner boundary) and runs
everything else — migration rounds, fault windows, emergency re-plans —
on the scalar engine *inside* the generator.  The batch engine collects
all currently-pending block requests, stacks their per-tick arrays along
the tick axis, and executes the latency-sampling math of every cell in
one fused numpy call.

Eviction / re-admission
-----------------------
A cell that enters a migration round, fault window, or planner re-plan
is *evicted*: its generator advances those ticks internally on the
scalar/fast-path engine and the cell simply skips the batched rounds
until its next yield, at which point it is *re-admitted*.  No state ever
has to be copied in or out of the batch.

Bit-identity
------------
Results are bit-identical to the serial engines because nothing about
the numbers changes — only the batching of pure math:

* every RNG draw happens on the owning engine's own streams, in exactly
  the scalar order (:meth:`QueueingEngine._block_prep` and
  :meth:`QueueingEngine._block_sample_draws` are called per engine);
* the fused stage, :meth:`QueueingEngine._block_sample_math`, is
  row-independent per tick — elementwise ops, per-row ``cumsum``, exact
  searchsorted indices, exact gathers, per-row partition-based
  percentiles — so concatenating blocks of different cells along the
  tick axis produces the same floats each cell would produce alone;
* cells are only fused when they share a ``(n_partitions,
  samples_per_tick)`` shape signature, and blocks containing a
  zero-completed tick fall back to the engine's own per-tick replay.

The PR-4 differential harness pins this: ``pstore check --suite tensor``
runs serial and tensor drivers side by side with zero tolerance.

This module lives in simulated time and must stay free of wall-clock
reads (enforced by the PR-4 lint).  Callers that want per-cell timings
pass a ``clock`` callable (e.g. ``time.perf_counter`` from the sweep
executor, which is allowlisted).
"""

from __future__ import annotations

import contextlib
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SimulationError
from ..hstore.engine import QueueingEngine
from .simulator import ElasticDbSimulator, SimulationResult


@dataclass
class TensorProgram:
    """One sweep cell prepared for batched execution.

    Bundles everything :meth:`ElasticDbSimulator.run` would need, plus an
    optional ``finalize`` hook mapping the :class:`SimulationResult` to
    the cell's payload (the sweep executor uses it to keep payloads — and
    therefore ``result_hash`` — byte-identical to the serial path) and an
    optional ``scope`` context-manager factory (telemetry scoping).
    """

    simulator: ElasticDbSimulator
    offered_tps: Sequence[float]
    strategy: object
    history_seed_tps: Sequence[float] = ()
    label: str = ""
    finalize: Optional[Callable[[SimulationResult], dict]] = None
    scope: Optional[Callable[[], object]] = None

    def signature(self) -> Tuple[int, int]:
        """The fuse-compatibility key: cells sharing it may be batched."""
        engine = self.simulator.engine
        return (engine.n_partitions, engine.samples_per_tick)


@dataclass
class TensorCellOutcome:
    """Result of one cell driven by the batch engine.

    Exactly one of ``result``/``error`` is set.  ``batched_ticks`` were
    advanced by fused cross-cell calls; ``scalar_ticks`` ran inside the
    generator while the cell was evicted (plus any lead-in/tail);
    ``evictions`` counts re-admissions after at least one batched block.
    """

    label: str
    result: Optional[SimulationResult] = None
    error: Optional[str] = None
    elapsed_seconds: float = 0.0
    batched_ticks: int = 0
    scalar_ticks: int = 0
    evictions: int = 0


@dataclass
class TensorBatchReport:
    """All cell outcomes plus aggregate batching statistics."""

    outcomes: List[TensorCellOutcome]
    rounds: int = 0
    fused_calls: int = 0
    batched_ticks: int = 0
    scalar_ticks: int = 0
    evictions: int = 0

    def stats(self) -> Dict[str, int]:
        return {
            "cells": len(self.outcomes),
            "rounds": self.rounds,
            "fused_calls": self.fused_calls,
            "batched_ticks": self.batched_ticks,
            "scalar_ticks": self.scalar_ticks,
            "evictions": self.evictions,
        }


class _CellState:
    """Internal per-cell driver state."""

    __slots__ = (
        "index", "program", "gen", "request", "block", "outcome",
        "cursor", "total_ticks", "admitted",
    )

    def __init__(self, index: int, program: TensorProgram):
        self.index = index
        self.program = program
        self.gen = program.simulator.drive(
            program.offered_tps, program.strategy, program.history_seed_tps
        )
        self.request = None
        self.block = None
        self.outcome = TensorCellOutcome(label=program.label)
        #: Tick index up to which batched blocks have been applied.
        self.cursor = 0
        self.total_ticks = int(np.asarray(program.offered_tps).size)
        #: Whether the cell has ever received a batched block.
        self.admitted = False

    def scope(self):
        if self.program.scope is not None:
            return self.program.scope()
        return contextlib.nullcontext()


class TensorBatchEngine:
    """Drives N simulator generators, fusing their quiescent blocks.

    Parameters
    ----------
    programs:
        the cells to run; cells sharing a shape signature are fused,
        the rest still run correctly (each in its own block call).
    clock:
        optional zero-argument callable returning seconds (e.g.
        ``time.perf_counter``); used only for per-cell elapsed
        accounting.  None keeps this module free of wall-clock reads.
    """

    def __init__(
        self,
        programs: Sequence[TensorProgram],
        clock: Optional[Callable[[], float]] = None,
    ):
        programs = list(programs)
        if not programs:
            raise SimulationError("TensorBatchEngine needs at least one program")
        self._programs = programs
        self._clock = clock

    # ------------------------------------------------------------------

    def run(self) -> TensorBatchReport:
        """Run every cell to completion; returns the batch report.

        Cell failures are recorded in the cell's outcome (``error``) and
        do not disturb the other cells.
        """
        report = TensorBatchReport(outcomes=[])
        states = [_CellState(i, p) for i, p in enumerate(self._programs)]
        report.outcomes = [s.outcome for s in states]
        for state in states:
            self._advance(state, None)
        while True:
            pending = [s for s in states if s.request is not None]
            if not pending:
                break
            report.rounds += 1
            groups: Dict[Tuple[int, int], List[_CellState]] = {}
            for state in pending:
                groups.setdefault(state.program.signature(), []).append(state)
            for group in groups.values():
                report.fused_calls += 1
                self._step_group(group)
            for state in pending:
                block, state.block = state.block, None
                if block is None:
                    continue  # errored during the group step
                request = state.request
                state.request = None
                state.outcome.batched_ticks += request.ticks
                state.cursor = request.end
                state.admitted = True
                self._advance(state, block)
        for state in states:
            outcome = state.outcome
            if outcome.error is None:
                outcome.scalar_ticks = state.total_ticks - outcome.batched_ticks
            report.batched_ticks += outcome.batched_ticks
            report.scalar_ticks += outcome.scalar_ticks
            report.evictions += outcome.evictions
        return report

    # ------------------------------------------------------------------

    def _advance(self, state: _CellState, block) -> None:
        """Send ``block`` into the cell's generator; record the next
        request, the final result, or the failure."""
        started = self._clock() if self._clock is not None else None
        try:
            with state.scope():
                state.request = state.gen.send(block)
        except StopIteration as stop:
            state.request = None
            state.outcome.result = stop.value
        except Exception as exc:  # noqa: BLE001 - isolated per cell
            state.request = None
            state.outcome.error = "".join(
                traceback.format_exception_only(type(exc), exc)
            ).strip()
        else:
            # Ticks between the last applied block and the new request
            # ran scalar inside the generator (migration/fault/boundary
            # stretches).  After the first batched block that gap is an
            # eviction + re-admission.
            if state.request.start > state.cursor and state.admitted:
                state.outcome.evictions += 1
        if started is not None:
            state.outcome.elapsed_seconds += self._clock() - started

    def _step_group(self, group: List[_CellState]) -> None:
        """Answer every pending request of one same-signature group.

        Stateful stages (prep, RNG draws, finish) run per engine in
        scalar order; the pure sampling math of all fully-completed
        blocks is fused into one tick-axis-concatenated call.
        """
        prepped: List[Tuple[_CellState, object]] = []
        for state in group:
            engine = state.program.simulator.engine
            request = state.request
            started = self._clock() if self._clock is not None else None
            try:
                with state.scope():
                    prep = engine._block_prep(
                        1.0, request.offered, request.shares
                    )
            except Exception as exc:  # noqa: BLE001 - isolated per cell
                state.request = None
                state.block = None
                state.outcome.error = "".join(
                    traceback.format_exception_only(type(exc), exc)
                ).strip()
                state.gen.close()
            else:
                prepped.append((state, prep))
            if started is not None:
                state.outcome.elapsed_seconds += self._clock() - started

        fused: List[Tuple[_CellState, object, np.ndarray, np.ndarray]] = []
        for state, prep in prepped:
            engine = state.program.simulator.engine
            started = self._clock() if self._clock is not None else None
            if np.all(prep.total_completed > 0.0):
                uniforms, exponentials = engine._block_sample_draws(prep.ticks)
                fused.append((state, prep, uniforms, exponentials))
                percentiles = None
            else:
                # Zero-completed ticks consume no draws; the batched
                # layout does not apply — the engine replays per tick.
                with state.scope():
                    percentiles = engine._block_fallback_samples(prep)
            if percentiles is not None:
                with state.scope():
                    state.block = engine._block_finish(prep, *percentiles)
            if started is not None:
                state.outcome.elapsed_seconds += self._clock() - started

        if not fused:
            return
        started = self._clock() if self._clock is not None else None
        p50, p95, p99 = QueueingEngine._block_sample_math(
            np.concatenate([prep.arrivals for _, prep, _, _ in fused]),
            np.concatenate(
                [
                    np.broadcast_to(prep.mu_eff, prep.arrivals.shape)
                    for _, prep, _, _ in fused
                ]
            ),
            np.concatenate([prep.backlog_mid for _, prep, _, _ in fused]),
            np.concatenate([prep.completed for _, prep, _, _ in fused]),
            np.concatenate([prep.total_completed for _, prep, _, _ in fused]),
            np.concatenate([uniforms for _, _, uniforms, _ in fused]),
            np.concatenate([exponentials for _, _, _, exponentials in fused]),
        )
        offset = 0
        total = self._clock() - started if started is not None else 0.0
        all_ticks = sum(prep.ticks for _, prep, _, _ in fused)
        for state, prep, _, _ in fused:
            engine = state.program.simulator.engine
            ticks = prep.ticks
            rows = slice(offset, offset + ticks)
            offset += ticks
            finish_started = (
                self._clock() if self._clock is not None else None
            )
            with state.scope():
                state.block = engine._block_finish(
                    prep, p50[rows], p95[rows], p99[rows]
                )
            if self._clock is not None:
                # Apportion the fused call's cost by each cell's share of
                # its ticks; exact per-cell split is unobservable.
                state.outcome.elapsed_seconds += total * (ticks / all_ticks)
                state.outcome.elapsed_seconds += (
                    self._clock() - finish_started
                )


def run_programs(
    programs: Sequence[TensorProgram],
    clock: Optional[Callable[[], float]] = None,
) -> TensorBatchReport:
    """One-call convenience wrapper around :class:`TensorBatchEngine`."""
    return TensorBatchEngine(programs, clock=clock).run()
