"""Simulation drivers: the full elastic-DBMS simulator (Figs. 7-11) and
the fast capacity-level simulator used for the 4.5-month sweeps
(Sec. 8.3, Figs. 12-13)."""

from .capacity_sim import (
    CapacitySimResult,
    CapacitySimulator,
    run_capacity_simulation,
)
from .metrics import (
    CapacityCostPoint,
    SlaRow,
    capacity_cost_points,
    relative_improvement,
    sla_table,
)
from .simulator import ElasticDbSimulator, SimulationResult

__all__ = [
    "CapacityCostPoint",
    "CapacitySimResult",
    "CapacitySimulator",
    "ElasticDbSimulator",
    "SimulationResult",
    "SlaRow",
    "capacity_cost_points",
    "relative_improvement",
    "run_capacity_simulation",
    "sla_table",
]
