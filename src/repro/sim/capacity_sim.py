"""Fast capacity-level simulation (the Section 8.3 methodology).

"It is not practical to run the B2W benchmark for longer than a few
days ... Therefore, to compare the performance of the different
allocation strategies and different parameter settings over a long
period of time, we use simulation."

The capacity simulator advances one planner slot at a time (5 minutes by
default) and tracks, for any provisioning strategy:

* machines allocated (with just-in-time allocation during moves);
* the system's *effective capacity* while data is in flight (Eq. 7);
* whether the actual load exceeded that capacity ("insufficient
  capacity", the y-axis of Fig. 12);
* total cost in machine-slots (Eq. 1, the x-axis of Fig. 12).

Latency is not modelled here — that is the job of the full simulator in
:mod:`repro.sim.simulator` — which is exactly the trade the paper makes
for its 4.5-month sweeps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..check import invariants
from ..config import PStoreConfig
from ..elasticity.base import ProvisioningStrategy
from ..errors import SimulationError
from ..squall.migrator import ActiveMigration
from ..squall.schedule import build_migration_schedule
from ..telemetry import get_telemetry
from ..workload.trace import LoadTrace


@dataclass
class CapacitySimResult:
    """Time series and summary statistics of one capacity-sim run."""

    strategy_name: str
    slot_seconds: float
    load_tps: np.ndarray
    peak_load_tps: np.ndarray    # instantaneous within-slot peak (Sec. 8.3)
    machines: np.ndarray
    eff_cap_target: np.ndarray   # capacity at the target rate Q (planning view)
    eff_cap_max: np.ndarray      # capacity at the max rate Q-hat (violations)
    migrating: np.ndarray
    emergencies: int
    moves_started: int

    @property
    def n_slots(self) -> int:
        return int(self.load_tps.size)

    @property
    def cost_machine_slots(self) -> float:
        """Eq. 1: the summed machine allocation over time."""
        return float(self.machines.sum())

    @property
    def average_machines(self) -> float:
        return float(self.machines.mean())

    @property
    def insufficient_slots(self) -> int:
        """Slots where the *instantaneous* load exceeded the effective
        max-rate capacity.  The paper: "The percentage of time with
        insufficient capacity is not zero because the predictions are at
        the granularity of five minutes, and instantaneous load may have
        spikes."
        """
        return int(np.sum(self.peak_load_tps > self.eff_cap_max + 1e-9))

    @property
    def pct_time_insufficient(self) -> float:
        return 100.0 * self.insufficient_slots / self.n_slots

    def summary(self) -> str:
        return (
            f"{self.strategy_name}: avg machines {self.average_machines:.2f}, "
            f"insufficient {self.pct_time_insufficient:.2f}% of time, "
            f"{self.moves_started} moves ({self.emergencies} emergency)"
        )


class CapacitySimulator:
    """Drives one strategy through a load trace at slot granularity."""

    def __init__(
        self,
        config: PStoreConfig,
        initial_machines: int,
        history_seed: Sequence[float] = (),
        peak_sigma: float = 0.08,
        peak_seed: int = 101,
        telemetry=None,
    ):
        if initial_machines < 1:
            raise SimulationError("initial_machines must be >= 1")
        if peak_sigma < 0:
            raise SimulationError("peak_sigma must be >= 0")
        self.config = config
        self.initial_machines = initial_machines
        self._telemetry = telemetry if telemetry is not None else get_telemetry()
        #: Within-slot instantaneous peaks exceed the slot average by a
        #: random factor ``1 + |N(0, peak_sigma)|``.
        self.peak_sigma = peak_sigma
        self.peak_seed = peak_seed
        #: Measured-load history handed to strategies; benches seed it
        #: with the predictor's training window so SPAR has context from
        #: slot zero.
        self.history: List[float] = [float(v) for v in history_seed]

    def run(
        self,
        trace: LoadTrace,
        strategy: ProvisioningStrategy,
    ) -> CapacitySimResult:
        """Simulate ``strategy`` over ``trace``, one slot at a time."""
        config = self.config
        if abs(trace.slot_seconds - config.interval_seconds) > 1e-9:
            raise SimulationError(
                f"trace slots ({trace.slot_seconds}s) must match the planner "
                f"interval ({config.interval_seconds}s)"
            )
        load_tps = trace.as_rate_per_second()
        n_slots = load_tps.size
        slot_seconds = trace.slot_seconds
        peak_rng = np.random.default_rng(self.peak_seed)
        peak_load = load_tps * (
            1.0 + np.abs(peak_rng.normal(0.0, self.peak_sigma, n_slots))
        )

        strategy.reset(self.initial_machines)
        machines = self.initial_machines
        migration: Optional[ActiveMigration] = None
        migration_target = machines
        migration_before = machines
        migration_emergency = False
        migration_started = 0.0

        out_machines = np.empty(n_slots)
        out_eff_q = np.empty(n_slots)
        out_eff_qhat = np.empty(n_slots)
        out_migrating = np.zeros(n_slots, dtype=bool)
        emergencies = 0
        moves_started = 0
        history = self.history
        tel = self._telemetry
        recording = tel.enabled
        chron = tel.chronicle
        move_rec_id: Optional[str] = None
        expected: Optional[dict] = None

        for slot in range(n_slots):
            history.append(float(load_tps[slot]))
            if recording:
                # history may be pre-seeded with the training window;
                # forecast events key on history length, so use it as slot.
                tel.events.emit(
                    "interval",
                    time=(slot + 1) * slot_seconds,
                    slot=len(history) - 1,
                    tps=float(load_tps[slot]),
                )
                harvest = tel.accuracy.observe(
                    len(history) - 1, float(load_tps[slot]),
                    time=(slot + 1) * slot_seconds,
                )
                expected = harvest[0] if harvest else None

            if migration is None:
                decision = strategy.decide(slot, history, machines)
                if decision.acts and decision.target_machines != machines:
                    schedule = build_migration_schedule(
                        machines, decision.target_machines
                    )
                    migration = ActiveMigration(
                        schedule=schedule,
                        database_kb=config.database_kb,
                        rate_kbps=config.migration_rate_kbps
                        * decision.rate_multiplier,
                        partitions_per_node=config.partitions_per_node,
                    )
                    migration_target = decision.target_machines
                    migration_before = machines
                    migration_emergency = decision.emergency
                    migration_started = slot * slot_seconds
                    moves_started += 1
                    if decision.emergency:
                        emergencies += 1
                    if recording:
                        tel.events.emit(
                            "migration.start",
                            time=migration_started,
                            before=machines,
                            after=migration_target,
                            emergency=decision.emergency,
                            reason=decision.reason,
                            rate_kbps=config.migration_rate_kbps
                            * decision.rate_multiplier,
                            est_seconds=migration.total_seconds,
                        )
                        rec = chron.record(
                            "migration.start",
                            time=migration_started,
                            parent=getattr(decision, "record_id", None),
                            before=migration_before,
                            after=migration_target,
                            emergency=decision.emergency,
                            reason=decision.reason,
                            rate_kbps=config.migration_rate_kbps
                            * decision.rate_multiplier,
                            est_seconds=migration.total_seconds,
                            slot=slot,
                        )
                        move_rec_id = rec.get("id")
                    strategy.notify_move_started(decision.target_machines)

            if migration is not None:
                # State during this slot: sample at the slot midpoint.
                migration.advance(slot_seconds / 2.0)
                fractions = migration.data_fractions()
                largest = float(fractions.max())
                out_machines[slot] = migration.machines_allocated()
                out_eff_q[slot] = config.q / largest
                out_eff_qhat[slot] = config.q_hat / largest
                out_migrating[slot] = True
                migration.advance(slot_seconds / 2.0)
                if migration.done:
                    now = (slot + 1) * slot_seconds
                    if recording:
                        tel.events.emit(
                            "migration.complete",
                            time=now,
                            before=migration_before,
                            after=migration_target,
                            seconds=now - migration_started,
                            emergency=migration_emergency,
                        )
                        tel.metrics.histogram(
                            "migrate.duration_seconds",
                            bounds=tuple(float(2 ** i) for i in range(24)),
                        ).observe(now - migration_started)
                        chron.record(
                            "migration.complete",
                            time=now,
                            parent=move_rec_id,
                            before=migration_before,
                            after=migration_target,
                            seconds=now - migration_started,
                            emergency=migration_emergency,
                        )
                        move_rec_id = None
                    machines = migration_target
                    migration = None
                    strategy.notify_move_finished(machines)
            else:
                out_machines[slot] = machines
                out_eff_q[slot] = config.q * machines
                out_eff_qhat[slot] = config.q_hat * machines

            if recording:
                self._record_slot(
                    tel, slot, slot_seconds,
                    float(load_tps[slot]),
                    int(out_machines[slot]),
                    float(out_eff_qhat[slot]),
                    bool(out_migrating[slot]),
                )
                if peak_load[slot] > out_eff_qhat[slot] + 1e-9:
                    # Fig. 12's y-axis, chronicled: whom do we blame for
                    # this slot running out of capacity?
                    if out_migrating[slot] and move_rec_id:
                        parent = move_rec_id
                    elif expected is not None:
                        parent = expected.get("snapshot_id")
                    else:
                        parent = chron.last("forecast.snapshot")
                    chron.record(
                        "capacity.insufficient",
                        time=(slot + 1) * slot_seconds,
                        parent=parent,
                        slot=slot,
                        peak_tps=float(peak_load[slot]),
                        load_tps=float(load_tps[slot]),
                        eff_cap=float(out_eff_qhat[slot]),
                        machines=int(out_machines[slot]),
                        migrating=bool(out_migrating[slot]),
                        predicted_tps=(
                            expected.get("predicted") if expected else None
                        ),
                        inflated_tps=(
                            expected.get("inflated") if expected else None
                        ),
                        predictor=(
                            expected.get("predictor") if expected else None
                        ),
                    )

        if recording:
            tel.metrics.gauge("sim.slots").set(n_slots)
            tel.metrics.counter("sim.moves_started").inc(moves_started)
            tel.metrics.counter("sim.emergencies").inc(emergencies)

        if invariants.enabled(invariants.CHEAP):
            invariants.check_capacity_accounting(
                out_machines, out_eff_q, out_eff_qhat, out_migrating,
                config.q, config.q_hat, "CapacitySimulator.run",
            )

        return CapacitySimResult(
            strategy_name=strategy.name,
            slot_seconds=slot_seconds,
            load_tps=np.asarray(load_tps, dtype=float).copy(),
            peak_load_tps=peak_load,
            machines=out_machines,
            eff_cap_target=out_eff_q,
            eff_cap_max=out_eff_qhat,
            migrating=out_migrating,
            emergencies=emergencies,
            moves_started=moves_started,
        )

    def _record_slot(
        self,
        tel,
        slot: int,
        slot_seconds: float,
        load_tps: float,
        machines: int,
        eff_cap_max: float,
        migrating: bool,
    ) -> None:
        """Publish one slot's allocation sample and analytic latency.

        The capacity simulator deliberately skips queueing dynamics, so
        the latency quantiles here are the *steady-state M/M/1 estimate*
        implied by the slot's utilization — a telemetry-grade proxy for
        dashboards, not the full engine's measurement (Sec. 8.3 trades
        exactly this fidelity for 4.5-month sweeps)."""
        from ..hstore.engine import DEFAULT_MU_PARTITION

        tel.events.emit(
            "machines",
            time=(slot + 1) * slot_seconds,
            slot=slot,
            machines=machines,
            migrating=migrating,
        )
        tel.metrics.gauge("sim.machines").set(machines)
        # Per-partition arrival rate implied by the effective capacity:
        # at load == eff_cap_max every partition runs at Q_hat's share of
        # its service rate; clamp headroom like the engine does.
        mu = DEFAULT_MU_PARTITION
        utilization = load_tps / eff_cap_max if eff_cap_max > 0 else 1.0
        lam = min(utilization, 1.0) * 0.80 * mu
        headroom = max(mu - lam, 0.02 * mu)
        for name, pct in (
            ("sim.latency_p50_ms", 0.50),
            ("sim.latency_p95_ms", 0.95),
            ("sim.latency_p99_ms", 0.99),
        ):
            sojourn_ms = -math.log(1.0 - pct) / headroom * 1000.0
            tel.metrics.histogram(name).observe(sojourn_ms)


def run_capacity_simulation(
    trace: LoadTrace,
    strategy: ProvisioningStrategy,
    config: PStoreConfig,
    initial_machines: int,
    history_seed: Sequence[float] = (),
    peak_sigma: float = 0.08,
    telemetry=None,
) -> CapacitySimResult:
    """Convenience wrapper: one strategy, one trace, one result."""
    simulator = CapacitySimulator(
        config=config,
        initial_machines=initial_machines,
        history_seed=history_seed,
        peak_sigma=peak_sigma,
        telemetry=telemetry,
    )
    return simulator.run(trace, strategy)
