"""Cross-run metric helpers for the evaluation tables.

These functions assemble the numbers reported in Table 2 (SLA violations
and average machines per strategy) and the normalised-cost comparisons of
Figure 12 into plain dictionaries the benches can render.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..errors import SimulationError
from .capacity_sim import CapacitySimResult
from .simulator import SimulationResult


@dataclass(frozen=True)
class SlaRow:
    """One row of Table 2."""

    approach: str
    violations_p50: int
    violations_p95: int
    violations_p99: int
    average_machines: float

    def as_tuple(self):
        return (
            self.approach,
            self.violations_p50,
            self.violations_p95,
            self.violations_p99,
            self.average_machines,
        )


def sla_table(results: Sequence[SimulationResult]) -> List[SlaRow]:
    """Build Table 2 from a set of benchmark runs."""
    rows = []
    for result in results:
        violations = result.sla_violations()
        rows.append(
            SlaRow(
                approach=result.strategy_name,
                violations_p50=violations.get(50.0, 0),
                violations_p95=violations.get(95.0, 0),
                violations_p99=violations.get(99.0, 0),
                average_machines=result.average_machines,
            )
        )
    return rows


@dataclass(frozen=True)
class CapacityCostPoint:
    """One point of Figure 12: a (strategy, Q) simulation."""

    strategy: str
    q: float
    normalized_cost: float
    pct_time_insufficient: float


def capacity_cost_points(
    results: Dict[str, List[CapacitySimResult]],
    qs: Dict[str, List[float]],
    baseline_cost: float,
) -> List[CapacityCostPoint]:
    """Normalise capacity-sim sweeps against a baseline cost.

    ``results[name]`` holds one result per swept Q (``qs[name]``);
    ``baseline_cost`` is the machine-slot cost of the default P-Store
    run, which the paper uses as cost = 1.0.
    """
    if baseline_cost <= 0:
        raise SimulationError("baseline cost must be positive")
    points: List[CapacityCostPoint] = []
    for name, runs in results.items():
        q_values = qs[name]
        if len(q_values) != len(runs):
            raise SimulationError(f"sweep mismatch for strategy {name!r}")
        for q, run in zip(q_values, runs):
            points.append(
                CapacityCostPoint(
                    strategy=name,
                    q=q,
                    normalized_cost=run.cost_machine_slots / baseline_cost,
                    pct_time_insufficient=run.pct_time_insufficient,
                )
            )
    return points


def relative_improvement(baseline: int, improved: int) -> float:
    """Percentage reduction, e.g. P-Store's "72% fewer latency violations"."""
    if baseline <= 0:
        raise SimulationError("baseline count must be positive")
    return 100.0 * (baseline - improved) / baseline
