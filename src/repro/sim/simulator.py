"""Full elastic-DBMS simulation: load, latency, and live migration.

:class:`ElasticDbSimulator` reproduces the paper's benchmark experiments
(Figures 7-11): it ticks second by second, feeding the offered load into
the calibrated per-partition queueing engine, consulting the provisioning
strategy once per planner interval, and executing reconfigurations with
the three-case parallel schedule — including just-in-time machine
allocation, the shifting data distribution (which sets each node's load
share), and the CPU interference of chunked data movement.

Outputs are per-second latency percentiles, throughput, and machine
allocation — the same series the paper plots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..check import invariants
from ..config import DEFAULT_CHUNK_KB, PStoreConfig
from ..elasticity.base import ProvisioningStrategy
from ..errors import SimulationError
from ..faults.injector import injector_from_config
from ..faults.retry import RetryPolicy
from ..hstore.engine import (
    MigrationInterference,
    QueueingEngine,
)
from ..hstore.latency import PercentileSeries
from ..squall.migrator import ActiveMigration
from ..squall.schedule import build_migration_schedule
from ..telemetry import get_telemetry


@dataclass
class BlockRequest:
    """One quiescent stretch the driver should advance in a batch.

    Yielded by :meth:`ElasticDbSimulator.drive`; the driver answers with
    the :class:`~repro.hstore.engine.BlockStats` of
    ``engine.step_block(1.0, offered, shares)``.  ``start``/``end`` are
    tick indices into the run's offered-load array (``end`` exclusive).
    """

    start: int
    end: int
    shares: np.ndarray
    offered: np.ndarray

    @property
    def ticks(self) -> int:
        return self.end - self.start


@dataclass
class SimulationResult:
    """Per-second series plus summary statistics of one benchmark run."""

    strategy_name: str
    latency: PercentileSeries
    offered_tps: np.ndarray
    completed_tps: np.ndarray
    machines: np.ndarray
    migrating: np.ndarray
    emergencies: int
    moves_started: int
    sla_ms: float

    @property
    def seconds(self) -> int:
        return int(self.offered_tps.size)

    @property
    def average_machines(self) -> float:
        return float(self.machines.mean())

    def sla_violations(self) -> Dict[float, int]:
        """Seconds above the SLA per tracked percentile (Table 2)."""
        return self.latency.violation_summary(self.sla_ms)

    def summary(self) -> str:
        violations = self.sla_violations()
        parts = ", ".join(
            f"p{int(q)}={violations[q]}" for q in sorted(violations)
        )
        return (
            f"{self.strategy_name}: SLA violations [{parts}] "
            f"avg machines {self.average_machines:.2f} "
            f"({self.moves_started} moves, {self.emergencies} emergency)"
        )


class ElasticDbSimulator:
    """Second-granularity elastic DBMS simulation.

    Parameters
    ----------
    config:
        model parameters; ``interval_seconds`` sets how often the
        strategy is consulted.
    max_machines:
        machines physically available (the paper's cluster has 10).
    initial_machines:
        active machines at t=0.
    chunk_kb:
        migration chunk size (Fig. 8 sweeps this).
    seed, engine_kwargs:
        forwarded to the queueing engine (skew/noise processes).
    injector:
        optional :class:`~repro.faults.FaultInjector`; defaults to the
        one described by ``config.faults`` (None when disabled, keeping
        fault-free runs bit-identical to pre-chaos builds).  Forecast
        drift is applied inside the strategy, so pass the same injector
        to :class:`~repro.elasticity.predictive.PStoreStrategy` when a
        scenario includes it.
    fast_path:
        advance quiescent stretches (no migration, no pending fault
        activity, constant machine count, away from planner boundaries)
        with the vectorized :meth:`QueueingEngine.step_block` kernel.
        Results are bit-identical to the scalar per-second loop
        (``fast_path=False``); the flag exists for differential testing
        and benchmarking.
    """

    #: Shortest quiescent stretch worth dispatching to the block kernel;
    #: below this the batched call's fixed overhead beats its savings.
    MIN_BLOCK_TICKS = 4

    def __init__(
        self,
        config: PStoreConfig,
        max_machines: int = 10,
        initial_machines: int = 4,
        chunk_kb: float = DEFAULT_CHUNK_KB,
        seed: int = 1,
        engine_kwargs: Optional[dict] = None,
        telemetry=None,
        injector=None,
        fast_path: bool = True,
    ):
        if not 1 <= initial_machines <= max_machines:
            raise SimulationError(
                f"need 1 <= initial_machines <= max_machines "
                f"(got {initial_machines}, {max_machines})"
            )
        self.config = config
        self.max_machines = max_machines
        self.initial_machines = initial_machines
        self.chunk_kb = chunk_kb
        self.fast_path = fast_path
        self._telemetry = telemetry if telemetry is not None else get_telemetry()
        self._injector = (
            injector
            if injector is not None
            else injector_from_config(config, telemetry=telemetry)
        )
        p = config.partitions_per_node
        self.engine = QueueingEngine(
            n_partitions=max_machines * p,
            seed=seed,
            telemetry=self._telemetry,
            **(engine_kwargs or {}),
        )

    @property
    def injector(self):
        """The attached fault injector (None on fault-free runs)."""
        return self._injector

    # ------------------------------------------------------------------

    def run(
        self,
        offered_tps: Sequence[float],
        strategy: ProvisioningStrategy,
        history_seed_tps: Sequence[float] = (),
    ) -> SimulationResult:
        """Simulate ``len(offered_tps)`` seconds of the benchmark.

        ``offered_tps[t]`` is the aggregate offered load during second
        ``t``.  ``history_seed_tps`` pre-populates the strategy's
        per-interval load history (one value per planner interval) so
        predictive strategies start with enough context.

        Implemented as a pump over :meth:`drive`: every
        :class:`BlockRequest` the generator yields is answered with this
        simulator's own engine — the serial execution the tensor driver
        (:mod:`repro.sim.tensor`) must match bit-for-bit.
        """
        gen = self.drive(offered_tps, strategy, history_seed_tps)
        block = None
        while True:
            try:
                request = gen.send(block)
            except StopIteration as stop:
                return stop.value
            block = self.engine.step_block(
                1.0, request.offered, request.shares
            )

    def drive(
        self,
        offered_tps: Sequence[float],
        strategy: ProvisioningStrategy,
        history_seed_tps: Sequence[float] = (),
    ):
        """The simulation as a resumable block-request generator.

        Yields a :class:`BlockRequest` for every quiescent stretch the
        fast path would batch, and expects ``send(block_stats)`` with the
        result of ``engine.step_block(1.0, request.offered,
        request.shares)``.  All non-quiescent work — migration rounds,
        fault windows, planner boundaries — runs *inside* the generator
        on the scalar engine between yields, which is exactly the
        eviction/re-admission semantic of the cross-cell tensor driver:
        a cell is "evicted" while its generator advances scalar ticks
        internally and "re-admitted" at its next yield.  Returns the
        :class:`SimulationResult` via ``StopIteration.value``.
        """
        config = self.config
        offered = np.asarray(offered_tps, dtype=float)
        if offered.ndim != 1 or offered.size == 0:
            raise SimulationError("offered_tps must be a non-empty 1-D array")
        if np.any(offered < 0):
            raise SimulationError("offered load cannot be negative")
        interval = int(round(config.interval_seconds))
        if interval < 1:
            raise SimulationError("interval_seconds must be >= 1 second")

        p = config.partitions_per_node
        total_partitions = self.max_machines * p
        active: List[int] = list(range(self.initial_machines))
        machines = self.initial_machines
        strategy.reset(machines)

        migration: Optional[ActiveMigration] = None
        migration_rate = config.migration_rate_kbps
        migration_target = machines
        retiring: List[int] = []

        history: List[float] = [float(v) for v in history_seed_tps]
        interval_accumulator: List[float] = []

        n = offered.size
        engine_time_start = self.engine.time
        out_machines = np.empty(n)
        out_migrating = np.zeros(n, dtype=bool)
        out_completed = np.empty(n)
        p50 = np.empty(n)
        p95 = np.empty(n)
        p99 = np.empty(n)
        emergencies = 0
        moves_started = 0
        tel = self._telemetry
        recording = tel.enabled
        chron = tel.chronicle
        migration_before = machines
        migration_emergency = False
        migration_started = 0.0
        move_rec_id: Optional[str] = None
        # Per-interval accounting feeding the chronicle's sla.violation
        # records: seconds above the SLA, worst p99, and how many of the
        # interval's seconds were spent migrating / under fault activity.
        iv_viol = 0
        iv_viol_p99 = 0.0
        iv_migr = 0
        iv_fault = 0

        # Fault-injection state (inert on fault-free runs).
        injector = self._injector
        retry = RetryPolicy.from_config(config.faults)
        retry_rng = (
            np.random.default_rng(injector.seed + 1)
            if injector is not None
            else None
        )
        crashed: List[int] = []
        pending_recovery: List = []
        stall_watch = None
        stall_attempts = 0
        next_retry_at = 0.0
        resend_seconds = 0.0
        resend_records: List = []

        t = 0
        while t < n:
            # ---------------- fault injection --------------------------
            if injector is not None:
                injector.advance(float(t))
                for record in injector.take_new_crashes():
                    if len(active) <= 1:
                        # The last machine cannot be killed.
                        injector.mark_detected(record, float(t))
                        injector.mark_recovered(record, float(t))
                        continue
                    if migration is not None:
                        migration = None
                        retiring = []
                        machines = len(active)
                        resend_seconds = 0.0
                        resend_records = []
                        stall_watch = None
                        if recording:
                            tel.events.emit(
                                "migration.aborted",
                                time=float(t),
                                before=migration_before,
                                after=migration_target,
                                reason="node crash",
                            )
                            chron.record(
                                "migration.aborted",
                                time=float(t),
                                parent=move_rec_id,
                                before=migration_before,
                                after=migration_target,
                                reason="node crash",
                            )
                            move_rec_id = None
                        strategy.notify_move_finished(machines)
                    victim = injector.resolve_crash_node(record, active)
                    injector.mark_detected(record, float(t))
                    active.remove(victim)
                    crashed.append(victim)
                    machines = len(active)
                    pending_recovery.append(record)
                    if recording:
                        tel.events.emit(
                            "sim.node-down",
                            time=float(t),
                            node=victim,
                            machines=machines,
                        )
                        chron.record(
                            "node.remove",
                            time=float(t),
                            parent=chron.last("fault.injected"),
                            node=victim,
                            machines=machines,
                            reason="crash",
                        )
            # ---------------- vectorized quiescent fast path -----------
            # A stretch with no migration, no upcoming fault activity,
            # and no planner boundary has constant shares, so the whole
            # span collapses into one batched engine call that is
            # bit-identical to the scalar per-second ticks it replaces.
            if self.fast_path and migration is None:
                block_end = self._quiescent_until(
                    t, n, interval, len(interval_accumulator), injector
                )
                if block_end - t >= self.MIN_BLOCK_TICKS:
                    shares = np.zeros(total_partitions)
                    for machine in active:
                        shares[machine * p : (machine + 1) * p] = 1.0 / (
                            machines * p
                        )
                    block = yield BlockRequest(
                        t, block_end, shares, offered[t:block_end]
                    )
                    out_machines[t:block_end] = machines
                    out_completed[t:block_end] = block.completed_tps
                    p50[t:block_end] = block.p50_ms
                    p95[t:block_end] = block.p95_ms
                    p99[t:block_end] = block.p99_ms
                    interval_accumulator.extend(offered[t:block_end].tolist())
                    if recording:
                        metrics = tel.metrics
                        for i in range(t, block_end):
                            metrics.histogram("sim.latency_p50_ms").observe(
                                float(p50[i])
                            )
                            metrics.histogram("sim.latency_p95_ms").observe(
                                float(p95[i])
                            )
                            metrics.histogram("sim.latency_p99_ms").observe(
                                float(p99[i])
                            )
                            if p99[i] > config.sla_latency_ms:
                                metrics.counter("sim.sla_violation_seconds").inc()
                                iv_viol += 1
                                iv_viol_p99 = max(iv_viol_p99, float(p99[i]))
                        if pending_recovery:
                            iv_fault += block_end - t
                    t = block_end
                    continue

            # ---------------- planning (per interval boundary) --------
            interval_accumulator.append(float(offered[t]))
            if len(interval_accumulator) == interval:
                mean_tps = float(np.mean(interval_accumulator))
                history.append(mean_tps)
                interval_accumulator.clear()
                if recording:
                    tel.events.emit(
                        "interval", time=float(t + 1),
                        slot=len(history) - 1, tps=mean_tps,
                    )
                    tel.events.emit(
                        "machines", time=float(t + 1),
                        slot=len(history) - 1, machines=int(machines),
                        migrating=migration is not None,
                    )
                    # Close the forecast-accuracy loop for this slot and,
                    # if the interval had SLA violations, chronicle them
                    # with the most plausible causal parent: an active
                    # fault beats migration overhead beats the forecast
                    # that sized the cluster.
                    harvest = tel.accuracy.observe(
                        len(history) - 1, mean_tps, time=float(t + 1)
                    )
                    expected = harvest[0] if harvest else None
                    if iv_viol:
                        if iv_fault and chron.last("fault.injected"):
                            parent = chron.last("fault.injected")
                        elif iv_migr and move_rec_id:
                            parent = move_rec_id
                        elif expected is not None:
                            parent = expected.get("snapshot_id")
                        else:
                            parent = chron.last("forecast.snapshot")
                        chron.record(
                            "sla.violation",
                            time=float(t + 1),
                            parent=parent,
                            slot=len(history) - 1,
                            seconds=iv_viol,
                            p99_max_ms=iv_viol_p99,
                            measured_tps=mean_tps,
                            machines=int(machines),
                            migrating_seconds=iv_migr,
                            fault_seconds=iv_fault,
                            predicted_tps=(
                                expected.get("predicted") if expected else None
                            ),
                            inflated_tps=(
                                expected.get("inflated") if expected else None
                            ),
                        )
                    iv_viol = 0
                    iv_viol_p99 = 0.0
                    iv_migr = 0
                    iv_fault = 0
                if migration is None:
                    slot = len(history) - 1
                    decision = strategy.decide(slot, history, machines)
                    target = decision.target_machines
                    if crashed and decision.acts and target is not None:
                        # Dead machines shrink the physical pool.
                        target = min(target, self.max_machines - len(crashed))
                    if (
                        decision.acts
                        and target != machines
                        and 1 <= target <= self.max_machines - len(crashed)
                    ):
                        migration_rate = (
                            config.migration_rate_kbps * decision.rate_multiplier
                        )
                        migration, retiring = self._start_move(
                            active, machines, target,
                            migration_rate, excluded=crashed,
                        )
                        migration_target = target
                        migration_before = machines
                        migration_emergency = decision.emergency
                        migration_started = float(t + 1)
                        moves_started += 1
                        if decision.emergency:
                            emergencies += 1
                        if recording:
                            tel.events.emit(
                                "migration.start",
                                time=migration_started,
                                before=machines,
                                after=migration_target,
                                emergency=decision.emergency,
                                reason=decision.reason,
                                rate_kbps=migration_rate,
                                est_seconds=migration.total_seconds,
                            )
                            rec = chron.record(
                                "migration.start",
                                time=migration_started,
                                parent=getattr(decision, "record_id", None),
                                before=migration_before,
                                after=migration_target,
                                emergency=decision.emergency,
                                reason=decision.reason,
                                rate_kbps=migration_rate,
                                est_seconds=migration.total_seconds,
                                slot=len(history) - 1,
                            )
                            move_rec_id = rec.get("id")
                            if migration_target > migration_before:
                                chron.record(
                                    "node.add",
                                    time=migration_started,
                                    parent=move_rec_id,
                                    nodes=list(
                                        active[
                                            -(migration_target
                                              - migration_before):
                                        ]
                                    ),
                                )
                        strategy.notify_move_started(target)
                        if injector is not None:
                            injector.notify_migration_started(float(t + 1))
                if migration is None and pending_recovery:
                    # A quiet planning boundary with the survivors: the
                    # controller saw the smaller cluster and needed no
                    # move (or its replacement move completed) — the
                    # allocation is feasible again.
                    for record in pending_recovery:
                        injector.mark_recovered(record, float(t + 1))
                    pending_recovery = []

            # ---------------- capacity state for this second ----------
            if migration is not None:
                fractions = migration.data_fractions()
                node_map = migration.node_map or {}
                shares = np.zeros(total_partitions)
                for logical, fraction in enumerate(fractions):
                    machine = node_map.get(logical, logical)
                    shares[machine * p : (machine + 1) * p] = fraction / p
                busy_machines = migration.physical_nodes(
                    migration.migrating_machines()
                )
                interference = self._interference(
                    total_partitions, busy_machines, migration_rate
                )
                out_machines[t] = migration.machines_allocated()
                out_migrating[t] = True
            else:
                shares = np.zeros(total_partitions)
                for machine in active:
                    shares[machine * p : (machine + 1) * p] = 1.0 / (
                        machines * p
                    )
                interference = None
                out_machines[t] = machines

            capacity = None
            if injector is not None and injector.any_slowdown_active:
                machine_caps = injector.capacity_multipliers(
                    self.max_machines, float(t)
                )
                capacity = np.repeat(machine_caps, p)
            stats = self.engine.step(
                1.0, float(offered[t]), shares, interference,
                capacity_multipliers=capacity,
            )
            out_completed[t] = stats.completed_tps
            p50[t] = stats.p50_ms
            p95[t] = stats.p95_ms
            p99[t] = stats.p99_ms
            if recording:
                metrics = tel.metrics
                metrics.histogram("sim.latency_p50_ms").observe(stats.p50_ms)
                metrics.histogram("sim.latency_p95_ms").observe(stats.p95_ms)
                metrics.histogram("sim.latency_p99_ms").observe(stats.p99_ms)
                if stats.p99_ms > config.sla_latency_ms:
                    metrics.counter("sim.sla_violation_seconds").inc()
                    iv_viol += 1
                    iv_viol_p99 = max(iv_viol_p99, float(stats.p99_ms))
                if migration is not None:
                    iv_migr += 1
                if (
                    pending_recovery
                    or stall_watch is not None
                    or resend_seconds > 1e-9
                    or (injector is not None and injector.any_slowdown_active)
                ):
                    iv_fault += 1

            # ---------------- migration progress -----------------------
            if migration is not None:
                now = float(t + 1)
                stall = (
                    injector.stall_record(now)
                    if injector is not None and not migration.done
                    else None
                )
                if stall is not None:
                    # Wedged transfer: no progress this second.  The
                    # watchdog detects after the retry timeout and logs
                    # one re-drive per backoff interval.
                    if stall_watch is not stall:
                        stall_watch = stall
                        stall_attempts = 0
                        next_retry_at = (
                            stall.injected_at + retry.transfer_timeout_seconds
                        )
                    while (
                        now + 1e-9 >= next_retry_at
                        and retry.should_retry(stall_attempts + 1)
                    ):
                        if stall_attempts == 0:
                            injector.mark_detected(stall, next_retry_at)
                        stall_attempts += 1
                        backoff = retry.backoff_seconds(
                            stall_attempts, retry_rng
                        )
                        injector.mark_retry(stall, next_retry_at, backoff)
                        next_retry_at += backoff
                elif resend_seconds > 0.0:
                    # Paying for a corrupted transfer's re-send.
                    stall_watch = None
                    resend_seconds = max(0.0, resend_seconds - 1.0)
                    if resend_seconds <= 1e-9:
                        for record in resend_records:
                            injector.mark_recovered(record, now)
                        resend_records = []
                else:
                    stall_watch = None
                    completed_rounds = migration.advance(1.0)
                    if injector is not None:
                        for _ in completed_rounds:
                            corruption = injector.take_corruption()
                            if corruption is None:
                                continue
                            injector.mark_detected(corruption, now)
                            backoff = retry.backoff_seconds(1, retry_rng)
                            injector.mark_retry(corruption, now, backoff)
                            resend_seconds += migration.round_seconds + backoff
                            resend_records.append(corruption)
                if migration.done and resend_seconds <= 1e-9:
                    retired = list(retiring)
                    if retiring:
                        for machine in retiring:
                            active.remove(machine)
                        retiring = []
                    if recording:
                        now = float(t + 1)
                        tel.events.emit(
                            "migration.complete",
                            time=now,
                            before=migration_before,
                            after=migration_target,
                            seconds=now - migration_started,
                            emergency=migration_emergency,
                        )
                        tel.metrics.histogram(
                            "migrate.duration_seconds",
                            bounds=tuple(float(2 ** i) for i in range(24)),
                        ).observe(now - migration_started)
                        if retired:
                            chron.record(
                                "node.remove",
                                time=now,
                                parent=move_rec_id,
                                nodes=retired,
                                reason="scale-in",
                            )
                        chron.record(
                            "migration.complete",
                            time=now,
                            parent=move_rec_id,
                            before=migration_before,
                            after=migration_target,
                            seconds=now - migration_started,
                            emergency=migration_emergency,
                        )
                        move_rec_id = None
                    machines = migration_target
                    migration = None
                    strategy.notify_move_finished(machines)

            t += 1

        if invariants.enabled(invariants.CHEAP):
            # Every tick must pass through the engine exactly once — a
            # fast-path block dropping or double-counting ticks shows up
            # here no matter which branch mix the run took.
            invariants.check_time_accounting(
                self.engine.time - engine_time_start, float(n),
                "ElasticDbSimulator.run",
            )
        latency = PercentileSeries(
            seconds=np.arange(n),
            percentiles={50.0: p50, 95.0: p95, 99.0: p99},
            throughput=out_completed,
        )
        return SimulationResult(
            strategy_name=strategy.name,
            latency=latency,
            offered_tps=offered.copy(),
            completed_tps=out_completed,
            machines=out_machines,
            migrating=out_migrating,
            emergencies=emergencies,
            moves_started=moves_started,
            sla_ms=config.sla_latency_ms,
        )

    # ------------------------------------------------------------------

    def _quiescent_until(
        self,
        t: int,
        n: int,
        interval: int,
        accumulated: int,
        injector,
    ) -> int:
        """End (exclusive) of the quiescent stretch starting at tick ``t``.

        The stretch stops at the next planner-interval boundary tick
        (where the strategy is consulted and shares may change), at the
        end of the trace, and — when a fault injector is attached — at
        the tick where its next scheduled firing or window expiry would
        be observed.  An active node slowdown disables the fast path
        entirely (per-tick capacity multipliers apply).
        """
        boundary = t + (interval - accumulated - 1)
        end = min(n, boundary)
        if injector is not None:
            if injector.any_slowdown_active:
                return t
            horizon = injector.seconds_to_next_change(float(t))
            if math.isfinite(horizon):
                # The injector fires an event at absolute time ``tau``
                # on the first tick s with tau <= s + 1e-9; every tick
                # strictly before that must stay in the block so the
                # scalar path observes the event at the same tick.
                end = min(end, int(math.floor(t + horizon - 1e-9)) + 1)
        return max(end, t)

    def _start_move(
        self, active: List[int], before: int, after: int, rate_kbps: float,
        excluded: Sequence[int] = (),
    ):
        """Build the migration and its logical->physical machine map.

        Scale-out activates the lowest inactive machine indices; scale-in
        retires the highest active ones (drained just-in-time by the
        reversed schedule).  ``excluded`` machines (crashed) are never
        re-activated.
        """
        schedule = build_migration_schedule(before, after)
        if after > before:
            inactive = [
                m for m in range(self.max_machines)
                if m not in active and m not in excluded
            ]
            newcomers = inactive[: after - before]
            if len(newcomers) < after - before:
                raise SimulationError(
                    f"cannot scale to {after}: only "
                    f"{len(active) + len(newcomers)} machines exist"
                )
            node_map = {i: m for i, m in enumerate(sorted(active) + newcomers)}
            active.extend(newcomers)
            retiring: List[int] = []
        else:
            ordered = sorted(active)
            survivors = ordered[:after]
            retiring = ordered[after:]
            node_map = {
                i: m for i, m in enumerate(survivors + retiring)
            }
        migration = ActiveMigration(
            schedule=schedule,
            database_kb=self.config.database_kb,
            rate_kbps=rate_kbps,
            partitions_per_node=self.config.partitions_per_node,
            chunk_kb=self.chunk_kb,
            node_map=node_map,
        )
        return migration, retiring

    def _interference(
        self,
        total_partitions: int,
        busy_machines,
        rate_kbps: float,
    ) -> MigrationInterference:
        p = self.config.partitions_per_node
        partitions: List[int] = []
        for machine in busy_machines:
            partitions.extend(range(machine * p, (machine + 1) * p))
        return MigrationInterference.for_rate(
            total_partitions,
            partitions,
            rate_kbps=rate_kbps,
            chunk_kb=self.chunk_kb,
        )
