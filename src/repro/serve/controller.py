"""The online controller: refit, re-plan, reconfigure — and notice when
the model has gone stale.

Per closed interval the controller mirrors one slot of the batch
:class:`~repro.sim.capacity_sim.CapacitySimulator` loop (advance the
in-flight migration, sample effective capacity Eq. 7, chronicle
violations), plus the piece the batch loop lacks entirely:
**error-triggered re-planning**.  The PR-6
:class:`~repro.telemetry.accuracy.AccuracyTracker` keeps rolling
MAPE/bias per (predictor, tau); when the active tau's error crosses the
configured threshold the controller

1. files a ``forecast.accuracy`` chronicle record (parented on the last
   forecast snapshot — the stale model's own evidence),
2. forces an immediate :meth:`OnlinePredictor.refit_now` on the window,
3. runs an *unscheduled* predictive re-plan whose ``plan.decision``
   record parents on the accuracy record (so ``pstore explain`` walks
   violation -> decision -> accuracy breach -> stale forecast), and
4. falls back to reactive provisioning until rolling error recovers
   below the hysteresis threshold.

While reactive, the predictive model keeps forecasting in *shadow* so
the tracker scores the refit model on live traffic; recovery flips the
mode back.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

import numpy as np

from ..config import PStoreConfig
from ..elasticity.base import ScaleDecision
from ..elasticity.predictive import PStoreStrategy
from ..elasticity.reactive import ReactiveStrategy
from ..errors import PredictionError, SimulationError
from ..prediction.online import OnlinePredictor
from ..squall.migrator import ActiveMigration
from ..squall.schedule import build_migration_schedule
from ..telemetry import get_telemetry


@dataclass(frozen=True)
class TriggerSpec:
    """One ``metric:threshold`` clause of ``--error-trigger``."""

    metric: str        # "mape" | "smape" | "bias"
    threshold: float   # fractional (0.3 == 30%)


_TRIGGER_METRICS = {"mape": "mape_pct", "smape": "smape_pct", "bias": "bias_pct"}


def parse_error_trigger(text: str) -> Optional["ErrorTrigger"]:
    """Parse ``mape:0.3`` / ``mape:0.3,bias:0.25`` / ``off``."""
    spec = text.strip().lower()
    if spec in ("", "off", "none"):
        return None
    clauses: List[TriggerSpec] = []
    for part in spec.split(","):
        metric, _, value = part.partition(":")
        metric = metric.strip()
        if metric not in _TRIGGER_METRICS:
            raise SimulationError(
                f"unknown error-trigger metric {metric!r} "
                f"(want {'|'.join(sorted(_TRIGGER_METRICS))})"
            )
        try:
            threshold = float(value)
        except ValueError:
            raise SimulationError(
                f"bad error-trigger threshold in {part!r}"
            ) from None
        if threshold <= 0:
            raise SimulationError("error-trigger thresholds must be > 0")
        clauses.append(TriggerSpec(metric=metric, threshold=threshold))
    return ErrorTrigger(tuple(clauses))


class ErrorTrigger:
    """Threshold + hysteresis over the accuracy tracker's rolling stats.

    ``breach(stats)`` reports the first clause over its threshold;
    ``recovered(stats)`` requires *every* clause below
    ``recovery_fraction`` of its threshold (classic hysteresis so the
    mode doesn't flap on the boundary).  Both gate on ``min_pairs``
    scored forecast/actual pairs so a cold window can't fire.
    """

    def __init__(
        self,
        clauses: Sequence[TriggerSpec],
        tau: int = 1,
        min_pairs: int = 12,
        recovery_fraction: float = 0.8,
    ) -> None:
        if not clauses:
            raise SimulationError("error trigger needs at least one clause")
        self.clauses = tuple(clauses)
        self.tau = int(tau)
        self.min_pairs = int(min_pairs)
        self.recovery_fraction = float(recovery_fraction)

    def describe(self) -> str:
        return ",".join(f"{c.metric}:{c.threshold:g}" for c in self.clauses)

    def breach(self, stats: Optional[dict]) -> Optional[dict]:
        if not stats or stats.get("pairs_window", 0) < self.min_pairs:
            return None
        for clause in self.clauses:
            value_pct = stats.get(_TRIGGER_METRICS[clause.metric])
            if value_pct is None:
                continue
            if abs(value_pct) > clause.threshold * 100.0:
                return {
                    "metric": clause.metric,
                    "value_pct": float(value_pct),
                    "threshold_pct": clause.threshold * 100.0,
                }
        return None

    def recovered(self, stats: Optional[dict]) -> bool:
        if not stats or stats.get("pairs_window", 0) < self.min_pairs:
            return False
        for clause in self.clauses:
            value_pct = stats.get(_TRIGGER_METRICS[clause.metric])
            if value_pct is None:
                return False
            limit = clause.threshold * 100.0 * self.recovery_fraction
            if abs(value_pct) > limit:
                return False
        return True


class OnlineController:
    """Drives provisioning from a live interval stream.

    One :meth:`on_interval` call per closed planner slot, with the
    measured history up to and including that slot.  Owns the
    capacity-level migration state (fluid fractions via
    :class:`ActiveMigration`, just-in-time allocation) exactly as the
    batch capacity simulator does, so a serve run and a batch run over
    the same trace are directly comparable.
    """

    def __init__(
        self,
        config: PStoreConfig,
        predictor,
        initial_machines: int = 2,
        max_machines: Optional[int] = None,
        trigger: Optional[ErrorTrigger] = None,
        telemetry=None,
    ) -> None:
        if initial_machines < 1:
            raise SimulationError("initial_machines must be >= 1")
        self.config = config
        self.predictor = predictor
        self.machines = initial_machines
        self.max_machines = max_machines
        self.trigger = trigger
        self._telemetry = telemetry if telemetry is not None else get_telemetry()
        # Registry slug of the forecaster (OnlinePredictor delegates
        # to its base), keying accuracy windows and chronicle records.
        self._predictor_name = (
            getattr(predictor, "name", "") or type(predictor).__name__
        )

        self._strategy: Optional[PStoreStrategy] = None
        self._reactive = ReactiveStrategy(
            config, max_machines=max_machines, scale_in_patience=6
        )
        self._reactive.reset(initial_machines)
        self._ensure_strategy()
        #: "warmup" (predictor unfitted / history short), "predictive",
        #: or "reactive" (error-triggered fallback).
        self.mode = "predictive" if self._predictive_ready([]) else "warmup"

        self._migration: Optional[ActiveMigration] = None
        self._move_rec_id: Optional[str] = None
        self._move_before = initial_machines
        self._move_target = initial_machines
        self._move_started = 0.0
        self._move_rate_kbps = 0.0
        #: Half-slot ``advance`` calls applied to the in-flight migration
        #: so far; checkpoint restore replays exactly this many to land
        #: the fluid fractions on the same float trajectory.
        self._move_half_steps = 0
        self._fa_record_id: Optional[str] = None

        self.violations = 0
        self.moves_started = 0
        self.emergencies = 0
        self.trigger_fires = 0
        self.trigger_recoveries = 0
        self.intervals_seen = 0
        self.last_decision_reason = ""
        self.last_error_stats: Optional[dict] = None

    # ------------------------------------------------------------------
    # Mode machinery
    # ------------------------------------------------------------------

    def _ensure_strategy(self) -> None:
        if self._strategy is None and self.predictor.is_fitted:
            self._strategy = PStoreStrategy(
                self.config, self.predictor, telemetry=self._telemetry
            )

    def _predictive_ready(self, history: Sequence[float]) -> bool:
        self._ensure_strategy()
        if self._strategy is None:
            return False
        return len(history) >= self._strategy.min_history or len(history) == 0

    @property
    def migrating(self) -> bool:
        return self._migration is not None

    def error_stats(self) -> Optional[dict]:
        tau = self.trigger.tau if self.trigger is not None else 1
        return self._telemetry.accuracy.errors(self._predictor_name, tau)

    # ------------------------------------------------------------------
    # The per-interval step
    # ------------------------------------------------------------------

    def on_interval(
        self, slot: int, history: Sequence[float], now: float
    ) -> None:
        """Process one closed planner interval.

        ``history`` is the measured tps series up to and including
        ``slot``; ``now`` is the slot's closing boundary in simulated
        seconds.  The monitor has already harvested this slot into the
        accuracy tracker (it does so on interval close), so trigger
        evaluation here sees fully up-to-date rolling stats.
        """
        tel = self._telemetry
        self.intervals_seen += 1
        tps = float(history[-1])
        slot_seconds = self.config.interval_seconds

        # Feed the learner (the batch service does the same per close).
        if isinstance(self.predictor, OnlinePredictor):
            self.predictor.observe(tps)
            self._ensure_strategy()
        if self.mode == "warmup" and self._predictive_ready(history):
            self.mode = "predictive"

        # Step the in-flight migration across the slot, sampling
        # effective capacity (Eq. 7) at the midpoint like the batch loop.
        eff_qhat = self._step_migration(now, slot_seconds)

        if tel.enabled:
            tel.metrics.gauge("serve.machines").set(self._machines_now())
            tel.metrics.gauge("serve.eff_cap_tps").set(eff_qhat)
            if tps > eff_qhat + 1e-9:
                self.violations += 1
                tel.metrics.counter("serve.capacity_insufficient").inc()
                if self.migrating and self._move_rec_id:
                    parent = self._move_rec_id
                else:
                    parent = tel.chronicle.last("forecast.snapshot")
                tel.chronicle.record(
                    "capacity.insufficient",
                    time=now,
                    parent=parent,
                    slot=slot,
                    load_tps=tps,
                    peak_tps=tps,
                    eff_cap=eff_qhat,
                    machines=self._machines_now(),
                    migrating=self.migrating,
                )
        elif tps > eff_qhat + 1e-9:
            self.violations += 1

        # Accuracy-triggered mode transitions, then the planning cycle.
        self._check_trigger(history, slot, now)
        if not self.migrating:
            self._plan(history, slot, now)

    def _machines_now(self) -> int:
        if self._migration is not None:
            return self._migration.machines_allocated()
        return self.machines

    def _step_migration(self, now: float, slot_seconds: float) -> float:
        """Advance any active move by one slot; returns eff Q-hat."""
        config = self.config
        if self._migration is None:
            return config.q_hat * self.machines
        self._migration.advance(slot_seconds / 2.0)
        largest = float(self._migration.data_fractions().max())
        eff_qhat = config.q_hat / largest
        self._migration.advance(slot_seconds / 2.0)
        self._move_half_steps += 2
        if self._migration.done:
            tel = self._telemetry
            if tel.enabled:
                tel.events.emit(
                    "migration.complete",
                    time=now,
                    before=self._move_before,
                    after=self._move_target,
                    seconds=now - self._move_started,
                )
                tel.chronicle.record(
                    "migration.complete",
                    time=now,
                    parent=self._move_rec_id,
                    before=self._move_before,
                    after=self._move_target,
                    seconds=now - self._move_started,
                )
            self.machines = self._move_target
            self._migration = None
            self._move_rec_id = None
            if self._strategy is not None:
                self._strategy.notify_move_finished(self.machines)
            self._reactive.notify_move_finished(self.machines)
        return eff_qhat

    # ------------------------------------------------------------------
    # Error-triggered re-planning
    # ------------------------------------------------------------------

    def _check_trigger(
        self, history: Sequence[float], slot: int, now: float
    ) -> None:
        if self.trigger is None:
            return
        stats = self.error_stats()
        self.last_error_stats = stats
        tel = self._telemetry
        if self.mode == "predictive":
            breach = self.trigger.breach(stats)
            if breach is None:
                return
            self.trigger_fires += 1
            fa_id: Optional[str] = None
            if tel.enabled:
                rec = tel.chronicle.record(
                    "forecast.accuracy",
                    time=now,
                    parent=tel.chronicle.last("forecast.snapshot"),
                    predictor=self._predictor_name,
                    tau=self.trigger.tau,
                    metric=breach["metric"],
                    value_pct=breach["value_pct"],
                    threshold_pct=breach["threshold_pct"],
                    pairs=stats.get("pairs_window") if stats else None,
                    action="refit-replan-fallback",
                )
                fa_id = rec.get("id")
                tel.events.emit(
                    "serve.trigger",
                    time=now,
                    metric=breach["metric"],
                    value_pct=breach["value_pct"],
                    threshold_pct=breach["threshold_pct"],
                )
                tel.metrics.counter("serve.trigger_fired").inc()
            self._fa_record_id = fa_id
            refitted = False
            if isinstance(self.predictor, OnlinePredictor):
                refitted = self.predictor.refit_now()
            # The unscheduled re-plan: run the predictive cycle right now
            # with the (possibly refit) model, parenting its decision on
            # the accuracy record, then drop to reactive while the
            # rolling window stays hot.
            if self._strategy is not None and not self.migrating:
                self._strategy.controller.replan_parent = fa_id
                self._execute_decision(
                    self._strategy.decide(slot, history, self.machines),
                    now,
                    slot,
                )
            self.mode = "reactive"
            self._reactive.reset(self.machines)
            if tel.enabled:
                tel.events.emit(
                    "serve.mode",
                    time=now,
                    mode="reactive",
                    refitted=refitted,
                )
        elif self.mode == "reactive":
            # Shadow-forecast so the tracker keeps scoring the refit
            # model on live traffic; without it the window goes stale
            # and recovery could never be observed.
            self._shadow_forecast(history, now)
            if self.trigger.recovered(stats):
                self.trigger_recoveries += 1
                self.mode = "predictive"
                if tel.enabled:
                    tel.chronicle.record(
                        "forecast.accuracy",
                        time=now,
                        parent=self._fa_record_id,
                        predictor=self._predictor_name,
                        tau=self.trigger.tau,
                        action="recovered",
                        mape_pct=stats.get("mape_pct") if stats else None,
                        bias_pct=stats.get("bias_pct") if stats else None,
                    )
                    tel.events.emit("serve.mode", time=now, mode="predictive")
                    tel.metrics.counter("serve.trigger_recovered").inc()
                self._fa_record_id = None

    def _shadow_forecast(self, history: Sequence[float], now: float) -> None:
        tel = self._telemetry
        if not tel.enabled or not self.predictor.is_fitted:
            return
        tau = self.trigger.tau if self.trigger is not None else 1
        try:
            forecast = self.predictor.predict_horizon(history, tau)
        except PredictionError:
            return
        inflated = np.asarray(forecast) * self.config.prediction_inflation
        tel.accuracy.record_forecast(
            origin_slot=len(history) - 1,
            predicted=forecast,
            inflated=inflated,
            predictor=self._predictor_name,
            snapshot_id=None,
            time=now,
        )

    # ------------------------------------------------------------------
    # Planning + execution
    # ------------------------------------------------------------------

    def _plan(self, history: Sequence[float], slot: int, now: float) -> None:
        if self.mode == "predictive" and self._predictive_ready(history):
            if len(history) < self._strategy.min_history:
                return
            decision = self._strategy.decide(slot, history, self.machines)
        else:
            decision = self._reactive.decide(slot, history, self.machines)
            if decision.acts:
                decision = self._chronicle_reactive(decision, now)
        self._execute_decision(decision, now, slot)

    def _chronicle_reactive(
        self, decision: ScaleDecision, now: float
    ) -> ScaleDecision:
        """Reactive strategies don't chronicle; file the decision here so
        fallback actions stay walkable (parented on the accuracy breach
        that forced the fallback, when there is one)."""
        tel = self._telemetry
        if not tel.enabled:
            return decision
        kind = "reactive-fallback" if self.mode == "reactive" else "reactive-warmup"
        rec = tel.chronicle.record(
            "plan.decision",
            time=now,
            parent=self._fa_record_id,
            decision_kind=kind,
            reason=decision.reason,
            target_machines=decision.target_machines,
            emergency=decision.emergency,
            rate_multiplier=decision.rate_multiplier,
            machines=self.machines,
        )
        return replace(decision, record_id=rec.get("id"))

    def _execute_decision(
        self, decision: ScaleDecision, now: float, slot: int
    ) -> None:
        if not decision.acts or self.migrating:
            return
        target = decision.target_machines
        if self.max_machines is not None:
            target = min(target, self.max_machines)
        if target == self.machines or target < 1:
            return
        config = self.config
        schedule = build_migration_schedule(self.machines, target)
        self._migration = ActiveMigration(
            schedule=schedule,
            database_kb=config.database_kb,
            rate_kbps=config.migration_rate_kbps * decision.rate_multiplier,
            partitions_per_node=config.partitions_per_node,
        )
        self._move_before = self.machines
        self._move_target = target
        self._move_started = now
        self._move_rate_kbps = config.migration_rate_kbps * decision.rate_multiplier
        self._move_half_steps = 0
        self.moves_started += 1
        self.last_decision_reason = decision.reason
        if decision.emergency:
            self.emergencies += 1
        tel = self._telemetry
        if tel.enabled:
            tel.events.emit(
                "migration.start",
                time=now,
                before=self.machines,
                after=target,
                emergency=decision.emergency,
                reason=decision.reason,
                rate_kbps=config.migration_rate_kbps * decision.rate_multiplier,
                est_seconds=self._migration.total_seconds,
            )
            rec = tel.chronicle.record(
                "migration.start",
                time=now,
                parent=getattr(decision, "record_id", None),
                before=self.machines,
                after=target,
                emergency=decision.emergency,
                reason=decision.reason,
                rate_kbps=config.migration_rate_kbps * decision.rate_multiplier,
                est_seconds=self._migration.total_seconds,
                slot=slot,
            )
            self._move_rec_id = rec.get("id")
            tel.metrics.counter("serve.moves_started").inc()
        if self._strategy is not None:
            self._strategy.notify_move_started(target)

    # ------------------------------------------------------------------
    # Checkpointing (``pstore serve --resume``)
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-serialisable snapshot of all mutable controller state.

        The in-flight migration is stored as its *inputs* (endpoints,
        rate, applied half-steps) rather than its float fractions:
        :meth:`restore_state` rebuilds the schedule and replays the same
        half-slot ``advance`` sequence, which reproduces the fluid
        trajectory bit-exactly because round commits rebuild from
        snapshots (see :class:`~repro.squall.migrator.ActiveMigration`).
        """
        strategy_doc = None
        if self._strategy is not None:
            inner = self._strategy.controller
            strategy_doc = {
                "scale_in_streak": inner._scale_in_streak,
                "last_snapshot_id": inner._last_snapshot_id,
            }
        migration_doc = None
        if self._migration is not None:
            migration_doc = {
                "before": self._move_before,
                "target": self._move_target,
                "started": self._move_started,
                "rate_kbps": self._move_rate_kbps,
                "half_steps": self._move_half_steps,
                "move_rec_id": self._move_rec_id,
            }
        return {
            "machines": self.machines,
            "mode": self.mode,
            "violations": self.violations,
            "moves_started": self.moves_started,
            "emergencies": self.emergencies,
            "trigger_fires": self.trigger_fires,
            "trigger_recoveries": self.trigger_recoveries,
            "intervals_seen": self.intervals_seen,
            "last_decision_reason": self.last_decision_reason,
            "fa_record_id": self._fa_record_id,
            "reactive_below_streak": self._reactive._below_streak,
            "strategy": strategy_doc,
            "migration": migration_doc,
        }

    def restore_state(self, doc: dict) -> None:
        """Rebuild from :meth:`state_dict` output.

        The predictor must already be restored (the plane restores it
        first), so the predictive strategy can be re-created here when
        the checkpointed mode needs one.
        """
        self.machines = int(doc["machines"])
        self.mode = str(doc.get("mode", "warmup"))
        self.violations = int(doc.get("violations", 0))
        self.moves_started = int(doc.get("moves_started", 0))
        self.emergencies = int(doc.get("emergencies", 0))
        self.trigger_fires = int(doc.get("trigger_fires", 0))
        self.trigger_recoveries = int(doc.get("trigger_recoveries", 0))
        self.intervals_seen = int(doc.get("intervals_seen", 0))
        self.last_decision_reason = str(doc.get("last_decision_reason", ""))
        self._fa_record_id = doc.get("fa_record_id")
        self._reactive.reset(self.machines)
        self._reactive._below_streak = int(doc.get("reactive_below_streak", 0))
        self._ensure_strategy()
        migration_doc = doc.get("migration")
        if migration_doc is not None:
            config = self.config
            self._move_before = int(migration_doc["before"])
            self._move_target = int(migration_doc["target"])
            self._move_started = float(migration_doc["started"])
            self._move_rate_kbps = float(migration_doc["rate_kbps"])
            self._move_rec_id = migration_doc.get("move_rec_id")
            schedule = build_migration_schedule(
                self._move_before, self._move_target
            )
            self._migration = ActiveMigration(
                schedule=schedule,
                database_kb=config.database_kb,
                rate_kbps=self._move_rate_kbps,
                partitions_per_node=config.partitions_per_node,
            )
            half = config.interval_seconds / 2.0
            steps = int(migration_doc.get("half_steps", 0))
            for _ in range(steps):
                self._migration.advance(half)
            self._move_half_steps = steps
            if self._strategy is not None:
                self._strategy.notify_move_started(self._move_target)
            self._reactive.notify_move_started(self._move_target)
        # Strategy counters go last: the move-started notification above
        # zeroes the scale-in streak, and the checkpointed values are the
        # post-notification ones.
        strategy_doc = doc.get("strategy")
        if strategy_doc is not None:
            if self._strategy is None:
                raise SimulationError(
                    "checkpoint carries predictive-strategy state but the "
                    "restored predictor is not fitted"
                )
            inner = self._strategy.controller
            inner._scale_in_streak = int(strategy_doc.get("scale_in_streak", 0))
            inner._last_snapshot_id = strategy_doc.get("last_snapshot_id")

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    def shutdown(self, now: float, reason: str = "SIGINT") -> None:
        """Deterministic drain: a partially-applied migration round rolls
        back to its last committed boundary and the abort is chronicled,
        so the exported run directory never shows in-between state."""
        if self._migration is None:
            return
        rolled = self._migration.rollback_partial_round()
        tel = self._telemetry
        if tel.enabled:
            tel.events.emit(
                "migration.aborted",
                time=now,
                before=self._move_before,
                after=self._move_target,
                reason=reason,
                rolled_back_fraction=rolled,
            )
            tel.chronicle.record(
                "migration.aborted",
                time=now,
                parent=self._move_rec_id,
                before=self._move_before,
                after=self._move_target,
                reason=reason,
                rolled_back_fraction=rolled,
            )
            tel.metrics.counter("serve.moves_aborted").inc()
        self._migration = None
        self._move_rec_id = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def status(self) -> dict:
        stats = self.last_error_stats
        return {
            "mode": self.mode,
            "machines": self._machines_now(),
            "steady_machines": self.machines,
            "migrating": self.migrating,
            "intervals": self.intervals_seen,
            "violations": self.violations,
            "moves_started": self.moves_started,
            "emergencies": self.emergencies,
            "trigger": self.trigger.describe() if self.trigger else None,
            "trigger_fires": self.trigger_fires,
            "trigger_recoveries": self.trigger_recoveries,
            "error_stats": stats,
            "last_decision": self.last_decision_reason,
            "predictor": self._predictor_name,
            "predictor_fitted": bool(self.predictor.is_fitted),
        }
