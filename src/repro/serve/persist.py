"""Crash-safe checkpointing for the serve control plane.

A checkpoint directory holds two files:

``chronicle.jsonl``
    the flight recorder's records, appended *incrementally* — each save
    writes only the records added since the previous save, so the cost
    per interval stays O(new records), not O(run length);
``checkpoint.json``
    everything else (depository, predictor, accuracy windows, monitor,
    controller, migration position), written atomically via
    write-to-temp + ``os.replace``, and carrying ``chronicle_rows``:
    how many chronicle rows were durable when the snapshot was taken.

The ordering gives crash safety without fsync gymnastics: the chronicle
append happens *before* the snapshot replace.  A crash between the two
leaves ``chronicle.jsonl`` with rows the snapshot doesn't acknowledge;
:meth:`CheckpointStore.load` trims the file back to exactly
``chronicle_rows``, so the restored plane re-issues those records itself
and never double-counts or forks IDs.  A crash *during* the snapshot
replace is harmless because ``os.replace`` is atomic — the previous
checkpoint survives intact.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import List, Optional, Tuple

from ..errors import SimulationError

#: Version tag inside every ``checkpoint.json``.
CHECKPOINT_SCHEMA = "pstore.serve-checkpoint/v1"

CHECKPOINT_FILE = "checkpoint.json"
CHRONICLE_FILE = "chronicle.jsonl"


class CheckpointStore:
    """Owns one checkpoint directory; one instance per plane."""

    def __init__(self, directory) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.checkpoint_path = self.directory / CHECKPOINT_FILE
        self.chronicle_path = self.directory / CHRONICLE_FILE
        #: Chronicle rows already durable on disk (and acknowledged by
        #: the last snapshot, once one has been written).
        self._appended = 0
        self.saves = 0

    @property
    def exists(self) -> bool:
        return self.checkpoint_path.exists()

    # ------------------------------------------------------------------
    # Saving
    # ------------------------------------------------------------------

    def save(self, state: dict, chronicle_records: List[dict]) -> None:
        """Persist one checkpoint: chronicle delta first, snapshot second.

        ``chronicle_records`` is the recorder's full in-memory list; only
        the tail past what was already appended is written.
        """
        total = len(chronicle_records)
        if total < self._appended:
            raise SimulationError(
                f"chronicle shrank from {self._appended} to {total} records "
                "(the recorder is append-only; this is a caller bug)"
            )
        if total > self._appended:
            with self.chronicle_path.open("a", encoding="utf-8") as handle:
                for rec in chronicle_records[self._appended:total]:
                    handle.write(json.dumps(rec, sort_keys=True) + "\n")
            self._appended = total
        doc = dict(state)
        doc["schema"] = CHECKPOINT_SCHEMA
        doc["chronicle_rows"] = total
        tmp = self.checkpoint_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(doc, sort_keys=True), encoding="utf-8")
        os.replace(tmp, self.checkpoint_path)
        self.saves += 1

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def load(self) -> Tuple[dict, List[dict]]:
        """Read the snapshot and its acknowledged chronicle rows.

        Trims any unacknowledged chronicle tail (rows appended after the
        last durable snapshot by a run that then crashed), and arms the
        incremental-append cursor so subsequent saves continue cleanly.
        """
        if not self.checkpoint_path.exists():
            raise SimulationError(
                f"no checkpoint at {self.checkpoint_path} to resume from"
            )
        try:
            doc = json.loads(self.checkpoint_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise SimulationError(
                f"corrupt checkpoint {self.checkpoint_path}: {exc}"
            ) from None
        schema = doc.get("schema")
        if schema != CHECKPOINT_SCHEMA:
            raise SimulationError(
                f"checkpoint schema {schema!r} is not the supported "
                f"{CHECKPOINT_SCHEMA!r}"
            )
        rows = int(doc.get("chronicle_rows", 0))
        records = self._read_chronicle(rows)
        self._appended = len(records)
        return doc, records

    def _read_chronicle(self, rows: int) -> List[dict]:
        if rows == 0:
            # Nothing acknowledged; drop any orphan tail outright.
            if self.chronicle_path.exists():
                self.chronicle_path.unlink()
            return []
        if not self.chronicle_path.exists():
            raise SimulationError(
                f"checkpoint acknowledges {rows} chronicle rows but "
                f"{self.chronicle_path} is missing"
            )
        lines = self.chronicle_path.read_text(encoding="utf-8").splitlines()
        usable: List[dict] = []
        for line in lines:
            if len(usable) == rows:
                break
            if not line.strip():
                continue
            try:
                usable.append(json.loads(line))
            except json.JSONDecodeError:
                # A torn final write can leave one partial line; it is by
                # construction past the acknowledged prefix *unless* the
                # acknowledged count is unreachable, which the length
                # check below turns into a hard error.
                break
        if len(usable) < rows:
            raise SimulationError(
                f"checkpoint acknowledges {rows} chronicle rows but only "
                f"{len(usable)} are readable in {self.chronicle_path}"
            )
        if len(lines) > rows:
            # Trim the unacknowledged tail so the resumed run's re-issued
            # records don't duplicate it.  Atomic for the same reason the
            # snapshot is.
            tmp = self.chronicle_path.with_suffix(".jsonl.tmp")
            with tmp.open("w", encoding="utf-8") as handle:
                for rec in usable:
                    handle.write(json.dumps(rec, sort_keys=True) + "\n")
            os.replace(tmp, self.chronicle_path)
        return usable


def peek_schema(directory) -> Optional[str]:
    """Schema string of the checkpoint in ``directory`` (None if absent
    or unreadable) — used by the CLI for friendlier error messages."""
    path = pathlib.Path(directory) / CHECKPOINT_FILE
    try:
        return json.loads(path.read_text(encoding="utf-8")).get("schema")
    except (OSError, json.JSONDecodeError):
        return None
