"""Zero-dependency HTTP endpoint for live control-plane inspection.

A deliberately tiny HTTP/1.0 server on ``asyncio.start_server`` (the
container bakes in no web framework, and none is needed for four GET
routes):

* ``GET /status``          — JSON control-plane state (mode, machines,
  watermark, error stats, migration);
* ``GET /metrics``         — the OpenMetrics exposition
  (:func:`repro.telemetry.export.render_metrics_prom`), scrapeable by
  Prometheus while the service runs;
* ``GET /chronicle/tail``  — last ``n`` flight-recorder records
  (``?n=20``), newest last;
* ``GET /plan``            — the active decision/plan view;
* ``GET /checkpoint``      — force an immediate checkpoint save (only
  when the plane runs with ``--checkpoint``/``--resume``).

Cluster state is read-only; mutation stays with the controller (the
checkpoint route only persists, it never alters the plane).
"""

from __future__ import annotations

import asyncio
import json
from typing import Callable, Optional
from urllib.parse import parse_qs, urlparse

from ..telemetry import get_telemetry, render_metrics_prom


class ControlPlaneServer:
    """Serves the four inspection routes for a running control plane.

    ``status_fn`` and ``plan_fn`` are thunks returning JSON-serialisable
    dicts; the server never reaches into the controller directly so it
    can outlive controller restarts.
    """

    def __init__(
        self,
        status_fn: Callable[[], dict],
        plan_fn: Callable[[], dict],
        port: int,
        host: str = "127.0.0.1",
        telemetry=None,
        checkpoint_fn: Optional[Callable[[], dict]] = None,
    ) -> None:
        self.status_fn = status_fn
        self.plan_fn = plan_fn
        self.checkpoint_fn = checkpoint_fn
        self.port = port
        self.host = host
        self._telemetry = telemetry if telemetry is not None else get_telemetry()
        self._server: Optional[asyncio.AbstractServer] = None
        self.requests_served = 0

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        try:
            request_line = await reader.readline()
            # Drain headers; we need none of them.
            while True:
                line = await reader.readline()
                if not line or line in (b"\r\n", b"\n"):
                    break
            status, content_type, body = self._route(
                request_line.decode("latin-1", "replace").strip()
            )
            payload = body.encode("utf-8")
            head = (
                f"HTTP/1.0 {status}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()
            self.requests_served += 1
            tel = self._telemetry
            if tel.enabled:
                tel.metrics.counter("serve.http_requests").inc()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    def _route(self, request_line: str):
        parts = request_line.split()
        if len(parts) < 2 or parts[0] != "GET":
            return "405 Method Not Allowed", "text/plain", "GET only\n"
        url = urlparse(parts[1])
        path = url.path.rstrip("/") or "/"
        if path == "/status":
            return self._json_response(self.status_fn())
        if path == "/plan":
            return self._json_response(self.plan_fn())
        if path == "/metrics":
            return (
                "200 OK",
                "application/openmetrics-text; version=1.0.0; charset=utf-8",
                render_metrics_prom(self._telemetry),
            )
        if path == "/chronicle/tail":
            query = parse_qs(url.query)
            try:
                n = int(query.get("n", ["20"])[0])
            except ValueError:
                return "400 Bad Request", "text/plain", "bad n\n"
            records = self._telemetry.chronicle.snapshot()[-max(0, n):]
            return self._json_response({"records": records, "n": len(records)})
        if path == "/checkpoint":
            if self.checkpoint_fn is None:
                return (
                    "404 Not Found",
                    "text/plain",
                    "checkpointing is not enabled (pass --checkpoint DIR)\n",
                )
            return self._json_response(self.checkpoint_fn())
        if path == "/":
            routes = ["/status", "/metrics", "/chronicle/tail", "/plan"]
            if self.checkpoint_fn is not None:
                routes.append("/checkpoint")
            return self._json_response({"routes": routes})
        return "404 Not Found", "text/plain", f"no route {path}\n"

    @staticmethod
    def _json_response(doc: dict):
        return (
            "200 OK",
            "application/json",
            json.dumps(doc, indent=1, sort_keys=True, default=str) + "\n",
        )
