"""The event loop that turns batch machinery into a service.

``ControlPlane.run()`` is the whole lifecycle::

    source --reports--> Depository --closed intervals--> OnlineController
                            |                                  |
                        LoadMonitor                    plan / migrate /
                            |                          error-trigger
                    AccuracyTracker harvest
                            |
         ControlPlaneServer (/status /metrics /chronicle/tail /plan)

The plane owns nothing clever: it races the report stream against a
stop event (set by SIGINT/SIGTERM), feeds the depository, dispatches
every newly closed interval to the controller, and streams one-line
dashboard updates.  On shutdown it *drains*: the controller rolls back
any partially-applied migration round, the telemetry scope flushes
open spans, and the full 5-artifact ``export_run`` is written — so a
killed service still yields a run directory ``pstore explain`` can walk
end-to-end.

With ``checkpoint_dir`` set the plane additionally persists its *full*
state (watermark, buffers, fitted predictor, accuracy windows, chronicle,
migration position) after every batch of closed intervals; ``resume``
reconstructs mid-stream from that directory, so even a SIGKILL — which
never reaches the graceful drain — loses at most the open interval and
never closes an interval twice.
"""

from __future__ import annotations

import asyncio
import signal
import sys
from dataclasses import dataclass, field
from typing import Optional

from ..config import PStoreConfig
from ..errors import SimulationError
from ..telemetry import export_run, get_telemetry
from .controller import ErrorTrigger, OnlineController
from .depository import Depository
from .ingest import stdin_source
from .persist import CheckpointStore
from .server import ControlPlaneServer


@dataclass
class ServeOptions:
    """Knobs the CLI exposes (see ``pstore serve --help``)."""

    speed: float = 60.0
    http_port: Optional[int] = None
    out: Optional[str] = "serve-out"
    initial_machines: int = 2
    max_machines: Optional[int] = None
    status_every: int = 12           # dashboard line cadence, in intervals
    quiet: bool = False
    #: Directory to checkpoint into after every closed interval (None
    #: disables persistence entirely).
    checkpoint_dir: Optional[str] = None
    #: Restore from ``checkpoint_dir`` before serving (also keeps
    #: checkpointing there).
    resume: bool = False
    #: Evict nodes whose clock trails the fastest node by more than this
    #: many intervals, so one dead node can't freeze the watermark
    #: (0 = never evict).
    node_timeout: int = 0
    extra: dict = field(default_factory=dict)


class ControlPlane:
    """Wires a report source to the online controller and runs forever
    (or until the source drains / a signal arrives)."""

    def __init__(
        self,
        config: PStoreConfig,
        predictor,
        source,
        trigger: Optional[ErrorTrigger] = None,
        options: Optional[ServeOptions] = None,
        telemetry=None,
    ) -> None:
        self.config = config
        self.options = options if options is not None else ServeOptions()
        self._telemetry = telemetry if telemetry is not None else get_telemetry()
        self.source = source
        self.depository = Depository(
            config.interval_seconds,
            telemetry=self._telemetry,
            node_timeout_intervals=self.options.node_timeout,
        )
        self.controller = OnlineController(
            config,
            predictor,
            initial_machines=self.options.initial_machines,
            max_machines=self.options.max_machines,
            trigger=trigger,
            telemetry=self._telemetry,
        )
        self.checkpoints: Optional[CheckpointStore] = None
        if self.options.checkpoint_dir is not None:
            self.checkpoints = CheckpointStore(self.options.checkpoint_dir)
        self._stop: Optional[asyncio.Event] = None
        self._processed = 0
        self.stopped_by_signal = False
        self.resumed = False
        if self.options.resume:
            if self.checkpoints is None:
                raise SimulationError(
                    "resume requested without a checkpoint directory"
                )
            self._restore()
        self.server: Optional[ControlPlaneServer] = None
        if self.options.http_port is not None:
            self.server = ControlPlaneServer(
                self.status,
                self.plan_view,
                port=self.options.http_port,
                telemetry=self._telemetry,
                checkpoint_fn=(
                    self.checkpoint if self.checkpoints is not None else None
                ),
            )

    # ------------------------------------------------------------------
    # Introspection (shared with the HTTP server)
    # ------------------------------------------------------------------

    @property
    def sim_time(self) -> float:
        return self._processed * self.config.interval_seconds

    def status(self) -> dict:
        doc = self.controller.status()
        doc.update(
            sim_time=self.sim_time,
            watermark=self.depository.watermark,
            reports=self.depository.reports_ingested,
            late_reports=self.depository.late_reports,
            duplicate_reports=self.depository.duplicate_reports,
            reporting_nodes=self.depository.nodes,
            evicted_nodes=self.depository.evictions,
            interval_seconds=self.config.interval_seconds,
            resumed=self.resumed,
            checkpoint_saves=(
                self.checkpoints.saves if self.checkpoints is not None else 0
            ),
        )
        return doc

    def plan_view(self) -> dict:
        strategy = self.controller._strategy
        doc = {
            "mode": self.controller.mode,
            "machines": self.controller.machines,
            "last_decision": self.controller.last_decision_reason,
            "migrating": self.controller.migrating,
        }
        if strategy is not None:
            schedule = strategy.controller.last_schedule
            if schedule is not None:
                doc["schedule"] = [
                    {
                        "start": move.start,
                        "end": move.end,
                        "before": move.before,
                        "after": move.after,
                    }
                    for move in schedule.moves
                ]
        return doc

    def status_line(self) -> str:
        doc = self.status()
        stats = doc.get("error_stats") or {}
        mape = stats.get("mape_pct")
        mape_text = f"{mape:.1f}%" if mape is not None else "-"
        return (
            f"t={doc['sim_time']:>9,.0f}s slots={doc['intervals']:>5} "
            f"machines={doc['machines']} mode={doc['mode']:<10} "
            f"mape[{'t' + str(self.controller.trigger.tau) if self.controller.trigger else 't1'}]={mape_text:<7} "
            f"viol={doc['violations']} moves={doc['moves_started']} "
            f"trigger={doc['trigger_fires']}"
        )

    # ------------------------------------------------------------------
    # Checkpointing (``pstore serve --checkpoint / --resume``)
    # ------------------------------------------------------------------

    def checkpoint(self) -> dict:
        """Persist the full plane state; returns a small receipt dict.

        Called automatically after every batch of closed intervals, and
        on demand through the HTTP ``/checkpoint`` route.
        """
        store = self.checkpoints
        if store is None:
            raise SimulationError(
                "checkpointing is not enabled (set checkpoint_dir)"
            )
        tel = self._telemetry
        predictor = self.controller.predictor
        state = {
            "interval_seconds": self.config.interval_seconds,
            "processed": self._processed,
            "chronicle_seq": tel.chronicle.seq if tel.enabled else 0,
            "monitor": self.depository.monitor.state_dict(),
            "depository": self.depository.state_dict(),
            # Every protocol predictor checkpoints; OnlinePredictor adds
            # its stream state on top of the base model's fit window.
            "predictor": predictor.state_dict(),
            "accuracy": tel.accuracy.state_dict(),
            "controller": self.controller.state_dict(),
        }
        records = list(tel.chronicle.records) if tel.enabled else []
        store.save(state, records)
        return {
            "saved": True,
            "directory": str(store.directory),
            "intervals": self._processed,
            "saves": store.saves,
        }

    def _restore(self) -> None:
        """Reconstruct mid-stream state from the checkpoint directory.

        Restore order matters: the chronicle first (so every other
        component's restored record IDs resolve), then the accuracy
        windows and predictor (the controller's strategy needs a fitted
        model), then the depository/monitor, then the controller (which
        replays any in-flight migration), and finally the dispatch
        cursor.
        """
        doc, records = self.checkpoints.load()
        if float(doc["interval_seconds"]) != self.config.interval_seconds:
            raise SimulationError(
                f"checkpointed interval {doc['interval_seconds']}s does not "
                f"match the configured {self.config.interval_seconds}s"
            )
        tel = self._telemetry
        if tel.enabled:
            tel.chronicle.restore(records, seq=doc.get("chronicle_seq"))
        tel.accuracy.restore_state(doc.get("accuracy") or {})
        predictor_doc = doc.get("predictor")
        predictor = self.controller.predictor
        if predictor_doc is not None:
            # restore_state validates the checkpointed predictor type
            # itself (OnlinePredictor additionally checks its base).
            predictor.restore_state(predictor_doc)
        self.depository.monitor.restore_state(doc["monitor"])
        self.depository.restore_state(doc["depository"])
        self.controller.restore_state(doc["controller"])
        self._processed = int(doc["processed"])
        self.resumed = True
        if tel.enabled:
            tel.chronicle.record(
                "service.resume",
                time=self.sim_time,
                intervals=self._processed,
                watermark=self.depository.watermark,
                machines=self.controller.machines,
                mode=self.controller.mode,
            )
            tel.metrics.counter("serve.resumes").inc()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def request_stop(self) -> None:
        """Idempotent; safe to call from signal handlers."""
        self.stopped_by_signal = True
        if self._stop is not None:
            self._stop.set()

    def _install_signals(self, loop) -> list:
        installed = []
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, self.request_stop)
                installed.append(sig)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-main thread / unsupported platform
        return installed

    async def run(self) -> dict:
        """Serve until the source drains or a signal arrives; returns a
        summary dict (also the sweep-cell payload)."""
        loop = asyncio.get_event_loop()
        self._stop = asyncio.Event()
        installed = self._install_signals(loop)
        if self.server is not None:
            await self.server.start()
        source = self.source
        if source == "stdin":
            source = await stdin_source()
        drained = False
        try:
            reports = source.reports()
            stop_task = asyncio.ensure_future(self._stop.wait())
            try:
                while not self._stop.is_set():
                    next_task = asyncio.ensure_future(reports.__anext__())
                    done, _ = await asyncio.wait(
                        {next_task, stop_task},
                        return_when=asyncio.FIRST_COMPLETED,
                    )
                    if next_task not in done:
                        next_task.cancel()
                        break
                    try:
                        report = next_task.result()
                    except StopAsyncIteration:
                        drained = True
                        break
                    self.depository.add(report)
                    if self.depository.flush():
                        self._dispatch()
                        if self.checkpoints is not None:
                            self.checkpoint()
            finally:
                stop_task.cancel()
            if drained:
                # End of a finite stream: close the final interval too.
                if self.depository.finish():
                    self._dispatch()
                    if self.checkpoints is not None:
                        self.checkpoint()
        finally:
            summary = await self._drain(drained, installed, loop)
        return summary

    def _dispatch(self) -> None:
        """Feed every newly closed interval to the controller, in order."""
        monitor = self.depository.monitor
        history = monitor.history_tps()
        completed = monitor.completed_intervals
        interval = self.config.interval_seconds
        for slot in range(self._processed, completed):
            self._processed = slot + 1
            self.controller.on_interval(
                slot, history[: slot + 1], (slot + 1) * interval
            )
            every = self.options.status_every
            if every and not self.options.quiet and (slot + 1) % every == 0:
                print(self.status_line(), file=sys.stderr, flush=True)

    async def _drain(self, drained: bool, installed, loop) -> dict:
        """Graceful shutdown: roll back partial work, flush artifacts."""
        self.controller.shutdown(
            self.sim_time,
            reason="source drained" if drained else "signal",
        )
        for sig in installed:
            try:
                loop.remove_signal_handler(sig)
            except (NotImplementedError, RuntimeError, ValueError):
                pass
        if self.server is not None:
            server, self.server = self.server, None
            await server.close()
        tel = self._telemetry
        artifacts = {}
        if self.options.out and tel.enabled:
            artifacts = {
                name: str(path)
                for name, path in export_run(tel, self.options.out).items()
            }
        doc = self.status()
        doc.update(
            drained=drained,
            stopped_by_signal=self.stopped_by_signal,
            artifacts=artifacts,
        )
        if not self.options.quiet:
            print(self.status_line(), file=sys.stderr, flush=True)
        return doc
