"""Load-report sources for the control plane.

A *load report* is one monitor surrogate's measurement: "node N observed
``count`` transactions around simulated time ``time``".  Sources are
async iterators of :class:`LoadReport`; the plane feeds them into the
:class:`~repro.serve.depository.Depository`, which decides when an
interval is complete.

Three source families:

* :class:`ReplaySource` — drives a :class:`~repro.workload.trace.LoadTrace`
  in lockstep with the simulator's slotting.  ``speed`` maps simulated
  seconds onto wall seconds (``--speed 60`` replays a day per 24
  minutes); ``speed=0`` disables pacing entirely, which is the
  deterministic mode tests and sweep cells use.
* :class:`JsonLinesSource` — newline-delimited JSON reports from any
  async text stream (stdin, a file, a socket), e.g.::

      {"time": 1500.0, "node": "n3", "count": 412}

* :func:`tcp_source` — listens on a port and merges every connection's
  newline-JSON stream into one report sequence.

``source_from_spec`` maps the CLI's ``--source`` grammar onto these.
"""

from __future__ import annotations

import asyncio
import json
import pathlib
from dataclasses import dataclass
from typing import AsyncIterator, Optional

from ..errors import SimulationError
from ..telemetry import get_telemetry
from ..workload.trace import LoadTrace


@dataclass(frozen=True)
class LoadReport:
    """One interval-load measurement from one node's monitor surrogate."""

    time: float          # simulated seconds; also advances the node's clock
    count: float         # transactions observed in the report's span
    node: str = "n0"     # reporting node (the depository keys clocks on it)


def parse_report_line(line: str) -> Optional[LoadReport]:
    """Parse one newline-JSON report; None for blanks/malformed lines.

    Malformed input from an external feed must not take the control
    plane down — the caller counts rejects and keeps going.
    """
    text = line.strip()
    if not text:
        return None
    try:
        doc = json.loads(text)
        return LoadReport(
            time=float(doc["time"]),
            count=float(doc.get("count", 1.0)),
            node=str(doc.get("node", "n0")),
        )
    except (json.JSONDecodeError, KeyError, TypeError, ValueError):
        return None


class ReplaySource:
    """Replays a load trace as a live report stream.

    Each slot becomes one report timestamped mid-slot (the instant the
    measurement covers), so the depository's watermark closes slot ``k``
    when slot ``k+1``'s report arrives — exactly the one-interval lag a
    real monitor pipeline has.
    """

    def __init__(
        self,
        trace: LoadTrace,
        speed: float = 0.0,
        node: str = "replay",
    ) -> None:
        if speed < 0:
            raise SimulationError("replay speed must be >= 0")
        self.trace = trace
        self.speed = speed
        self.node = node

    async def reports(self) -> AsyncIterator[LoadReport]:
        slot_seconds = self.trace.slot_seconds
        loop = asyncio.get_running_loop()
        # Pacing is anchored to absolute deadlines from the loop clock:
        # sleeping a fixed per-slot quantum instead would add the
        # consumer's processing time to every slot, drifting the replay
        # late by the *cumulative* processing cost on long runs.
        origin = loop.time() if self.speed > 0 else 0.0
        for slot, count in enumerate(self.trace.values):
            if self.speed > 0:
                deadline = origin + (slot + 1) * slot_seconds / self.speed
                delay = deadline - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
            yield LoadReport(
                time=(slot + 0.5) * slot_seconds,
                count=float(count),
                node=self.node,
            )


class JsonLinesSource:
    """Reports from an async line stream (stdin, file, or socket)."""

    def __init__(self, reader: "asyncio.StreamReader") -> None:
        self.reader = reader
        self.rejected = 0

    async def reports(self) -> AsyncIterator[LoadReport]:
        tel = get_telemetry()
        while True:
            line = await self.reader.readline()
            if not line:
                return
            report = parse_report_line(line.decode("utf-8", "replace"))
            if report is None:
                self.rejected += 1
                if tel.enabled:
                    tel.metrics.counter("serve.reports_rejected").inc()
                continue
            yield report


class FileLinesSource:
    """Reports from a newline-JSON file (read eagerly; no pacing).

    Unlike :class:`JsonLinesSource` this needs no event-loop plumbing,
    so it also serves as the deterministic external-feed fixture in
    tests.
    """

    def __init__(self, path) -> None:
        self.path = pathlib.Path(path)
        self.rejected = 0

    async def reports(self) -> AsyncIterator[LoadReport]:
        tel = get_telemetry()
        for line in self.path.read_text().splitlines():
            report = parse_report_line(line)
            if report is None:
                if line.strip():
                    self.rejected += 1
                    if tel.enabled:
                        tel.metrics.counter("serve.reports_rejected").inc()
                continue
            yield report


async def stdin_source() -> JsonLinesSource:
    """A :class:`JsonLinesSource` over this process's stdin."""
    import sys

    # get_event_loop() inside a coroutine is deprecated (and an error on
    # new interpreters when no loop is set); the running loop is the one
    # the pipe must bind to anyway.
    loop = asyncio.get_running_loop()
    reader = asyncio.StreamReader()
    protocol = asyncio.StreamReaderProtocol(reader)
    await loop.connect_read_pipe(lambda: protocol, sys.stdin)
    return JsonLinesSource(reader)


class TcpSource:
    """Accepts newline-JSON report connections and merges their streams.

    Hardened against misbehaving feeders:

    * the merge queue is **bounded** (``queue_size``): when it fills, the
      per-connection handler blocks on ``put`` and *stops reading its
      socket*, so TCP flow control pushes back on the feeder instead of
      the plane buffering unboundedly (``serve.ingest_backpressure``
      counts the stalls);
    * an optional shared ``auth_token`` must arrive as the first line of
      every connection; mismatches close the connection
      (``serve.ingest_auth_failed``);
    * lines longer than ``max_line_bytes`` close the offending
      connection (``serve.ingest_overlong``) — one hostile feeder cannot
      balloon reader buffers;
    * ``max_report_rate`` (reports/second per connection, 0 = off)
      throttles a flooding feeder by sleeping the handler
      (``serve.ingest_throttled``).

    ``close()`` terminates cleanly: the listener stops, every live
    handler task is cancelled and awaited, and a ``None`` sentinel is
    enqueued so :meth:`reports` ends instead of blocking on ``get()``
    forever.
    """

    def __init__(
        self,
        port: int,
        host: str = "127.0.0.1",
        auth_token: Optional[str] = None,
        queue_size: int = 1024,
        max_line_bytes: int = 65536,
        max_report_rate: float = 0.0,
    ) -> None:
        if queue_size < 1:
            raise SimulationError("tcp queue_size must be >= 1")
        if max_line_bytes < 64:
            raise SimulationError("tcp max_line_bytes must be >= 64")
        if max_report_rate < 0:
            raise SimulationError("tcp max_report_rate must be >= 0")
        self.port = port
        self.host = host
        self.auth_token = auth_token
        self.queue_size = queue_size
        self.max_line_bytes = max_line_bytes
        self.max_report_rate = max_report_rate
        self._queue: "asyncio.Queue[Optional[LoadReport]]" = asyncio.Queue(
            maxsize=queue_size
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._handlers: set = set()
        self._closed = False
        self.rejected = 0
        self.auth_failures = 0
        self.overlong_lines = 0
        self.backpressure_hits = 0
        self.throttled = 0

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=self.max_line_bytes
        )

    async def close(self) -> None:
        """Stop accepting, drain handler tasks, terminate the iterator."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._handlers):
            task.cancel()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
            self._handlers.clear()
        if not self._closed:
            self._closed = True
            # The sentinel must land even when the bounded queue is full;
            # at shutdown, dropping one undelivered report beats hanging
            # the consumer forever.
            try:
                self._queue.put_nowait(None)
            except asyncio.QueueFull:
                self._queue.get_nowait()
                self._queue.put_nowait(None)

    async def _authenticate(self, reader, tel) -> bool:
        line = await reader.readline()
        if line.decode("utf-8", "replace").strip() == self.auth_token:
            return True
        self.auth_failures += 1
        if tel.enabled:
            tel.metrics.counter("serve.ingest_auth_failed").inc()
        return False

    async def _handle(self, reader, writer) -> None:
        tel = get_telemetry()
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        loop = asyncio.get_running_loop()
        budget = 1.0
        last = loop.time()
        try:
            if self.auth_token is not None:
                if not await self._authenticate(reader, tel):
                    return
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Line exceeded the StreamReader limit: the feeder is
                    # misbehaving and resynchronising mid-line is
                    # guesswork — drop the connection.
                    self.overlong_lines += 1
                    if tel.enabled:
                        tel.metrics.counter("serve.ingest_overlong").inc()
                    break
                if not line:
                    break
                if self.max_report_rate > 0:
                    now = loop.time()
                    budget = min(
                        self.max_report_rate,
                        budget + (now - last) * self.max_report_rate,
                    )
                    last = now
                    if budget < 1.0:
                        self.throttled += 1
                        if tel.enabled:
                            tel.metrics.counter("serve.ingest_throttled").inc()
                        await asyncio.sleep(
                            (1.0 - budget) / self.max_report_rate
                        )
                        last = loop.time()
                    budget -= 1.0
                report = parse_report_line(line.decode("utf-8", "replace"))
                if report is None:
                    self.rejected += 1
                    if tel.enabled:
                        tel.metrics.counter("serve.reports_rejected").inc()
                    continue
                if self._queue.full():
                    self.backpressure_hits += 1
                    if tel.enabled:
                        tel.metrics.counter("serve.ingest_backpressure").inc()
                await self._queue.put(report)
        except asyncio.CancelledError:
            pass  # close() is draining us
        finally:
            if task is not None:
                self._handlers.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def reports(self) -> AsyncIterator[LoadReport]:
        if self._server is None and not self._closed:
            await self.start()
        while True:
            report = await self._queue.get()
            if report is None:
                return
            yield report


def source_from_spec(
    spec: str,
    trace: Optional[LoadTrace] = None,
    speed: float = 0.0,
    auth_token: Optional[str] = None,
    queue_size: int = 1024,
    max_line_bytes: int = 65536,
    max_report_rate: float = 0.0,
):
    """Build a source from the CLI ``--source`` grammar.

    * ``replay:<path.csv>`` / ``replay:b2w`` — trace replay (the trace
      for symbolic names is resolved by the caller and passed in);
    * ``file:<path.jsonl>`` — newline-JSON report file;
    * ``stdin`` — newline-JSON on standard input;
    * ``tcp:<port>`` — listen for newline-JSON connections (the
      hardening knobs — token auth, bounded queue, line/rate caps —
      apply only here).
    """
    kind, _, arg = spec.partition(":")
    if kind == "replay":
        if trace is None:
            raise SimulationError(
                f"source {spec!r} needs a resolved trace (caller bug)"
            )
        return ReplaySource(trace, speed=speed)
    if kind == "file":
        if not arg:
            raise SimulationError("file source needs a path: file:<reports.jsonl>")
        return FileLinesSource(arg)
    if kind == "stdin":
        return "stdin"  # resolved lazily inside the running loop
    if kind == "tcp":
        try:
            port = int(arg)
        except ValueError:
            raise SimulationError(f"bad tcp source port {arg!r}") from None
        return TcpSource(
            port,
            auth_token=auth_token,
            queue_size=queue_size,
            max_line_bytes=max_line_bytes,
            max_report_rate=max_report_rate,
        )
    raise SimulationError(
        f"unknown source {spec!r} (want replay:<trace>|file:<path>|stdin|tcp:<port>)"
    )
