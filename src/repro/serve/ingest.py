"""Load-report sources for the control plane.

A *load report* is one monitor surrogate's measurement: "node N observed
``count`` transactions around simulated time ``time``".  Sources are
async iterators of :class:`LoadReport`; the plane feeds them into the
:class:`~repro.serve.depository.Depository`, which decides when an
interval is complete.

Three source families:

* :class:`ReplaySource` — drives a :class:`~repro.workload.trace.LoadTrace`
  in lockstep with the simulator's slotting.  ``speed`` maps simulated
  seconds onto wall seconds (``--speed 60`` replays a day per 24
  minutes); ``speed=0`` disables pacing entirely, which is the
  deterministic mode tests and sweep cells use.
* :class:`JsonLinesSource` — newline-delimited JSON reports from any
  async text stream (stdin, a file, a socket), e.g.::

      {"time": 1500.0, "node": "n3", "count": 412}

* :func:`tcp_source` — listens on a port and merges every connection's
  newline-JSON stream into one report sequence.

``source_from_spec`` maps the CLI's ``--source`` grammar onto these.
"""

from __future__ import annotations

import asyncio
import json
import pathlib
from dataclasses import dataclass
from typing import AsyncIterator, Optional

from ..errors import SimulationError
from ..telemetry import get_telemetry
from ..workload.trace import LoadTrace


@dataclass(frozen=True)
class LoadReport:
    """One interval-load measurement from one node's monitor surrogate."""

    time: float          # simulated seconds; also advances the node's clock
    count: float         # transactions observed in the report's span
    node: str = "n0"     # reporting node (the depository keys clocks on it)


def parse_report_line(line: str) -> Optional[LoadReport]:
    """Parse one newline-JSON report; None for blanks/malformed lines.

    Malformed input from an external feed must not take the control
    plane down — the caller counts rejects and keeps going.
    """
    text = line.strip()
    if not text:
        return None
    try:
        doc = json.loads(text)
        return LoadReport(
            time=float(doc["time"]),
            count=float(doc.get("count", 1.0)),
            node=str(doc.get("node", "n0")),
        )
    except (json.JSONDecodeError, KeyError, TypeError, ValueError):
        return None


class ReplaySource:
    """Replays a load trace as a live report stream.

    Each slot becomes one report timestamped mid-slot (the instant the
    measurement covers), so the depository's watermark closes slot ``k``
    when slot ``k+1``'s report arrives — exactly the one-interval lag a
    real monitor pipeline has.
    """

    def __init__(
        self,
        trace: LoadTrace,
        speed: float = 0.0,
        node: str = "replay",
    ) -> None:
        if speed < 0:
            raise SimulationError("replay speed must be >= 0")
        self.trace = trace
        self.speed = speed
        self.node = node

    async def reports(self) -> AsyncIterator[LoadReport]:
        slot_seconds = self.trace.slot_seconds
        for slot, count in enumerate(self.trace.values):
            if self.speed > 0:
                await asyncio.sleep(slot_seconds / self.speed)
            yield LoadReport(
                time=(slot + 0.5) * slot_seconds,
                count=float(count),
                node=self.node,
            )


class JsonLinesSource:
    """Reports from an async line stream (stdin, file, or socket)."""

    def __init__(self, reader: "asyncio.StreamReader") -> None:
        self.reader = reader
        self.rejected = 0

    async def reports(self) -> AsyncIterator[LoadReport]:
        tel = get_telemetry()
        while True:
            line = await self.reader.readline()
            if not line:
                return
            report = parse_report_line(line.decode("utf-8", "replace"))
            if report is None:
                self.rejected += 1
                if tel.enabled:
                    tel.metrics.counter("serve.reports_rejected").inc()
                continue
            yield report


class FileLinesSource:
    """Reports from a newline-JSON file (read eagerly; no pacing).

    Unlike :class:`JsonLinesSource` this needs no event-loop plumbing,
    so it also serves as the deterministic external-feed fixture in
    tests.
    """

    def __init__(self, path) -> None:
        self.path = pathlib.Path(path)
        self.rejected = 0

    async def reports(self) -> AsyncIterator[LoadReport]:
        tel = get_telemetry()
        for line in self.path.read_text().splitlines():
            report = parse_report_line(line)
            if report is None:
                if line.strip():
                    self.rejected += 1
                    if tel.enabled:
                        tel.metrics.counter("serve.reports_rejected").inc()
                continue
            yield report


async def stdin_source() -> JsonLinesSource:
    """A :class:`JsonLinesSource` over this process's stdin."""
    import sys

    loop = asyncio.get_event_loop()
    reader = asyncio.StreamReader()
    protocol = asyncio.StreamReaderProtocol(reader)
    await loop.connect_read_pipe(lambda: protocol, sys.stdin)
    return JsonLinesSource(reader)


class TcpSource:
    """Accepts newline-JSON report connections and merges their streams."""

    def __init__(self, port: int, host: str = "127.0.0.1") -> None:
        self.port = port
        self.host = host
        self._queue: "asyncio.Queue[Optional[LoadReport]]" = asyncio.Queue()
        self._server: Optional[asyncio.AbstractServer] = None
        self.rejected = 0

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(self, reader, writer) -> None:
        tel = get_telemetry()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                report = parse_report_line(line.decode("utf-8", "replace"))
                if report is None:
                    self.rejected += 1
                    if tel.enabled:
                        tel.metrics.counter("serve.reports_rejected").inc()
                    continue
                await self._queue.put(report)
        finally:
            writer.close()

    async def reports(self) -> AsyncIterator[LoadReport]:
        if self._server is None:
            await self.start()
        while True:
            report = await self._queue.get()
            if report is None:
                return
            yield report


def source_from_spec(
    spec: str,
    trace: Optional[LoadTrace] = None,
    speed: float = 0.0,
):
    """Build a source from the CLI ``--source`` grammar.

    * ``replay:<path.csv>`` / ``replay:b2w`` — trace replay (the trace
      for symbolic names is resolved by the caller and passed in);
    * ``file:<path.jsonl>`` — newline-JSON report file;
    * ``stdin`` — newline-JSON on standard input;
    * ``tcp:<port>`` — listen for newline-JSON connections.
    """
    kind, _, arg = spec.partition(":")
    if kind == "replay":
        if trace is None:
            raise SimulationError(
                f"source {spec!r} needs a resolved trace (caller bug)"
            )
        return ReplaySource(trace, speed=speed)
    if kind == "file":
        if not arg:
            raise SimulationError("file source needs a path: file:<reports.jsonl>")
        return FileLinesSource(arg)
    if kind == "stdin":
        return "stdin"  # resolved lazily inside the running loop
    if kind == "tcp":
        try:
            port = int(arg)
        except ValueError:
            raise SimulationError(f"bad tcp source port {arg!r}") from None
        return TcpSource(port)
    raise SimulationError(
        f"unknown source {spec!r} (want replay:<trace>|file:<path>|stdin|tcp:<port>)"
    )
