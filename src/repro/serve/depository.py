"""The central depository: per-node reports -> closed planner intervals.

Monitor surrogates on each node report their observed load
asynchronously; the depository buckets the counts into planner slots and
only releases a slot to the :class:`~repro.hstore.monitor.LoadMonitor`
once the *cluster-wide watermark* — the slowest node's clock — has moved
past it.  That gives the controller the same clean, ordered interval
stream the batch simulators produce, while tolerating out-of-order and
straggling reports.

Reports that arrive for a slot already released are counted as late and
dropped (the alternative, revising closed intervals, would re-open
forecasts the accuracy tracker has already scored).  A late report still
*advances its node's clock*: the node is alive and has seen that
timestamp, so holding its clock back would drag the watermark — and with
it the whole plane — behind a node that is actually current.

Watermark liveness: because the watermark is the *minimum* clock, one
node that stops reporting freezes interval-closing forever.  With
``node_timeout_intervals`` set, a node whose clock falls more than that
many intervals behind the fastest node is evicted from the clock map
(chronicled as ``node.stale``, parented on its last report); if it
reports again later it re-enters the map (``node.recovered``).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import SimulationError
from ..hstore.monitor import LoadMonitor
from ..telemetry import get_telemetry
from .ingest import LoadReport


class Depository:
    """Aggregates :class:`LoadReport` streams into monitor intervals."""

    def __init__(
        self,
        interval_seconds: float,
        monitor: Optional[LoadMonitor] = None,
        telemetry=None,
        node_timeout_intervals: int = 0,
    ) -> None:
        if node_timeout_intervals < 0:
            raise SimulationError("node_timeout_intervals must be >= 0")
        self._telemetry = telemetry if telemetry is not None else get_telemetry()
        self.monitor = (
            monitor
            if monitor is not None
            else LoadMonitor(interval_seconds, telemetry=self._telemetry)
        )
        self._interval = float(interval_seconds)
        #: 0 disables liveness eviction (a frozen watermark is then
        #: possible — the historical behaviour).
        self.node_timeout_intervals = int(node_timeout_intervals)
        self._buffer: Dict[int, float] = {}
        self._clocks: Dict[str, float] = {}
        #: node -> id of its ``node.stale`` chronicle record, kept so a
        #: re-appearing node's ``node.recovered`` can parent on it.
        self._evicted: Dict[str, Optional[str]] = {}
        #: node -> highest timestamp already ingested before a resume;
        #: replayed reports at or below it are duplicates, not data.
        self._resume_clocks: Dict[str, float] = {}
        self._released = 0          # slots already fed to the monitor
        self.reports_ingested = 0
        self.late_reports = 0
        self.duplicate_reports = 0
        self.evictions = 0
        self.late_by_node: Dict[str, int] = {}

    @property
    def watermark(self) -> float:
        """The slowest reporting node's clock (0 before any report)."""
        return min(self._clocks.values()) if self._clocks else 0.0

    @property
    def nodes(self) -> int:
        return len(self._clocks)

    def add(self, report: LoadReport) -> None:
        """Buffer one report; intervals close later, at :meth:`flush`."""
        tel = self._telemetry
        time = float(report.time)
        node = report.node
        if time <= self._resume_clocks.get(node, -1.0):
            # Replay source re-sent a report the pre-crash run already
            # ingested (its count is inside the checkpointed buffer or a
            # closed interval); counting it again would double the load.
            self.duplicate_reports += 1
            if tel.enabled:
                tel.metrics.counter("serve.reports_duplicate").inc()
            return
        slot = int(time // self._interval)
        late = slot < self._released
        if late:
            self.late_reports += 1
            self.late_by_node[node] = self.late_by_node.get(node, 0) + 1
            if tel.enabled:
                tel.metrics.counter("serve.reports_late", node=node).inc()
        else:
            self._buffer[slot] = self._buffer.get(slot, 0.0) + report.count
            self.reports_ingested += 1
        # Clock advance happens for late reports too (see module doc),
        # and marks an evicted node as recovered.
        previous = self._clocks.get(node)
        if previous is None and node in self._evicted:
            stale_id = self._evicted.pop(node)
            if tel.enabled:
                tel.chronicle.record(
                    "node.recovered", time=time, parent=stale_id, node=node,
                )
        self._clocks[node] = max(previous or 0.0, time)
        self._evict_stale()

    def _evict_stale(self) -> None:
        """Drop nodes whose clock trails the leader by > the timeout."""
        if self.node_timeout_intervals <= 0 or len(self._clocks) < 2:
            return
        horizon = (
            max(self._clocks.values())
            - self.node_timeout_intervals * self._interval
        )
        stale = [n for n, clock in self._clocks.items() if clock < horizon]
        tel = self._telemetry
        for node in stale:
            last_clock = self._clocks.pop(node)
            self.evictions += 1
            stale_id = None
            if tel.enabled:
                # Reconstruct the node's final report as a chronicle
                # record so ``node.stale`` has a causal parent even
                # though individual reports are normally not chronicled.
                last_report = tel.chronicle.record(
                    "node.report", time=last_clock, node=node,
                )
                stale_rec = tel.chronicle.record(
                    "node.stale",
                    time=last_clock,
                    parent=last_report,
                    node=node,
                    behind_intervals=self.node_timeout_intervals,
                )
                stale_id = stale_rec.get("id")
                tel.metrics.counter("serve.nodes_evicted").inc()
                tel.events.emit(
                    "node.stale", time=last_clock, node=node,
                )
            self._evicted[node] = stale_id

    def flush(self) -> int:
        """Release every slot the watermark has passed; returns how many
        intervals the monitor closed."""
        wm_slot = int(self.watermark // self._interval)
        if wm_slot <= self._released:
            return 0
        closed = 0
        for slot in sorted(s for s in self._buffer if s < wm_slot):
            count = self._buffer.pop(slot)
            # Mid-slot timestamp: attributes the count to exactly this
            # interval without touching the next boundary.
            closed += self.monitor.record((slot + 0.5) * self._interval, count)
        # Zero-count record at the watermark boundary closes any empty
        # slots up to it (the monitor batches the gap internally).
        closed += self.monitor.record(wm_slot * self._interval, 0.0)
        self._released = wm_slot
        return closed

    def finish(self) -> int:
        """Drain everything buffered at stream end (no more watermarks)."""
        if not self._buffer:
            return 0
        last = max(self._buffer)
        closed = 0
        for slot in sorted(self._buffer):
            closed += self.monitor.record(
                (slot + 0.5) * self._interval, self._buffer[slot]
            )
        self._buffer.clear()
        closed += self.monitor.record((last + 1) * self._interval, 0.0)
        self._released = last + 1
        return closed

    # ------------------------------------------------------------------
    # Checkpointing (``pstore serve --resume``)
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-serialisable snapshot of buffer, clocks, and counters."""
        return {
            "interval_seconds": self._interval,
            "buffer": [
                [slot, count] for slot, count in sorted(self._buffer.items())
            ],
            "clocks": dict(self._clocks),
            "evicted": dict(self._evicted),
            "released": self._released,
            "reports_ingested": self.reports_ingested,
            "late_reports": self.late_reports,
            "duplicate_reports": self.duplicate_reports,
            "evictions": self.evictions,
            "late_by_node": dict(self.late_by_node),
        }

    def restore_state(self, doc: dict) -> None:
        """Rebuild from :meth:`state_dict` output.

        Also arms duplicate suppression: every node's checkpointed clock
        becomes its *resume clock*, and replayed reports at or below it
        are dropped as duplicates (reports are assumed monotone per
        node, which every source in this package satisfies).
        """
        if float(doc["interval_seconds"]) != self._interval:
            raise SimulationError(
                f"checkpointed interval {doc['interval_seconds']}s does not "
                f"match the configured {self._interval}s"
            )
        self._buffer = {
            int(slot): float(count) for slot, count in doc.get("buffer", [])
        }
        self._clocks = {
            str(node): float(clock)
            for node, clock in doc.get("clocks", {}).items()
        }
        self._evicted = {
            str(node): rec_id for node, rec_id in doc.get("evicted", {}).items()
        }
        self._released = int(doc["released"])
        self.reports_ingested = int(doc.get("reports_ingested", 0))
        self.late_reports = int(doc.get("late_reports", 0))
        self.duplicate_reports = int(doc.get("duplicate_reports", 0))
        self.evictions = int(doc.get("evictions", 0))
        self.late_by_node = {
            str(node): int(count)
            for node, count in doc.get("late_by_node", {}).items()
        }
        self._resume_clocks = dict(self._clocks)
