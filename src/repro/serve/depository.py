"""The central depository: per-node reports -> closed planner intervals.

Monitor surrogates on each node report their observed load
asynchronously; the depository buckets the counts into planner slots and
only releases a slot to the :class:`~repro.hstore.monitor.LoadMonitor`
once the *cluster-wide watermark* — the slowest node's clock — has moved
past it.  That gives the controller the same clean, ordered interval
stream the batch simulators produce, while tolerating out-of-order and
straggling reports.

Reports that arrive for a slot already released are counted as late and
dropped (the alternative, revising closed intervals, would re-open
forecasts the accuracy tracker has already scored).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..hstore.monitor import LoadMonitor
from ..telemetry import get_telemetry
from .ingest import LoadReport


class Depository:
    """Aggregates :class:`LoadReport` streams into monitor intervals."""

    def __init__(
        self,
        interval_seconds: float,
        monitor: Optional[LoadMonitor] = None,
        telemetry=None,
    ) -> None:
        self._telemetry = telemetry if telemetry is not None else get_telemetry()
        self.monitor = (
            monitor
            if monitor is not None
            else LoadMonitor(interval_seconds, telemetry=self._telemetry)
        )
        self._interval = float(interval_seconds)
        self._buffer: Dict[int, float] = {}
        self._clocks: Dict[str, float] = {}
        self._released = 0          # slots already fed to the monitor
        self.reports_ingested = 0
        self.late_reports = 0

    @property
    def watermark(self) -> float:
        """The slowest reporting node's clock (0 before any report)."""
        return min(self._clocks.values()) if self._clocks else 0.0

    @property
    def nodes(self) -> int:
        return len(self._clocks)

    def add(self, report: LoadReport) -> None:
        """Buffer one report; intervals close later, at :meth:`flush`."""
        slot = int(report.time // self._interval)
        if slot < self._released:
            self.late_reports += 1
            tel = self._telemetry
            if tel.enabled:
                tel.metrics.counter("serve.reports_late").inc()
            return
        self._buffer[slot] = self._buffer.get(slot, 0.0) + report.count
        previous = self._clocks.get(report.node, 0.0)
        self._clocks[report.node] = max(previous, float(report.time))
        self.reports_ingested += 1

    def flush(self) -> int:
        """Release every slot the watermark has passed; returns how many
        intervals the monitor closed."""
        wm_slot = int(self.watermark // self._interval)
        if wm_slot <= self._released:
            return 0
        closed = 0
        for slot in sorted(s for s in self._buffer if s < wm_slot):
            count = self._buffer.pop(slot)
            # Mid-slot timestamp: attributes the count to exactly this
            # interval without touching the next boundary.
            closed += self.monitor.record((slot + 0.5) * self._interval, count)
        # Zero-count record at the watermark boundary closes any empty
        # slots up to it (the monitor batches the gap internally).
        closed += self.monitor.record(wm_slot * self._interval, 0.0)
        self._released = wm_slot
        return closed

    def finish(self) -> int:
        """Drain everything buffered at stream end (no more watermarks)."""
        if not self._buffer:
            return 0
        last = max(self._buffer)
        closed = 0
        for slot in sorted(self._buffer):
            closed += self.monitor.record(
                (slot + 0.5) * self._interval, self._buffer[slot]
            )
        self._buffer.clear()
        closed += self.monitor.record((last + 1) * self._interval, 0.0)
        self._released = last + 1
        return closed
