"""The always-on predictive provisioning control plane (``pstore serve``).

Everything else in the repo is batch: a trace goes in, a finished run
directory comes out.  This package turns the same predict -> plan ->
migrate machinery into a *service that is advanced by events*, following
the monitor-surrogate -> central-depository -> reprovision-on-error
architecture:

* :mod:`repro.serve.ingest` — load-report sources: an in-proc trace
  replay (optionally accelerated by ``--speed``), plus newline-JSON
  stdin/file and TCP feeds for external monitors;
* :mod:`repro.serve.depository` — aggregates per-node reports into the
  rolling window :class:`~repro.hstore.monitor.LoadMonitor` expects,
  closing intervals at the cluster-wide watermark;
* :mod:`repro.serve.controller` — the online controller: refits SPAR on
  the window, re-plans with the existing planner, steps migrations
  non-blockingly, and — when the PR-6 :class:`AccuracyTracker` reports
  rolling MAPE/bias over threshold — fires an *unscheduled* re-plan and
  falls back to reactive provisioning until the refit model recovers;
* :mod:`repro.serve.server` — a zero-dependency asyncio HTTP endpoint
  (``/status``, ``/metrics``, ``/chronicle/tail``, ``/plan``);
* :mod:`repro.serve.persist` — crash-safe checkpointing: atomic
  snapshot + incremental chronicle log, restored by ``--resume`` so a
  SIGKILL'd plane reconstructs mid-stream without double-closing
  intervals;
* :mod:`repro.serve.plane` — the event loop tying them together, with
  graceful SIGINT draining that flushes the full 5-artifact
  ``export_run`` so a killed service still yields an ``explain``-able
  run directory.

See docs/SERVICE.md for the architecture and lifecycle.
"""

from .controller import ErrorTrigger, OnlineController, parse_error_trigger
from .depository import Depository
from .ingest import (
    LoadReport,
    JsonLinesSource,
    ReplaySource,
    TcpSource,
    parse_report_line,
    source_from_spec,
)
from .persist import CHECKPOINT_SCHEMA, CheckpointStore
from .plane import ControlPlane, ServeOptions
from .server import ControlPlaneServer

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointStore",
    "ControlPlane",
    "ControlPlaneServer",
    "Depository",
    "ErrorTrigger",
    "JsonLinesSource",
    "LoadReport",
    "OnlineController",
    "ReplaySource",
    "ServeOptions",
    "TcpSource",
    "parse_error_trigger",
    "parse_report_line",
    "source_from_spec",
]
