"""System-wide configuration for the P-Store reproduction.

:class:`PStoreConfig` carries the empirically-discovered parameters of the
paper's model (Section 4.1):

``Q``
    target throughput of one server (txn/s) — the planner provisions so
    that predicted load never exceeds ``Q`` per server;
``Q_hat``
    maximum throughput of one server (txn/s) — beyond this the latency
    SLA is violated;
``D``
    shortest time (seconds) to migrate the whole database once with a
    single sender/receiver thread pair without disturbing the workload.

Defaults reproduce the values the paper discovers for the B2W workload on
H-Store with 6 partitions per node: saturation at 438 txn/s, ``Q̂ = 350``
(80%), ``Q = 285`` (65%), ``D = 4646 s`` (77 minutes, including the 10%
buffer) and a migration rate ``R = 244 kB/s`` over a 1106 MB database.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass

from .errors import ConfigurationError


def canonical_json(obj) -> str:
    """Serialise ``obj`` to a canonical JSON string (sorted keys, no
    whitespace).  Identical values always yield identical strings, so the
    output is safe to hash for cache keys."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))

#: Saturation throughput of a single 6-partition server (txn/s, Fig. 7).
SINGLE_NODE_SATURATION_TPS = 438.0

#: Fraction of saturation used for the maximum throughput Q̂ (Sec. 4.1).
Q_HAT_FRACTION = 0.80

#: Fraction of saturation used for the target throughput Q (Sec. 4.1).
Q_FRACTION = 0.65

#: Single-thread full-database migration time, seconds (Sec. 8.1).
DEFAULT_D_SECONDS = 4646.0

#: Database size used for D discovery (kB); 1106 MB of carts/checkouts.
DEFAULT_DATABASE_KB = 1106 * 1024

#: Calibrated safe migration rate R (kB/s) from Sec. 8.1.
DEFAULT_MIGRATION_RATE_KBPS = 244.0

#: SLA threshold from Sec. 8.2: 500 ms is the largest unnoticeable delay.
DEFAULT_SLA_LATENCY_MS = 500.0

#: Migration chunk size found safe in Sec. 8.1 (kB).
DEFAULT_CHUNK_KB = 1000.0


@dataclass(frozen=True)
class FaultConfig:
    """The ``faults`` section of :class:`PStoreConfig` (chaos testing).

    Fault injection is off by default; when off, no injector is built
    and every run is bit-identical to a fault-free one.  The retry
    fields parameterise the :class:`repro.faults.RetryPolicy` that
    re-drives stalled or corrupted transfers.
    """

    #: Inject the configured scenario's faults into runs.
    enabled: bool = False
    #: Path to a scenario JSON file (see docs/FAULTS.md); empty means
    #: the host supplies a scenario programmatically.
    scenario: str = ""
    #: Seed for the injector RNG (victim picks, retry jitter).
    seed: int = 0
    #: Give up re-driving a transfer after this many attempts.
    max_attempts: int = 5
    #: First retry backoff (simulated seconds).
    base_backoff_seconds: float = 2.0
    #: Growth factor between consecutive backoffs.
    backoff_multiplier: float = 2.0
    #: Backoff jitter as a fraction of the backoff (in [0, 1)).
    jitter_fraction: float = 0.1
    #: No-progress time before a transfer is declared stalled (seconds).
    transfer_timeout_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("faults.max_attempts must be >= 1")
        if self.base_backoff_seconds <= 0:
            raise ConfigurationError(
                "faults.base_backoff_seconds must be positive"
            )
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError("faults.backoff_multiplier must be >= 1")
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ConfigurationError(
                "faults.jitter_fraction must be in [0, 1)"
            )
        if self.transfer_timeout_seconds <= 0:
            raise ConfigurationError(
                "faults.transfer_timeout_seconds must be positive"
            )

    @classmethod
    def from_dict(cls, data: dict) -> "FaultConfig":
        valid = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - valid
        if unknown:
            raise ConfigurationError(
                f"unknown faults config keys {sorted(unknown)}; valid "
                f"keys are {sorted(valid)}"
            )
        return cls(**data)


@dataclass(frozen=True)
class TelemetryConfig:
    """The ``telemetry`` section of :class:`PStoreConfig`.

    Telemetry is off by default; when off, the instrumentation hooks in
    the engine, controller, and simulators cost one attribute check.
    """

    #: Record metrics, spans, and events for this run.
    enabled: bool = False
    #: Directory to export ``events.jsonl``/``spans.jsonl``/``metrics.json``
    #: into at the end of a run (None = keep in memory only).
    out_dir: str = ""

    @classmethod
    def from_dict(cls, data: dict) -> "TelemetryConfig":
        valid = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - valid
        if unknown:
            raise ConfigurationError(
                f"unknown telemetry config keys {sorted(unknown)}; valid "
                f"keys are {sorted(valid)}"
            )
        return cls(**data)


@dataclass(frozen=True)
class PStoreConfig:
    """Immutable bundle of model parameters shared by planner and simulator.

    Parameters mirror the symbols of the paper (Appendix A).  All times are
    seconds; all rates are transactions per second unless noted.
    """

    #: Target average throughput per server, ``Q`` (txn/s).
    q: float = Q_FRACTION * SINGLE_NODE_SATURATION_TPS
    #: Maximum throughput per server, ``Q̂`` (txn/s).
    q_hat: float = Q_HAT_FRACTION * SINGLE_NODE_SATURATION_TPS
    #: Single-thread full-database migration time ``D`` (seconds).
    d_seconds: float = DEFAULT_D_SECONDS
    #: Logical data partitions per server, ``P``.
    partitions_per_node: int = 6
    #: Length of one planner time interval (seconds).  The paper plans at
    #: minute granularity for live runs and 5-minute granularity for the
    #: long simulations of Section 8.3.
    interval_seconds: float = 60.0
    #: Latency SLA threshold (milliseconds).
    sla_latency_ms: float = DEFAULT_SLA_LATENCY_MS
    #: Multiplier applied to load predictions to absorb prediction error
    #: ("we inflate all predictions by 15%", Sec. 8.2).
    prediction_inflation: float = 1.15
    #: Number of consecutive planning cycles that must agree before a
    #: scale-in move is executed (Sec. 6).
    scale_in_confirmations: int = 3
    #: Upper bound on machines the planner may allocate; 0 means unbounded
    #: (Z is then derived from the predicted peak as in Algorithm 1).
    max_machines: int = 0
    #: Database size in kB (used to convert chunk sizes to fractions).
    database_kb: float = DEFAULT_DATABASE_KB
    #: Migration chunk size (kB); Fig. 8 sweeps this.
    chunk_kb: float = DEFAULT_CHUNK_KB
    #: Forecast/planning horizon in intervals; 0 derives the paper's
    #: lower bound ``2 D / P`` (see PredictiveController).
    horizon_intervals: int = 0
    #: Observability settings (metrics/span/event recording).
    telemetry: TelemetryConfig = TelemetryConfig()
    #: Fault injection / chaos-testing settings.
    faults: FaultConfig = FaultConfig()

    def __post_init__(self) -> None:
        if isinstance(self.telemetry, dict):
            # from_file/from_dict hand the section through as a mapping.
            object.__setattr__(
                self, "telemetry", TelemetryConfig.from_dict(self.telemetry)
            )
        if not isinstance(self.telemetry, TelemetryConfig):
            raise ConfigurationError(
                "telemetry must be a TelemetryConfig or a mapping"
            )
        if isinstance(self.faults, dict):
            object.__setattr__(
                self, "faults", FaultConfig.from_dict(self.faults)
            )
        if not isinstance(self.faults, FaultConfig):
            raise ConfigurationError(
                "faults must be a FaultConfig or a mapping"
            )
        if self.q <= 0 or self.q_hat <= 0:
            raise ConfigurationError("Q and Q_hat must be positive")
        if self.q > self.q_hat:
            raise ConfigurationError(
                f"target throughput Q={self.q} must not exceed Q_hat={self.q_hat}"
            )
        if self.d_seconds <= 0:
            raise ConfigurationError("D must be positive")
        if self.partitions_per_node < 1:
            raise ConfigurationError("partitions_per_node must be >= 1")
        if self.interval_seconds <= 0:
            raise ConfigurationError("interval_seconds must be positive")
        if self.sla_latency_ms <= 0:
            raise ConfigurationError("sla_latency_ms must be positive")
        if self.prediction_inflation <= 0:
            raise ConfigurationError("prediction_inflation must be positive")
        if self.scale_in_confirmations < 1:
            raise ConfigurationError("scale_in_confirmations must be >= 1")
        if self.max_machines < 0:
            raise ConfigurationError("max_machines must be >= 0 (0 = unbounded)")
        if self.database_kb <= 0:
            # database_kb / d_seconds is the migration rate R; a zero or
            # negative size would silently zero every transfer.
            raise ConfigurationError("database_kb must be positive")
        if self.chunk_kb <= 0:
            raise ConfigurationError("chunk_kb must be positive")
        if self.horizon_intervals < 0:
            raise ConfigurationError(
                "horizon_intervals must be >= 0 (0 = derive from 2D/P)"
            )

    @property
    def d_intervals(self) -> float:
        """``D`` expressed in planner time intervals (may be fractional)."""
        return self.d_seconds / self.interval_seconds

    @property
    def migration_rate_kbps(self) -> float:
        """Single-pair migration rate ``R`` implied by ``D`` (kB/s)."""
        return self.database_kb / self.d_seconds

    def with_q(self, q: float) -> "PStoreConfig":
        """Return a copy with a different target throughput ``Q``.

        Used by the capacity-cost sweeps of Figure 12, which vary ``Q`` to
        trade cost against headroom.
        """
        return dataclasses.replace(self, q=q)

    def with_interval(self, interval_seconds: float) -> "PStoreConfig":
        """Return a copy with a different planning interval."""
        return dataclasses.replace(self, interval_seconds=interval_seconds)

    def servers_for_load(self, load_tps: float) -> int:
        """Minimum whole servers so that per-server load stays below ``Q``."""
        import math

        if load_tps <= 0:
            return 1
        return max(1, math.ceil(load_tps / self.q))

    @classmethod
    def from_dict(cls, data: dict) -> "PStoreConfig":
        """Build a config from a plain mapping (e.g. parsed JSON).

        Unknown keys raise, so typos in config files fail loudly.
        """
        valid = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - valid
        if unknown:
            raise ConfigurationError(
                f"unknown config keys {sorted(unknown)}; valid keys are "
                f"{sorted(valid)}"
            )
        return cls(**data)

    @classmethod
    def from_file(cls, path) -> "PStoreConfig":
        """Load a config from a JSON file.

        Example file::

            {"q": 285.0, "q_hat": 350.0, "d_seconds": 4646,
             "interval_seconds": 300, "prediction_inflation": 1.15}
        """
        return cls.from_dict(cls._read_file(path))

    @classmethod
    def from_sources(
        cls,
        file=None,
        data: "dict | None" = None,
        overrides: "dict | None" = None,
        base: "PStoreConfig | None" = None,
    ) -> "PStoreConfig":
        """Build a config by layering every supported source.

        This is *the* construction path for CLI commands, experiment
        defaults, and JSON scenario files alike.  Precedence, lowest to
        highest:

        1. the built-in defaults (or ``base`` when given);
        2. ``file`` — a JSON config file (see :meth:`from_file`);
        3. ``data`` — a plain mapping (e.g. an experiment's defaults);
        4. ``overrides`` — individual key overrides (e.g. CLI ``--set``).

        ``data`` and ``overrides`` accept dotted keys for the nested
        sections (``"faults.seed"``, ``"telemetry.enabled"``).  Unknown
        keys raise :class:`ConfigurationError`, as everywhere else.
        """
        merged: dict = dict(base.to_dict()) if base is not None else {}
        for source in (
            cls._read_file(file) if file is not None else None,
            data,
            overrides,
        ):
            if not source:
                continue
            for key, value in source.items():
                cls._merge_key(merged, str(key), value)
        return cls.from_dict(merged)

    @staticmethod
    def _read_file(path) -> dict:
        import pathlib

        text = pathlib.Path(path).read_text()
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"config file {path} is not valid JSON: {exc}"
            )
        if not isinstance(data, dict):
            raise ConfigurationError("config file must contain a JSON object")
        return data

    @staticmethod
    def _merge_key(merged: dict, key: str, value) -> None:
        """Merge one possibly-dotted key into the accumulating mapping."""
        if "." in key:
            section, _, inner = key.partition(".")
            sub = merged.setdefault(section, {})
            if not isinstance(sub, dict):
                sub = dict(dataclasses.asdict(sub)) if dataclasses.is_dataclass(sub) else {}
                merged[section] = sub
            sub[inner] = value
        elif isinstance(value, dict) and isinstance(merged.get(key), dict):
            merged[key].update(value)
        else:
            merged[key] = value

    def config_hash(self) -> str:
        """Hex digest identifying every *result-relevant* setting.

        The sweep result cache keys cells on this hash: two configs with
        the same hash produce bit-identical runs.  The ``telemetry``
        section is excluded — recording metrics does not change results —
        while the ``faults`` section is included because injected faults
        do.
        """
        payload = {
            k: v for k, v in self.to_dict().items() if k != "telemetry"
        }
        return hashlib.sha256(
            canonical_json(payload).encode("utf-8")
        ).hexdigest()

    def to_dict(self) -> dict:
        """The config as a plain mapping (for serialisation/round trips)."""
        return dataclasses.asdict(self)


def default_config() -> PStoreConfig:
    """The configuration used throughout the paper's evaluation."""
    return PStoreConfig()


def parse_override_value(text: str):
    """Coerce a CLI override value: bool, int, float, then string."""
    if not isinstance(text, str):
        return text
    lowered = text.strip().lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def parse_set_overrides(pairs) -> dict:
    """Parse repeated CLI ``--set key=value`` arguments into a mapping.

    Keys may be dotted (``faults.seed=3``); values are coerced with
    :func:`parse_override_value`.  Malformed items raise
    :class:`ConfigurationError`.
    """
    overrides: dict = {}
    for item in pairs or ():
        key, sep, value = str(item).partition("=")
        if not sep or not key.strip():
            raise ConfigurationError(
                f"bad --set override {item!r} (expected key=value)"
            )
        overrides[key.strip()] = parse_override_value(value.strip())
    return overrides


#: Fractions of the saturation throughput swept in Figure 12.  Each value
#: of Q yields one point on a strategy's capacity-cost curve.
FIGURE12_Q_FRACTIONS = (0.35, 0.45, 0.55, 0.65, 0.75)
