"""Differential runner: engines that must agree, compared under load.

The reproduction has three execution paths that model the same system:

* the row-level :class:`~repro.hstore.engine.TransactionExecutor`,
* the analytic :class:`~repro.hstore.engine.QueueingEngine`,
* the vectorized :meth:`~repro.hstore.engine.QueueingEngine.step_block`
  fast path used by :class:`~repro.sim.simulator.ElasticDbSimulator`,

plus a migrator whose fluid-model data fractions must track the bucket
moves it actually commits.  Each ``diff_*`` function runs one pair
through the same workload and compares the results within a declared
tolerance; :func:`run_suite` bundles them into the report behind
``pstore check``.

Fairness notes (why the tolerances can be tight):

* The engine comparison submits a single fixed-cost read procedure at
  exponential interarrival times, so both sides model the same M/M/1
  mixture; the queueing engine runs with transient skew disabled and is
  fed the executor's *measured* per-partition arrival shares.  Saturated
  throughput is compared, but saturated latency is not — under overload
  both queues grow without bound and the instantaneous latencies depend
  on horizon length, not on model agreement.
* The fast path is documented (and tested elsewhere) as bit-identical
  to the scalar loop, so its tolerance is exactly zero.
* Migration accounting is compared at round commits, where the fluid
  fractions describe whole committed transfers; the gap to the bucket
  map is then pure bucket granularity plus plan imbalance.

Failures emit ``check.divergence`` telemetry events (and invariant
failures emit ``invariant.violation``), so a nonzero ``pstore check``
always leaves an auditable trail in the event log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..config import default_config
from ..elasticity.manual import ManualStrategy
from ..errors import InvariantViolation, SimulationError
from ..hstore import Cluster, Column, Schema, Table
from ..hstore.engine import QueueingEngine, TransactionExecutor
from ..hstore.txn import StoredProcedure, Transaction, TxnContext
from ..sim.simulator import ElasticDbSimulator
from ..squall.migrator import ClusterMigrator
from ..telemetry import get_telemetry
from . import invariants

#: Fast path vs. scalar loop must match bit for bit.
FAST_PATH_TOL = 0.0
#: Relative throughput tolerance below saturation (both engines should
#: complete essentially everything that is offered).
THROUGHPUT_SUB_TOL = 0.05
#: Relative throughput tolerance at saturation (service-time sampling
#: noise on the executor side).
THROUGHPUT_SAT_TOL = 0.10
#: Relative tolerance on stationary latency percentiles.  Both sides
#: sample the same M/M/1 sojourn distribution, but from finite (and
#: differently batched) sample sets.
LATENCY_TOL = 0.25
#: Absolute tolerance between fluid migration fractions and committed
#: bucket fractions at round boundaries: bucket granularity (1/buckets)
#: times the worst per-node bucket imbalance seen in a balanced plan.
MIGRATION_FRACTION_TOL = 0.05


@dataclass(frozen=True)
class DiffCheck:
    """One comparison: measured divergence against its tolerance."""

    name: str
    delta: float
    tolerance: float
    ok: bool
    detail: str = ""


@dataclass
class CheckReport:
    """Outcome of one differential run (or the whole suite)."""

    checks: List[DiffCheck]

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    @property
    def failures(self) -> List[DiffCheck]:
        return [check for check in self.checks if not check.ok]

    def extend(self, other: "CheckReport") -> None:
        self.checks.extend(other.checks)

    def describe(self) -> str:
        lines = []
        for check in self.checks:
            status = "ok  " if check.ok else "FAIL"
            line = (
                f"{status} {check.name:<38} "
                f"delta {check.delta:.3e} (tol {check.tolerance:.3e})"
            )
            if check.detail:
                line += f"  {check.detail}"
            lines.append(line)
        return "\n".join(lines)


def _record(
    checks: List[DiffCheck],
    name: str,
    delta: float,
    tolerance: float,
    detail: str = "",
) -> None:
    ok = bool(delta <= tolerance)
    checks.append(DiffCheck(name, float(delta), float(tolerance), ok, detail))
    tel = get_telemetry()
    if tel.enabled and not ok:
        tel.events.emit(
            "check.divergence",
            name=name,
            delta=float(delta),
            tolerance=float(tolerance),
            detail=detail,
        )
        tel.metrics.counter("check.divergences").inc()


def _record_violation(checks: List[DiffCheck], name: str, error: Exception) -> None:
    """An invariant tripped inside a differential run: report it as a
    failed check (the invariant already emitted its own event)."""
    checks.append(
        DiffCheck(name, float("inf"), 0.0, False, f"invariant: {error}")
    )


# ----------------------------------------------------------------------
# Fast path vs. scalar loop
# ----------------------------------------------------------------------


def _sinusoid(n: int, base: float = 500.0, amp: float = 300.0, seed: int = 0) -> np.ndarray:
    t = np.arange(n)
    rng = np.random.default_rng(seed)
    wave = base + amp * np.sin(2 * np.pi * t / max(n, 1))
    return np.maximum(0.0, wave + rng.normal(0.0, 25.0, n))


def diff_fast_path(
    seconds: int = 900, seed: int = 11, perturb: bool = False
) -> CheckReport:
    """Run one trace through the simulator twice — vectorized fast path
    and scalar per-second loop — and compare every output series.

    The fast path's contract is *bit-identical* results, so the
    tolerance is exactly zero.  ``perturb`` deliberately corrupts one
    fast-path output entry to prove the comparison has teeth.
    """
    config = default_config().with_interval(60.0)
    offered = _sinusoid(seconds, seed=seed)
    strategy_actions = [(2, 5), (10, 3)]

    def _run(fast_path: bool):
        sim = ElasticDbSimulator(
            config=config,
            max_machines=8,
            initial_machines=3,
            seed=seed,
            fast_path=fast_path,
        )
        return sim.run(offered, ManualStrategy(strategy_actions))

    fast = _run(True)
    scalar = _run(False)
    if perturb:
        # Inject a one-tick divergence into the fast-path output.
        fast.completed_tps[seconds // 2] += 0.1

    checks: List[DiffCheck] = []
    series = [
        ("machines", fast.machines, scalar.machines),
        ("migrating", fast.migrating.astype(float), scalar.migrating.astype(float)),
        ("completed_tps", fast.completed_tps, scalar.completed_tps),
    ]
    for q in (50.0, 95.0, 99.0):
        series.append(
            (f"p{int(q)}_ms", fast.latency.series(q), scalar.latency.series(q))
        )
    for label, a, b in series:
        delta = float(np.max(np.abs(a - b))) if a.size else 0.0
        _record(checks, f"fast-path.{label}", delta, FAST_PATH_TOL)
    return CheckReport(checks)


# ----------------------------------------------------------------------
# Transaction engine vs. queueing engine
# ----------------------------------------------------------------------


class _ProbeRead(StoredProcedure):
    """Fixed-cost single-key read used for the engine differential.

    ``cost_weight`` is exactly 1.0 so the executor's mean service time is
    ``1 / mu_partition`` — the same rate the analytic engine uses.
    """

    name = "CheckProbeRead"
    read_only = True
    cost_weight = 1.0

    def routing_key(self, params: Mapping[str, Any]) -> Any:
        return params["k"]

    def run(self, ctx: TxnContext, params: Mapping[str, Any]) -> Any:
        return ctx.require("kv", params["k"])["v"]


def _probe_cluster(partitions: int, keys: int) -> Cluster:
    schema = Schema(
        [
            Table(
                "kv",
                [Column("k", "str"), Column("v", "int", nullable=True)],
                primary_key="k",
            )
        ]
    )
    cluster = Cluster(schema, 1, partitions, n_buckets=partitions * 16)
    for i in range(keys):
        cluster.insert("kv", {"k": f"key-{i}", "v": i})
    return cluster


def _run_executor(
    rate: float, duration: float, partitions: int, keys: int, seed: int
):
    """Open-loop Poisson arrivals of :class:`_ProbeRead` transactions.

    Returns (completed_tps, latencies_ms, per-partition arrival shares)
    with completion counted by *finish* time inside the horizon, so a
    saturated run reports the service capacity rather than the offered
    rate.
    """
    cluster = _probe_cluster(partitions, keys)
    executor = TransactionExecutor(cluster, seed=seed)
    rng = np.random.default_rng(seed + 1)
    probe = _ProbeRead()
    arrivals = np.zeros(partitions)
    latencies: List[float] = []
    finished_in_horizon = 0
    now = rng.exponential(1.0 / rate)
    while now < duration:
        key = f"key-{int(rng.integers(0, keys))}"
        result = executor.execute(
            Transaction(probe, {"k": key}, submit_time=now)
        )
        arrivals[result.partition_id] += 1
        latencies.append(result.latency_ms)
        if now + result.latency_ms / 1000.0 <= duration:
            finished_in_horizon += 1
        now += rng.exponential(1.0 / rate)
    completed_tps = finished_in_horizon / duration
    shares = arrivals / arrivals.sum()
    return completed_tps, np.asarray(latencies), shares


def _run_queueing(
    rate: float, duration: float, shares: np.ndarray, seed: int
):
    """The analytic engine on the same offered load and measured shares,
    with transient skew disabled (the executor has no hot-key process)."""
    engine = QueueingEngine(
        n_partitions=shares.size,
        seed=seed,
        skew_sigma=0.0,
        hot_episode_rate=0.0,
        samples_per_tick=512,
    )
    ticks = int(duration)
    completed = np.empty(ticks)
    p50 = np.empty(ticks)
    p95 = np.empty(ticks)
    for i in range(ticks):
        stats = engine.step(1.0, rate, shares)
        completed[i] = stats.completed_tps
        p50[i] = stats.p50_ms
        p95[i] = stats.p95_ms
    return completed, p50, p95


def diff_engines(
    seed: int = 7,
    partitions: int = 2,
    keys: int = 400,
    sub_rate: float = 80.0,
    sub_duration: float = 240.0,
    sat_factor: float = 1.5,
    sat_duration: float = 120.0,
) -> CheckReport:
    """Transaction engine vs. queueing engine on the same Poisson trace.

    Two load levels: one well below saturation (throughput *and*
    stationary latency must agree) and one 50% past it (only throughput
    — the completion rate must pin to the service capacity on both
    sides; overloaded latency depends on horizon length, not model
    agreement).
    """
    checks: List[DiffCheck] = []
    from ..hstore.engine import DEFAULT_MU_PARTITION

    capacity = DEFAULT_MU_PARTITION * partitions

    # --- below saturation ------------------------------------------------
    tput, latencies, shares = _run_executor(
        sub_rate, sub_duration, partitions, keys, seed
    )
    q_completed, q_p50, q_p95 = _run_queueing(sub_rate, sub_duration, shares, seed)
    warmup = int(0.1 * sub_duration)
    q_tput = float(q_completed.mean())
    _record(
        checks,
        "engines.throughput-subsat",
        abs(tput - q_tput) / max(q_tput, 1e-9),
        THROUGHPUT_SUB_TOL,
        f"executor {tput:.1f} vs queueing {q_tput:.1f} tps",
    )
    exec_p50 = float(np.percentile(latencies, 50))
    exec_p95 = float(np.percentile(latencies, 95))
    q_p50_m = float(np.median(q_p50[warmup:]))
    q_p95_m = float(np.median(q_p95[warmup:]))
    _record(
        checks,
        "engines.p50-subsat",
        abs(exec_p50 - q_p50_m) / max(q_p50_m, 1e-9),
        LATENCY_TOL,
        f"executor {exec_p50:.1f} vs queueing {q_p50_m:.1f} ms",
    )
    _record(
        checks,
        "engines.p95-subsat",
        abs(exec_p95 - q_p95_m) / max(q_p95_m, 1e-9),
        LATENCY_TOL,
        f"executor {exec_p95:.1f} vs queueing {q_p95_m:.1f} ms",
    )

    # --- past saturation -------------------------------------------------
    sat_rate = sat_factor * capacity
    tput_sat, _, shares_sat = _run_executor(
        sat_rate, sat_duration, partitions, keys, seed + 100
    )
    q_completed_sat, _, _ = _run_queueing(
        sat_rate, sat_duration, shares_sat, seed + 100
    )
    q_tput_sat = float(q_completed_sat.mean())
    _record(
        checks,
        "engines.throughput-saturated",
        abs(tput_sat - q_tput_sat) / max(q_tput_sat, 1e-9),
        THROUGHPUT_SAT_TOL,
        f"executor {tput_sat:.1f} vs queueing {q_tput_sat:.1f} tps "
        f"(capacity {capacity:.1f})",
    )
    return CheckReport(checks)


# ----------------------------------------------------------------------
# Fluid migration accounting vs. committed buckets
# ----------------------------------------------------------------------


def _migration_cluster(nodes: int = 3, ppn: int = 2, buckets: int = 120,
                       rows: int = 3000) -> Cluster:
    schema = Schema(
        [
            Table(
                "kv",
                [Column("k", "str"), Column("v", "int", nullable=True)],
                primary_key="k",
            )
        ]
    )
    cluster = Cluster(schema, nodes, ppn, buckets)
    for i in range(rows):
        cluster.insert("kv", {"k": f"key-{i}", "v": i})
    return cluster


def _drop_one_bucket(cluster: Cluster, migrator: ClusterMigrator) -> int:
    """Corrupt the migration: silently discard the rows of one bucket
    that is scheduled to move (the injection behind ``--inject
    drop-bucket``).  Returns the sacrificed bucket id."""
    for moves in migrator._pair_buckets.values():
        for move in moves:
            bucket = move.bucket
            owner = cluster.partition(cluster.plan.owner(bucket))
            keys = set(cluster._bucket_keys[bucket]["kv"])
            if keys:
                owner.extract_rows("kv", keys)  # rows vanish, index stays
                return bucket
    raise SimulationError("no scheduled bucket with rows to drop")


def diff_migration_accounting(
    target_nodes: int = 5, drop_bucket: bool = False
) -> CheckReport:
    """Scale a row-level cluster and compare, at every round commit, the
    fluid-model data fractions against the bucket map's actual
    per-node fractions; verify rows are conserved end to end.

    ``drop_bucket`` corrupts the move (one scheduled bucket's rows are
    discarded mid-flight, *between* advances, the way a buggy transfer
    would lose them) — end-to-end row conservation must trip, and at
    the expensive tier the bucket-map cross-check flags the orphaned
    index entries.
    """
    checks: List[DiffCheck] = []
    cluster = _migration_cluster()
    migrator = ClusterMigrator(cluster, default_config())
    baseline = invariants.snapshot_row_counts(cluster)
    migrator.start_move(target_nodes)
    active = migrator.active
    assert active is not None
    node_map = dict(active.node_map or {})
    round_seconds = active.round_seconds
    worst = 0.0
    commits = 0
    try:
        while migrator.migrating:
            migrator.advance(round_seconds)
            commits += 1
            if drop_bucket and commits == 1:
                _drop_one_bucket(cluster, migrator)
            if migrator.migrating:
                fluid: Dict[int, float] = {}
                for logical, fraction in enumerate(active.data_fractions()):
                    fluid[node_map.get(logical, logical)] = float(fraction)
                committed = cluster.bucket_fractions_by_node()
                gap = max(
                    abs(fluid.get(node, 0.0) - committed.get(node, 0.0))
                    for node in set(fluid) | set(committed)
                )
                worst = max(worst, gap)
    except InvariantViolation as violation:
        # A runtime invariant (row conservation at a commit, bucket-map
        # agreement at finish) fired inside the migrator itself.
        _record_violation(checks, "migration.invariant", violation)
        return CheckReport(checks)
    _record(
        checks,
        "migration.fluid-vs-buckets",
        worst,
        MIGRATION_FRACTION_TOL,
        f"{commits} commits, {cluster.n_nodes} nodes",
    )
    final = invariants.snapshot_row_counts(cluster)
    _record(
        checks,
        "migration.rows-conserved",
        float(sum(abs(final[t] - baseline[t]) for t in baseline)),
        0.0,
        f"{sum(baseline.values())} rows",
    )
    if invariants.enabled(invariants.EXPENSIVE):
        try:
            invariants.check_bucket_map_agreement(
                cluster, "diff_migration_accounting"
            )
            _record(checks, "migration.bucket-map-agreement", 0.0, 0.0)
        except InvariantViolation as violation:
            _record_violation(checks, "migration.bucket-map-agreement", violation)
    return CheckReport(checks)


# ----------------------------------------------------------------------
# Tensor batch engine vs. serial cells
# ----------------------------------------------------------------------


def diff_tensor(perturb: bool = False) -> CheckReport:
    """Run the tensmoke grid twice — serial per-cell and batched through
    the :class:`~repro.sim.tensor.TensorBatchEngine` — and compare every
    cell's canonical payload.

    The tensor backend's contract is *bit-identical* payloads, so the
    comparison is exact equality of the canonical JSON (the same
    material ``result_hash`` pins).  The grid includes migrating
    strategies, so the batch must evict and re-admit cells mid-run; a
    final check asserts the eviction path was actually exercised.
    ``perturb`` corrupts one tensor payload to prove the comparison has
    teeth.
    """
    from ..config import canonical_json
    from ..experiments import tensmoke
    from ..runner.spec import jsonify
    from ..sim.tensor import TensorBatchEngine

    config = default_config()
    specs = tensmoke.grid()
    serial = {
        spec.label: canonical_json(jsonify(tensmoke.run_cell(spec, config)))
        for spec in specs
    }
    programs = [tensmoke.tensor_cell(spec, config) for spec in specs]
    batch = TensorBatchEngine(programs).run()

    checks: List[DiffCheck] = []
    for spec, program, cell in zip(specs, programs, batch.outcomes):
        if cell.error is not None:
            checks.append(
                DiffCheck(
                    f"tensor.{spec.label}", float("inf"), 0.0, False,
                    f"batch error: {cell.error.splitlines()[-1]}",
                )
            )
            continue
        payload = jsonify(program.finalize(cell.result))
        if perturb and spec is specs[0]:
            payload = dict(payload, __perturbed__=True)
        delta = 0.0 if canonical_json(payload) == serial[spec.label] else 1.0
        _record(
            checks,
            f"tensor.{spec.label}",
            delta,
            FAST_PATH_TOL,
            f"{cell.batched_ticks} batched + {cell.scalar_ticks} scalar "
            f"ticks, {cell.evictions} evictions",
        )
    _record(
        checks,
        "tensor.evictions-exercised",
        0.0 if batch.evictions > 0 else 1.0,
        0.0,
        f"{batch.evictions} evictions over {batch.rounds} rounds",
    )
    return CheckReport(checks)


# ----------------------------------------------------------------------
# Serve crash/resume vs. uninterrupted run
# ----------------------------------------------------------------------

#: Report index the crashing serve run dies at — past the drift slot
#: (72), so the checkpoint carries a hot accuracy window, a refit model,
#: and (typically) trigger state, the hardest state to reconstruct.
SERVE_RESUME_KILL_AFTER = 90


def diff_serve_resume(perturb: bool = False) -> CheckReport:
    """Crash a checkpointing serve run mid-stream, resume it, and compare
    against one uninterrupted run of the identical scenario.

    Convergence contract: the resumed run must finish with the same
    summary counters (intervals, violations, moves, trigger activity,
    final machine count) and the same chronicle projection — ``(kind,
    time)`` rows, ``service.*`` markers excluded — as if the crash never
    happened.  Equal interval counts plus an identical projection also
    rule out double-closed intervals: a re-closed slot would show up as
    extra interval records on both axes.  ``perturb`` corrupts one
    projection row to prove the comparison has teeth.
    """
    import tempfile

    from ..experiments.serve import (
        SERVE_SEED,
        SERVE_TRIGGER,
        chronicle_projection,
        run_resume_scenario,
        run_scenario,
    )

    baseline_summary, baseline_chronicle = run_scenario(
        SERVE_SEED, SERVE_TRIGGER
    )
    with tempfile.TemporaryDirectory(prefix="pstore-serve-resume-") as tmp:
        killed, resumed, merged = run_resume_scenario(
            SERVE_SEED,
            SERVE_TRIGGER,
            checkpoint_dir=tmp,
            kill_after=SERVE_RESUME_KILL_AFTER,
        )

    checks: List[DiffCheck] = []
    _record(
        checks,
        "serve-resume.crash-was-partial",
        0.0 if killed["intervals"] < baseline_summary["intervals"] else 1.0,
        0.0,
        f"killed at {killed['intervals']} of "
        f"{baseline_summary['intervals']} intervals",
    )
    _record(
        checks,
        "serve-resume.resumed-from-checkpoint",
        0.0 if resumed.get("resumed") else 1.0,
        0.0,
        f"checkpoint saves: {resumed.get('checkpoint_saves')}",
    )
    for field in (
        "intervals",
        "violations",
        "moves_started",
        "emergencies",
        "trigger_fires",
        "trigger_recoveries",
        "steady_machines",
    ):
        _record(
            checks,
            f"serve-resume.{field}",
            float(abs(resumed[field] - baseline_summary[field])),
            0.0,
            f"baseline={baseline_summary[field]} resumed={resumed[field]}",
        )
    _record(
        checks,
        "serve-resume.mode",
        0.0 if resumed["mode"] == baseline_summary["mode"] else 1.0,
        0.0,
        f"baseline={baseline_summary['mode']} resumed={resumed['mode']}",
    )
    base_proj = chronicle_projection(baseline_chronicle)
    merged_proj = chronicle_projection(merged)
    if perturb and merged_proj:
        merged_proj[-1] = ("__perturbed__", -1.0)
    mismatches = sum(
        1 for a, b in zip(base_proj, merged_proj) if a != b
    ) + abs(len(base_proj) - len(merged_proj))
    _record(
        checks,
        "serve-resume.chronicle-projection",
        float(mismatches),
        0.0,
        f"{len(base_proj)} baseline vs {len(merged_proj)} merged records",
    )
    _record(
        checks,
        "serve-resume.no-duplicate-reports-counted",
        0.0 if resumed["reports"] == baseline_summary["reports"] else 1.0,
        0.0,
        f"baseline={baseline_summary['reports']} resumed={resumed['reports']} "
        f"(duplicates suppressed: {resumed['duplicate_reports']})",
    )
    return CheckReport(checks)


# ----------------------------------------------------------------------
# Suite
# ----------------------------------------------------------------------

SUITES = ("fast-path", "engines", "migration", "tensor", "serve-resume")
INJECTIONS = (
    "drop-bucket",
    "perturb-fast-path",
    "perturb-tensor",
    "perturb-serve-resume",
)


def run_suite(
    suites: Sequence[str] = SUITES,
    seconds: int = 900,
    inject: Optional[str] = None,
) -> CheckReport:
    """Run the selected differential suites and merge their reports.

    ``inject`` deliberately corrupts one path (``drop-bucket`` or
    ``perturb-fast-path``) so callers can verify the harness catches it.
    """
    unknown = set(suites) - set(SUITES)
    if unknown:
        raise SimulationError(f"unknown differential suite(s): {sorted(unknown)}")
    if inject is not None and inject not in INJECTIONS:
        raise SimulationError(f"unknown injection {inject!r}; use {INJECTIONS}")
    report = CheckReport([])
    if "fast-path" in suites:
        report.extend(
            diff_fast_path(seconds=seconds, perturb=inject == "perturb-fast-path")
        )
    if "engines" in suites:
        report.extend(diff_engines())
    if "migration" in suites:
        report.extend(
            diff_migration_accounting(drop_bucket=inject == "drop-bucket")
        )
    if "tensor" in suites:
        report.extend(diff_tensor(perturb=inject == "perturb-tensor"))
    if "serve-resume" in suites:
        report.extend(
            diff_serve_resume(perturb=inject == "perturb-serve-resume")
        )
    return report
