"""Correctness harness: runtime invariants, differential runs, lint.

Three layers, cheapest first:

* :mod:`repro.check.invariants` — tiered runtime assertions that hot
  code (engine, migrator, simulators) evaluates at rare boundaries;
* :mod:`repro.check.differential` — executes the same trace through
  engines that must agree (transaction vs. queueing, fast path vs.
  scalar, fluid migration accounting vs. committed buckets) and compares
  them within declared tolerances;
* :mod:`repro.check.lint` — a small AST lint enforcing simulated-time
  hygiene (no bare ``random``, no wall-clock reads).

``pstore check`` drives all three; see docs/CORRECTNESS.md.

This ``__init__`` stays light on purpose: the engine and migrator import
``repro.check.invariants`` from their hot paths, while the differential
runner imports the simulator (which imports the engine back).  Eagerly
importing :mod:`~repro.check.differential` here would close that cycle,
so the heavy submodules resolve lazily via PEP 562.
"""

from __future__ import annotations

from . import invariants
from .invariants import (
    CHEAP,
    EXPENSIVE,
    OFF,
    check_level,
    check_scope,
    enabled,
    set_check_level,
)

__all__ = [
    "CHEAP",
    "EXPENSIVE",
    "OFF",
    "check_level",
    "check_scope",
    "differential",
    "enabled",
    "invariants",
    "lint",
    "set_check_level",
]

_LAZY_SUBMODULES = ("differential", "lint")


def __getattr__(name: str):
    if name in _LAZY_SUBMODULES:
        import importlib

        module = importlib.import_module(f".{name}", __name__)
        globals()[name] = module
        return module
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
