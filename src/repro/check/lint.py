"""Simulated-time hygiene lint (AST-based, stdlib only).

Everything in this package runs on a *simulated* clock with explicit
seeds, so two classes of code are bugs by construction:

* ``import random`` — the stdlib global RNG has hidden process-wide
  state; all randomness must come from ``numpy.random.default_rng``
  with an explicit seed (that is what makes the fast path bit-identical
  and every experiment reproducible);
* wall-clock reads (``time.time``, ``time.monotonic``,
  ``time.perf_counter``, ``datetime.now`` ...) inside simulated-time
  code — real time leaking into a simulation makes results machine- and
  load-dependent.

The telemetry tracer legitimately measures wall time for spans; it is
allowlisted.  Individual lines can opt out with a ``# lint:
wall-clock-ok`` comment.  ``pstore check`` (and the CI ``check-smoke``
job) runs :func:`lint_package` over the installed ``repro`` tree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

#: Files (by path suffix, POSIX-style) where wall-clock reads are the
#: point, not a bug.
WALL_CLOCK_ALLOWLIST: Tuple[str, ...] = (
    "telemetry/tracing.py",
    # The sweep executor times real cell execution (throughput/manifest
    # accounting); nothing inside a simulation reads these clocks.
    "runner/executor.py",
)

#: Inline escape hatch.
PRAGMA = "lint: wall-clock-ok"

_TIME_FUNCS = {"time", "monotonic", "perf_counter", "time_ns", "monotonic_ns"}
_DATETIME_FUNCS = {"now", "utcnow", "today"}

CODE_RANDOM = "CHK001"
CODE_WALL_CLOCK = "CHK002"


@dataclass(frozen=True)
class LintIssue:
    """One finding: file, line, rule code, human-readable message."""

    path: str
    line: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.code}] {self.message}"


def _has_pragma(source_lines: Sequence[str], lineno: int) -> bool:
    if 1 <= lineno <= len(source_lines):
        return PRAGMA in source_lines[lineno - 1]
    return False


def _wall_clock_calls(tree: ast.AST) -> List[Tuple[int, str]]:
    """(line, description) of every wall-clock read in the tree."""
    found: List[Tuple[int, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        target = func.value
        # time.time() / time.monotonic() / time.perf_counter() ...
        if (
            isinstance(target, ast.Name)
            and target.id == "time"
            and func.attr in _TIME_FUNCS
        ):
            found.append((node.lineno, f"time.{func.attr}()"))
        # datetime.now() / datetime.utcnow() / date.today(), optionally
        # spelled datetime.datetime.now().
        elif func.attr in _DATETIME_FUNCS:
            base: Optional[str] = None
            if isinstance(target, ast.Name):
                base = target.id
            elif isinstance(target, ast.Attribute) and isinstance(
                target.value, ast.Name
            ):
                base = f"{target.value.id}.{target.attr}"
            if base in ("datetime", "date", "datetime.datetime", "datetime.date"):
                found.append((node.lineno, f"{base}.{func.attr}()"))
    return found


def lint_source(source: str, path: str = "<string>") -> List[LintIssue]:
    """Lint one module's source text; returns the issues found."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            LintIssue(path, error.lineno or 1, "CHK000", f"syntax error: {error.msg}")
        ]
    lines = source.splitlines()
    issues: List[LintIssue] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    issues.append(
                        LintIssue(
                            path, node.lineno, CODE_RANDOM,
                            "bare `import random`: use numpy.random."
                            "default_rng with an explicit seed",
                        )
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                issues.append(
                    LintIssue(
                        path, node.lineno, CODE_RANDOM,
                        "`from random import ...`: use numpy.random."
                        "default_rng with an explicit seed",
                    )
                )
            elif node.module == "time" and any(
                alias.name in _TIME_FUNCS for alias in node.names
            ):
                if not _has_pragma(lines, node.lineno):
                    issues.append(
                        LintIssue(
                            path, node.lineno, CODE_WALL_CLOCK,
                            "wall-clock import from `time` in "
                            "simulated-time code",
                        )
                    )
    allowlisted = any(
        Path(path).as_posix().endswith(suffix) for suffix in WALL_CLOCK_ALLOWLIST
    )
    if not allowlisted:
        for lineno, description in _wall_clock_calls(tree):
            if _has_pragma(lines, lineno):
                continue
            issues.append(
                LintIssue(
                    path, lineno, CODE_WALL_CLOCK,
                    f"wall-clock read {description} in simulated-time code "
                    f"(add `# {PRAGMA}` only if this is truly wall time)",
                )
            )
    issues.sort(key=lambda issue: (issue.path, issue.line))
    return issues


def lint_file(path) -> List[LintIssue]:
    """Lint one file on disk."""
    p = Path(path)
    return lint_source(p.read_text(encoding="utf-8"), str(p))


def lint_package(root=None) -> List[LintIssue]:
    """Lint every ``*.py`` under ``root`` (default: this ``repro`` tree).

    Paths in issues are reported relative to ``root`` so output is
    stable across machines.
    """
    base = Path(root) if root is not None else Path(__file__).resolve().parents[1]
    issues: List[LintIssue] = []
    for path in sorted(base.rglob("*.py")):
        source = path.read_text(encoding="utf-8")
        relative = path.relative_to(base).as_posix()
        issues.extend(lint_source(source, relative))
    return issues
