"""Runtime invariant library: the always-on correctness tier.

The reproduction has three engines that must agree (the per-transaction
engine, the analytic queueing engine, and the vectorized fast path) and
a migrator whose bucket moves must conserve every row.  This module
holds the cross-cutting consistency properties those components assert
*while running*, split into tiers:

``CHEAP`` (the default)
    O(machines)/O(partitions) checks at rare boundaries — row
    conservation across :class:`~repro.squall.migrator.ClusterMigrator`
    commits, migration data fractions summing to one, non-negative
    queue backlog, monotone simulated time, capacity accounting
    consistent with ``Q``/``Q̂``.  These stay on in production runs; the
    perf-regression harness budgets for them.
``EXPENSIVE``
    O(rows) cross-checks — full bucket-map/row-store agreement — run by
    ``pstore check``, the test suite, and anyone debugging a divergence.

Every violation emits an ``invariant.violation`` event into the
telemetry event log (when recording) and raises
:class:`~repro.errors.InvariantViolation`, so disagreement is loud in
the moment and auditable afterwards.

Hot paths import this module directly (``from ..check import
invariants``) and guard each check with :func:`enabled`, which costs one
global read and one comparison when the tier is off.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Dict, Optional, Union

import numpy as np

from ..errors import InvariantViolation
from ..telemetry import get_telemetry

#: Check tiers, ordered: every tier includes the ones below it.
OFF, CHEAP, EXPENSIVE = 0, 1, 2

_LEVEL_NAMES = {"off": OFF, "cheap": CHEAP, "expensive": EXPENSIVE}

_level = CHEAP

#: Absolute tolerance for conserved float quantities (fraction sums,
#: capacity ratios).  Data fractions are O(1) sums of O(machines) terms,
#: so anything beyond a few ulps signals real accounting drift.
FRACTION_TOL = 1e-9


def _resolve(level: Union[int, str]) -> int:
    if isinstance(level, str):
        try:
            return _LEVEL_NAMES[level.lower()]
        except KeyError:
            raise InvariantViolation(
                f"unknown check level {level!r}; use one of "
                f"{sorted(_LEVEL_NAMES)}"
            ) from None
    if level not in (OFF, CHEAP, EXPENSIVE):
        raise InvariantViolation(f"check level must be 0, 1, or 2 (got {level})")
    return int(level)


def check_level() -> int:
    """The currently active tier (OFF, CHEAP, or EXPENSIVE)."""
    return _level


def set_check_level(level: Union[int, str]) -> int:
    """Set the active tier; accepts names or ints; returns the previous."""
    global _level
    previous = _level
    _level = _resolve(level)
    return previous


def enabled(tier: int) -> bool:
    """Whether checks of ``tier`` should run right now."""
    return _level >= tier


@contextmanager
def check_scope(level: Union[int, str]):
    """Temporarily run at a different tier (tests, ``pstore check``)."""
    previous = set_check_level(level)
    try:
        yield
    finally:
        set_check_level(previous)


def violated(
    name: str,
    message: str,
    time: Optional[float] = None,
    **context,
):
    """Report one invariant violation: telemetry event + raise."""
    tel = get_telemetry()
    if tel.enabled:
        tel.events.emit(
            "invariant.violation", time=time, name=name,
            message=message, **context,
        )
        tel.metrics.counter("check.invariant_violations").inc()
    raise InvariantViolation(f"{name}: {message}")


# ----------------------------------------------------------------------
# Cheap checks (boundary-rate, O(machines) / O(partitions))
# ----------------------------------------------------------------------


def check_fraction_conservation(
    fractions: np.ndarray, where: str, time: Optional[float] = None
) -> None:
    """Migration data fractions must be non-negative and sum to 1."""
    total = float(np.sum(fractions))
    if not math.isfinite(total) or abs(total - 1.0) > FRACTION_TOL:
        violated(
            "migration.fractions-sum",
            f"{where}: data fractions sum to {total!r}, expected 1.0",
            time=time, where=where, total=total,
        )
    smallest = float(np.min(fractions))
    if smallest < -FRACTION_TOL:
        violated(
            "migration.fractions-negative",
            f"{where}: smallest data fraction is {smallest!r}",
            time=time, where=where, smallest=smallest,
        )


def snapshot_row_counts(cluster) -> Dict[str, int]:
    """Rows per table across the whole cluster (active or not — a
    retiring node's rows still exist until its buckets drain)."""
    counts = {table.name: 0 for table in cluster.schema}
    for partition in cluster._partitions.values():
        for table in cluster.schema:
            counts[table.name] += partition.row_count(table.name)
    return counts


def check_row_conservation(
    cluster,
    baseline: Dict[str, int],
    where: str,
    time: Optional[float] = None,
) -> None:
    """No migration step may create or destroy rows."""
    current = snapshot_row_counts(cluster)
    if current != baseline:
        deltas = {
            name: current.get(name, 0) - baseline.get(name, 0)
            for name in set(baseline) | set(current)
            if current.get(name, 0) != baseline.get(name, 0)
        }
        violated(
            "migration.row-conservation",
            f"{where}: row counts changed by {deltas} during a migration",
            time=time, where=where, deltas={k: int(v) for k, v in deltas.items()},
        )


def check_nonnegative_backlog(
    backlog: np.ndarray, where: str, time: Optional[float] = None
) -> None:
    """Queue lengths (engine backlog) can never go negative."""
    smallest = float(np.min(backlog))
    if smallest < 0.0 or not math.isfinite(float(np.sum(backlog))):
        violated(
            "engine.negative-backlog",
            f"{where}: backlog has entry {smallest!r}",
            time=time, where=where, smallest=smallest,
        )


def check_time_accounting(
    advanced: float, expected: float, where: str, tol: float = 1e-6
) -> None:
    """Simulated clocks advance by exactly the driven duration (catches
    a fast-path block dropping or double-counting ticks)."""
    if abs(advanced - expected) > tol * max(1.0, abs(expected)):
        violated(
            "sim.time-accounting",
            f"{where}: clock advanced {advanced!r}s for {expected!r}s of input",
            where=where, advanced=advanced, expected=expected,
        )


def check_capacity_accounting(
    machines: np.ndarray,
    eff_cap_target: np.ndarray,
    eff_cap_max: np.ndarray,
    migrating: np.ndarray,
    q: float,
    q_hat: float,
    where: str,
) -> None:
    """Capacity series must be consistent with ``Q``/``Q̂`` (Eq. 7).

    Out of a migration the effective capacity is exactly ``machines x
    Q`` (resp. ``Q̂``); during one it is bounded by the allocation; and
    the target/max series always stand in the ratio ``Q : Q̂``.
    """
    machines = np.asarray(machines, dtype=float)
    eff_q = np.asarray(eff_cap_target, dtype=float)
    eff_qhat = np.asarray(eff_cap_max, dtype=float)
    migrating = np.asarray(migrating, dtype=bool)
    if eff_q.size and float(np.min(eff_q)) <= 0.0:
        violated(
            "capacity.nonpositive",
            f"{where}: effective capacity must stay positive",
            where=where,
        )
    ratio_bad = np.abs(eff_qhat * q - eff_q * q_hat) > FRACTION_TOL * np.abs(
        eff_qhat * q
    )
    if bool(np.any(ratio_bad)):
        slot = int(np.argmax(ratio_bad))
        violated(
            "capacity.q-ratio",
            f"{where}: slot {slot} capacity ratio "
            f"{eff_qhat[slot]}/{eff_q[slot]} != Q_hat/Q = {q_hat}/{q}",
            where=where, slot=slot,
        )
    quiet = ~migrating
    off_grid = np.abs(eff_q[quiet] - machines[quiet] * q) > FRACTION_TOL * q * np.maximum(
        machines[quiet], 1.0
    )
    if bool(np.any(off_grid)):
        slot = int(np.flatnonzero(quiet)[np.argmax(off_grid)])
        violated(
            "capacity.machines-grid",
            f"{where}: slot {slot} has capacity {eff_q[slot]} for "
            f"{machines[slot]} machines at Q={q}",
            where=where, slot=slot,
        )


class MonotoneClock:
    """Asserts a stream of simulated timestamps never runs backwards."""

    def __init__(self, where: str, start: float = -math.inf):
        self.where = where
        self._last = start

    @property
    def last(self) -> float:
        return self._last

    def observe(self, now: float) -> float:
        if now < self._last:
            violated(
                "sim.time-regression",
                f"{self.where}: simulated time went {self._last!r} -> {now!r}",
                time=now, where=self.where, previous=self._last,
            )
        self._last = now
        return now


# ----------------------------------------------------------------------
# Expensive checks (O(rows), opt-in)
# ----------------------------------------------------------------------


def check_bucket_map_agreement(
    cluster, where: str, time: Optional[float] = None
) -> None:
    """Full bucket-map / row-store cross-check.

    Every key the bucket index attributes to a bucket must be resident
    on the partition the plan assigns that bucket to, every stored row
    must be accounted for by the index, and every owning partition must
    live on an active node.
    """
    hosted = {
        pid for node in cluster.nodes for pid in node.partition_ids
    }
    for pid in cluster.plan.partition_ids:
        if pid not in hosted:
            violated(
                "cluster.orphan-partition",
                f"{where}: plan assigns buckets to partition {pid}, which is "
                "not hosted on any active node",
                time=time, where=where, partition=pid,
            )
    # Index -> store: indexed keys must exist on the owning partition.
    indexed_total = {table.name: 0 for table in cluster.schema}
    for bucket in range(cluster.n_buckets):
        owner = cluster.partition(cluster.plan.owner(bucket))
        for table in cluster.schema:
            keys = cluster._bucket_keys[bucket][table.name]
            indexed_total[table.name] += len(keys)
            for key in keys:
                if owner.get(table.name, key) is None:
                    violated(
                        "cluster.bucket-map-divergence",
                        f"{where}: bucket {bucket} indexes key {key!r} of "
                        f"table {table.name!r} on partition "
                        f"{owner.partition_id}, but the row is not there",
                        time=time, where=where, bucket=bucket,
                        table=table.name,
                    )
    # Store -> index: no unindexed rows hiding anywhere.
    stored_total = snapshot_row_counts(cluster)
    for table in cluster.schema:
        if stored_total[table.name] != indexed_total[table.name]:
            violated(
                "cluster.unindexed-rows",
                f"{where}: table {table.name!r} stores "
                f"{stored_total[table.name]} rows but the bucket index "
                f"accounts for {indexed_total[table.name]}",
                time=time, where=where, table=table.name,
            )
