"""Workload traces, synthetic generators, and load-event calendars."""

from .drift import (
    drifting_period_trace,
    growing_amplitude_trace,
    level_shift_trace,
    novel_spike_trace,
)
from .events import EventCalendar, LoadEvent, retail_season_calendar
from .generators import (
    b2w_evaluation_trace,
    b2w_like_trace,
    diurnal_profile,
    flash_crowd_trace,
    sine_trace,
    step_trace,
    wikipedia_like_trace,
)
from .io import (
    read_trace_csv,
    read_trace_csv_cached,
    trace_from_csv_string,
    trace_to_csv_string,
    write_trace_csv,
)
from .trace import HOURS_PER_DAY, MINUTES_PER_DAY, LoadTrace
from .wikipedia import (
    load_pagecounts_series,
    parse_hourly_totals,
    parse_pagecounts_hour,
)

__all__ = [
    "EventCalendar",
    "LoadEvent",
    "LoadTrace",
    "HOURS_PER_DAY",
    "MINUTES_PER_DAY",
    "b2w_evaluation_trace",
    "b2w_like_trace",
    "diurnal_profile",
    "drifting_period_trace",
    "flash_crowd_trace",
    "growing_amplitude_trace",
    "level_shift_trace",
    "novel_spike_trace",
    "retail_season_calendar",
    "sine_trace",
    "step_trace",
    "load_pagecounts_series",
    "parse_hourly_totals",
    "parse_pagecounts_hour",
    "read_trace_csv",
    "read_trace_csv_cached",
    "trace_from_csv_string",
    "trace_to_csv_string",
    "wikipedia_like_trace",
    "write_trace_csv",
]
