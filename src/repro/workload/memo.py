"""Per-process memoisation of parsed and generated workload traces.

Sweep cells are hermetic, which used to mean every cell re-generated (or
re-parsed) its workload trace from scratch — pure waste when a grid
crosses many strategies over the same few traces.  Because
:class:`~repro.workload.trace.LoadTrace` values are immutable
(``setflags(write=False)``), the *object* can be shared safely: this
module keeps a small per-process cache keyed on the full construction
arguments (generators) or on ``(path, mtime_ns, size)`` (CSV files).

Hit/miss counters are exposed so the sweep executor can report trace
reuse in ``manifest.json``; workers snapshot :func:`stats` around each
cell and ship the delta home.

The cache is intentionally tiny (a handful of traces dominate any grid)
and evicts in insertion order.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

#: Maximum cached traces per process; a sweep grid rarely touches more
#: than a couple of distinct traces.
MAX_ENTRIES = 16

_CACHE: Dict[tuple, object] = {}
_STATS = {"hits": 0, "misses": 0}


_MISSING = object()


def lookup(key: tuple):
    """The cached object for ``key`` or None; counts a hit or a miss."""
    value = _CACHE.get(key, _MISSING)
    if value is _MISSING:
        _STATS["misses"] += 1
        return None
    _STATS["hits"] += 1
    return value


def insert(key: tuple, value):
    """Cache ``value`` under ``key`` (evicting oldest entries)."""
    while len(_CACHE) >= MAX_ENTRIES:
        _CACHE.pop(next(iter(_CACHE)))
    _CACHE[key] = value
    return value


def memoized(key: tuple, build: Callable[[], object]):
    """Return the cached object for ``key``, building it on first use."""
    value = lookup(key)
    if value is None:
        value = insert(key, build())
    return value


def stats() -> Dict[str, int]:
    """A snapshot of the process-wide hit/miss counters."""
    return dict(_STATS)


def delta(before: Dict[str, int]) -> Dict[str, int]:
    """Counter movement since a :func:`stats` snapshot."""
    return {k: _STATS[k] - before.get(k, 0) for k in _STATS}


def clear() -> None:
    """Drop all cached traces and reset the counters (tests, benches)."""
    _CACHE.clear()
    _STATS["hits"] = 0
    _STATS["misses"] = 0


def file_key(path) -> Tuple[str, int, int]:
    """Cache key for an on-disk trace: absolute path + mtime + size, so
    an edited file is always re-parsed."""
    import os

    st = os.stat(path)
    return (os.path.abspath(path), st.st_mtime_ns, st.st_size)
