"""Load-trace container used across prediction, planning and simulation.

A :class:`LoadTrace` is an immutable, uniformly-sampled series of
aggregate load values (requests or transactions per slot) plus the slot
length.  It offers the handful of transformations the paper's evaluation
needs: slicing by slot or by wall-clock duration, resampling to coarser
slots, scaling (the paper replays B2W's trace at 10x speed), and
train/test splitting for the prediction study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from ..errors import SimulationError

#: Slots per day for one-minute sampling (the paper's T = 1440).
MINUTES_PER_DAY = 1440
#: Slots per day for hourly sampling (the Wikipedia traces).
HOURS_PER_DAY = 24


@dataclass(frozen=True)
class LoadTrace:
    """Uniformly-sampled aggregate load series.

    Attributes
    ----------
    values:
        load per slot; non-negative floats.
    slot_seconds:
        length of one slot in seconds.
    name:
        human-readable label used in reports.
    """

    values: np.ndarray
    slot_seconds: float
    name: str = "trace"

    def __post_init__(self) -> None:
        arr = np.asarray(self.values, dtype=float)
        if arr.ndim != 1 or arr.size == 0:
            raise SimulationError("trace values must be a non-empty 1-D array")
        if np.any(arr < 0) or np.any(~np.isfinite(arr)):
            raise SimulationError("trace values must be finite and non-negative")
        if self.slot_seconds <= 0:
            raise SimulationError("slot_seconds must be positive")
        arr.setflags(write=False)
        object.__setattr__(self, "values", arr)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self.values.size

    def __iter__(self) -> Iterator[float]:
        return iter(self.values)

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            return LoadTrace(
                self.values[idx].copy(), self.slot_seconds, name=self.name
            )
        return float(self.values[idx])

    @property
    def duration_seconds(self) -> float:
        return len(self) * self.slot_seconds

    @property
    def duration_days(self) -> float:
        return self.duration_seconds / 86_400.0

    @property
    def slots_per_day(self) -> int:
        per_day = 86_400.0 / self.slot_seconds
        return int(round(per_day))

    @property
    def peak(self) -> float:
        return float(self.values.max())

    @property
    def trough(self) -> float:
        return float(self.values.min())

    @property
    def mean(self) -> float:
        return float(self.values.mean())

    def peak_to_trough(self) -> float:
        """Ratio between the highest and lowest slot (Fig. 1 shows ~10x)."""
        trough = self.trough
        if trough <= 0:
            raise SimulationError("trace touches zero; peak/trough undefined")
        return self.peak / trough

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def scaled(self, factor: float) -> "LoadTrace":
        """Multiply every slot by ``factor`` (e.g. the paper's 10x replay)."""
        if factor < 0:
            raise SimulationError("scale factor must be non-negative")
        return LoadTrace(self.values * factor, self.slot_seconds, name=self.name)

    def as_rate_per_second(self) -> np.ndarray:
        """Convert per-slot counts to an average rate (per second) per slot."""
        return self.values / self.slot_seconds

    def compressed(self, speedup: float) -> "LoadTrace":
        """Replay the trace ``speedup`` times faster (the paper's 10x).

        Slot counts are unchanged but each slot now spans ``1/speedup``
        of its original duration, so the offered *rate* rises by the
        speedup factor — exactly how the paper compresses a full day of
        B2W traffic into 2.4 hours of benchmark time (Sec. 7).
        """
        if speedup <= 0:
            raise SimulationError("speedup must be positive")
        return LoadTrace(
            self.values, self.slot_seconds / speedup, name=f"{self.name}@{speedup:g}x"
        )

    def per_second_rates(self) -> np.ndarray:
        """Expand to one offered-rate sample per simulated second.

        Linear interpolation between slot midpoints; used to feed the
        second-granularity DBMS simulator.
        """
        rates = self.as_rate_per_second()
        total_seconds = int(round(self.duration_seconds))
        if total_seconds < 1:
            raise SimulationError("trace shorter than one second")
        slot_mid = (np.arange(len(self)) + 0.5) * self.slot_seconds
        t = np.arange(total_seconds) + 0.5
        return np.interp(t, slot_mid, rates)

    def slice_days(self, start_day: float, n_days: float) -> "LoadTrace":
        """Extract ``n_days`` starting at ``start_day`` (fractions allowed)."""
        per_day = 86_400.0 / self.slot_seconds
        lo = int(round(start_day * per_day))
        hi = int(round((start_day + n_days) * per_day))
        if not 0 <= lo < hi <= len(self):
            raise SimulationError(
                f"day slice [{start_day}, {start_day + n_days}) out of range "
                f"for a {self.duration_days:.2f}-day trace"
            )
        return LoadTrace(
            self.values[lo:hi].copy(), self.slot_seconds, name=self.name
        )

    def resampled(self, new_slot_seconds: float) -> "LoadTrace":
        """Aggregate to coarser slots, summing counts within each new slot.

        ``new_slot_seconds`` must be an integer multiple of the current
        slot length.  Used to turn 1-minute traces into the 5-minute slots
        of the Section 8.3 simulations.
        """
        ratio = new_slot_seconds / self.slot_seconds
        k = int(round(ratio))
        if k < 1 or abs(ratio - k) > 1e-9:
            raise SimulationError(
                f"new slot ({new_slot_seconds}s) must be an integer multiple "
                f"of the current slot ({self.slot_seconds}s)"
            )
        if k == 1:
            return self
        usable = (len(self) // k) * k
        if usable == 0:
            raise SimulationError("trace too short to resample")
        summed = self.values[:usable].reshape(-1, k).sum(axis=1)
        return LoadTrace(summed, new_slot_seconds, name=self.name)

    def smoothed(self, window: int) -> "LoadTrace":
        """Centered moving average, used only for display-style outputs."""
        if window < 1:
            raise SimulationError("window must be >= 1")
        if window == 1:
            return self
        kernel = np.ones(window) / window
        smoothed = np.convolve(self.values, kernel, mode="same")
        return LoadTrace(smoothed, self.slot_seconds, name=self.name)

    def split(self, train_slots: int) -> Tuple["LoadTrace", "LoadTrace"]:
        """Split into (train, test) at ``train_slots``."""
        if not 0 < train_slots < len(self):
            raise SimulationError(
                f"train_slots must be in (0, {len(self)}) (got {train_slots})"
            )
        return (
            LoadTrace(self.values[:train_slots].copy(), self.slot_seconds, self.name),
            LoadTrace(self.values[train_slots:].copy(), self.slot_seconds, self.name),
        )

    def concat(self, other: "LoadTrace") -> "LoadTrace":
        if other.slot_seconds != self.slot_seconds:
            raise SimulationError("cannot concat traces with different slots")
        return LoadTrace(
            np.concatenate([self.values, other.values]),
            self.slot_seconds,
            name=self.name,
        )

    def describe(self) -> str:
        """One-line summary used by benches and examples."""
        return (
            f"{self.name}: {len(self)} slots x {self.slot_seconds:.0f}s "
            f"({self.duration_days:.1f} days), mean={self.mean:,.0f}, "
            f"peak={self.peak:,.0f}, trough={self.trough:,.0f}"
        )
