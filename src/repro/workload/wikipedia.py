"""Loader for Wikipedia ``pagecounts-raw`` hourly dump files.

The paper's second workload (Fig. 6) is "Wikipedia page view statistics"
from the hourly ``pagecounts-raw`` dumps [14].  Each dump file covers
one hour, one line per (project, page):

.. code-block:: text

    en Main_Page 242332 4737756101
    de Wikipedia:Hauptseite 48573 974398509

i.e. ``project page_title count_of_views total_bytes``.  The paper sums
per-hour totals for the English (``en``) and German (``de``) editions.
This module parses that format — one file per hour, or a pre-aggregated
"one line per hour" variant — into :class:`~repro.workload.trace.LoadTrace`
objects, so users with the real dumps can run the Figure 6 analysis on
actual data instead of our synthetic equivalent.
"""

from __future__ import annotations

import pathlib
from typing import List, Sequence, TextIO, Union

import numpy as np

from ..errors import SimulationError
from .trace import LoadTrace

PathOrFile = Union[str, pathlib.Path, TextIO]

#: Project codes of the two editions the paper studies.
ENGLISH = "en"
GERMAN = "de"


def parse_pagecounts_hour(source: PathOrFile, project: str) -> int:
    """Sum the view counts of one hourly dump file for ``project``.

    Lines that do not parse (the raw dumps contain occasional junk) are
    skipped, as any real consumer of these dumps must do.
    """
    if not project:
        raise SimulationError("project code must be non-empty")
    owned = isinstance(source, (str, pathlib.Path))
    handle = open(source, "r", encoding="utf-8", errors="replace") if owned else source
    total = 0
    try:
        for line in handle:
            parts = line.split()
            if len(parts) < 3:
                continue
            if parts[0] != project:
                continue
            try:
                total += int(parts[2])
            except ValueError:
                continue
    finally:
        if owned:
            handle.close()
    return total


def load_pagecounts_series(
    hour_files: Sequence[PathOrFile], project: str
) -> LoadTrace:
    """Build an hourly trace from consecutive ``pagecounts`` dump files."""
    if not hour_files:
        raise SimulationError("need at least one hourly dump file")
    values = [parse_pagecounts_hour(f, project) for f in hour_files]
    return LoadTrace(
        np.asarray(values, dtype=float),
        slot_seconds=3600.0,
        name=f"wikipedia-{project}",
    )


def parse_hourly_totals(source: PathOrFile, project: str) -> LoadTrace:
    """Parse a pre-aggregated per-hour totals file.

    Format: one line per hour, ``project total`` or
    ``timestamp project total`` (the timestamp column is ignored; rows
    must already be in chronological order).  Lines for other projects
    are skipped.
    """
    owned = isinstance(source, (str, pathlib.Path))
    handle = open(source, "r", encoding="utf-8") if owned else source
    values: List[float] = []
    try:
        for line in handle:
            parts = line.split()
            if not parts or parts[0].startswith("#"):
                continue
            if len(parts) == 2:
                proj, count = parts
            elif len(parts) >= 3:
                proj, count = parts[1], parts[2]
            else:
                continue
            if proj != project:
                continue
            try:
                values.append(float(count))
            except ValueError:
                raise SimulationError(f"bad count in line {line!r}") from None
    finally:
        if owned:
            handle.close()
    if not values:
        raise SimulationError(
            f"no rows for project {project!r} in the totals file"
        )
    return LoadTrace(
        np.asarray(values), slot_seconds=3600.0, name=f"wikipedia-{project}"
    )
