"""Synthetic workload generators calibrated to the paper's traces.

The real B2W transaction logs and the 2016 Wikipedia dumps are not
redistributable, so this module generates seeded synthetic equivalents
that preserve every property the evaluation depends on:

* **B2W-like** (Fig. 1): strong diurnal cycle with ~10x peak-to-trough,
  evening peak, night trough, weekly seasonality, day-to-day level drift,
  and short-term multiplicative noise.  Optional event calendar layers on
  promotions, load tests, flash spikes, and Black Friday.
* **Wikipedia-like** (Fig. 6): hourly page-view series; the English
  edition is large and strongly periodic, the German edition smaller,
  noisier, and less predictable.

All generators take an explicit seed and are deterministic.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from ..errors import SimulationError
from . import memo
from .events import EventCalendar, retail_season_calendar
from .trace import LoadTrace


def _rng(seed) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def diurnal_profile(slots_per_day: int, trough_ratio: float) -> np.ndarray:
    """Smooth daily shape in ``[trough_ratio, 1]`` with an evening peak.

    Built from two Fourier harmonics so mornings rise faster than nights
    fall, like Figure 1: minimum around 04:00, maximum around 16:00-21:00.
    """
    if not 0 < trough_ratio <= 1:
        raise SimulationError("trough_ratio must be in (0, 1]")
    hours = np.arange(slots_per_day) * 24.0 / slots_per_day
    # Primary daily wave (min near 4 am) plus a second harmonic that
    # broadens the daytime plateau.
    wave = (
        0.5 * (1.0 - np.cos(2.0 * np.pi * (hours - 4.0) / 24.0))
        + 0.12 * np.sin(4.0 * np.pi * (hours - 7.0) / 24.0)
    )
    wave -= wave.min()
    wave /= wave.max()
    return trough_ratio + (1.0 - trough_ratio) * wave


#: Weekly multipliers (Mon..Sun): slightly depressed weekends for retail.
RETAIL_WEEKLY_PATTERN = (1.00, 1.03, 1.05, 1.04, 1.02, 0.90, 0.82)


def _calendar_key(calendar: Optional[EventCalendar]):
    """A hashable key for an event calendar, or None when the calendar
    cannot be keyed (memoisation is then bypassed)."""
    if calendar is None:
        return ()
    try:
        return tuple(dataclasses.astuple(event) for event in calendar)
    except (TypeError, ValueError):
        return None


def b2w_like_trace(
    n_days: int,
    slot_seconds: float = 60.0,
    seed: int = 7,
    base_level: float = 12_000.0,
    peak_to_trough: float = 10.0,
    weekly_pattern=RETAIL_WEEKLY_PATTERN,
    noise_sigma: float = 0.035,
    drift_sigma: float = 0.05,
    wobble_sigma: float = 0.10,
    wobble_hours: float = 3.0,
    calendar: Optional[EventCalendar] = None,
    name: str = "b2w-like",
) -> LoadTrace:
    """Synthetic B2W shopping-cart/checkout load (requests per slot).

    Deterministic for a given argument tuple, so repeated calls with an
    integer ``seed`` are served from the per-process trace memo
    (:mod:`repro.workload.memo`); traces are immutable and safe to
    share.  Calls with a ``Generator`` seed (already-advanced stream)
    bypass the memo.

    Parameters
    ----------
    n_days:
        length of the trace in days.
    slot_seconds:
        slot length; 60 s matches the paper's per-minute measurements.
    base_level:
        approximate daily peak in requests per minute (Fig. 1 peaks
        around 20-25k requests/min; the default leaves room for events).
    peak_to_trough:
        target ratio between daily peak and nightly trough (~10, Fig. 1).
    weekly_pattern:
        length-7 multipliers, Monday first.
    noise_sigma:
        sigma of the per-slot lognormal noise (short-term variability).
    drift_sigma:
        sigma of the AR(1) day-level drift (day-to-day variability).
    wobble_sigma, wobble_hours:
        stationary sigma and correlation time of an Ornstein-Uhlenbeck
        *intraday wobble*: hour-scale deviations (weather, news, small
        campaigns) that no time-of-day model can predict.  This is what
        bounds SPAR's accuracy at ~10% MRE on the real B2W trace
        (Fig. 5b); set it to 0 for a fully periodic trace.
    calendar:
        optional :class:`EventCalendar`; pass the result of
        :func:`~repro.workload.events.retail_season_calendar` for the
        4.5-month evaluation window.
    """
    if n_days < 1:
        raise SimulationError("n_days must be >= 1")
    if len(weekly_pattern) != 7:
        raise SimulationError("weekly_pattern must have exactly 7 entries")
    memo_key = None
    if isinstance(seed, (int, np.integer)):
        calendar_key = _calendar_key(calendar)
        if calendar_key is not None:
            memo_key = (
                "b2w", int(n_days), float(slot_seconds), int(seed),
                float(base_level), float(peak_to_trough),
                tuple(float(w) for w in weekly_pattern),
                float(noise_sigma), float(drift_sigma),
                float(wobble_sigma), float(wobble_hours),
                calendar_key, str(name),
            )
            cached = memo.lookup(memo_key)
            if cached is not None:
                return cached
    rng = _rng(seed)
    slots_per_day = int(round(86_400.0 / slot_seconds))
    profile = diurnal_profile(slots_per_day, trough_ratio=1.0 / peak_to_trough)

    total = n_days * slots_per_day
    values = np.empty(total)
    day_level = 1.0
    for day in range(n_days):
        # AR(1) drift keeps consecutive days correlated but wandering.
        day_level = 1.0 + 0.7 * (day_level - 1.0) + rng.normal(0.0, drift_sigma)
        day_level = max(0.75, min(1.3, day_level))
        weekly = weekly_pattern[day % 7]
        lo = day * slots_per_day
        values[lo : lo + slots_per_day] = base_level * day_level * weekly * profile

    # Short-term multiplicative noise, slightly autocorrelated so the
    # trace wiggles like real traffic instead of white noise.
    white = rng.normal(0.0, noise_sigma, total)
    smooth = np.convolve(white, np.ones(5) / 5.0, mode="same")
    values *= np.exp(smooth)

    # Hour-scale unpredictable wobble (OU process in log space).
    if wobble_sigma > 0 and wobble_hours > 0:
        tau_slots = wobble_hours * 3600.0 / slot_seconds
        decay = np.exp(-1.0 / tau_slots)
        innovation = wobble_sigma * np.sqrt(1.0 - decay * decay)
        wobble = np.empty(total)
        state = rng.normal(0.0, wobble_sigma)
        for i in range(total):
            state = state * decay + rng.normal(0.0, innovation)
            wobble[i] = state
        values *= np.exp(wobble)

    if calendar is not None:
        values = calendar.apply(values)
    trace = LoadTrace(values, slot_seconds, name=name)
    if memo_key is not None:
        memo.insert(memo_key, trace)
    return trace


def b2w_evaluation_trace(
    n_days: int = 135,
    slot_seconds: float = 300.0,
    seed: int = 7,
    include_black_friday: bool = True,
    include_unexpected_spike: bool = True,
) -> LoadTrace:
    """The 4.5-month August-December window used in Section 8.3.

    Defaults to 5-minute slots ("the predictions are at the granularity
    of five minutes") and includes the full retail event calendar.
    """
    rng = _rng(seed)
    slots_per_day = int(round(86_400.0 / slot_seconds))
    calendar = retail_season_calendar(
        slots_per_day=slots_per_day,
        n_days=n_days,
        rng=rng,
        black_friday_day=116 if include_black_friday else -1,
        include_unexpected_spike=include_unexpected_spike,
    )
    return b2w_like_trace(
        n_days=n_days,
        slot_seconds=slot_seconds,
        seed=rng,
        calendar=calendar,
        name="b2w-aug-dec",
    )


def wikipedia_like_trace(
    n_days: int,
    language: str = "en",
    seed: int = 11,
    name: Optional[str] = None,
) -> LoadTrace:
    """Synthetic hourly Wikipedia page-view series (Fig. 6).

    ``language="en"``: ~8M requests/hour peak, strong and clean daily
    cycle.  ``language="de"``: ~2M peak, weaker periodic component and
    noticeably more noise (the paper calls it "less predictable").
    """
    if language not in ("en", "de"):
        raise SimulationError(f"language must be 'en' or 'de' (got {language!r})")
    rng = _rng(seed)
    if language == "en":
        # Fig. 6a: ~4M..10M requests/hour, clean cycle.
        base, trough_ratio, noise_sigma, drift_sigma = 9.0e6, 0.42, 0.025, 0.02
    else:
        # Fig. 6a: ~0.5M..2.2M requests/hour, noisier cycle.
        base, trough_ratio, noise_sigma, drift_sigma = 2.2e6, 0.25, 0.07, 0.045
    trace = b2w_like_trace(
        n_days=n_days,
        slot_seconds=3600.0,
        seed=rng,
        base_level=base,
        peak_to_trough=1.0 / trough_ratio,
        weekly_pattern=(1.0, 1.0, 0.99, 0.99, 0.97, 1.02, 1.05),
        noise_sigma=noise_sigma,
        drift_sigma=drift_sigma,
        name=name or f"wikipedia-{language}",
    )
    return trace


def sine_trace(
    n_days: int,
    slot_seconds: float = 60.0,
    low: float = 1_000.0,
    high: float = 10_000.0,
    name: str = "sine",
) -> LoadTrace:
    """Noise-free sinusoidal demand, used by Figure 2 and in unit tests."""
    if high < low or low < 0:
        raise SimulationError("need 0 <= low <= high")
    slots_per_day = int(round(86_400.0 / slot_seconds))
    total = n_days * slots_per_day
    x = np.arange(total) * 2.0 * np.pi / slots_per_day
    values = low + (high - low) * 0.5 * (1.0 - np.cos(x))
    return LoadTrace(values, slot_seconds, name=name)


def step_trace(
    levels,
    slots_per_level: int,
    slot_seconds: float = 60.0,
    name: str = "steps",
) -> LoadTrace:
    """Piecewise-constant load, handy for planner unit tests."""
    if slots_per_level < 1:
        raise SimulationError("slots_per_level must be >= 1")
    values = np.repeat(np.asarray(levels, dtype=float), slots_per_level)
    return LoadTrace(values, slot_seconds, name=name)


def flash_crowd_trace(
    n_days: int,
    spike_day: float,
    spike_magnitude: float = 2.0,
    slot_seconds: float = 60.0,
    seed: int = 23,
    name: str = "flash-crowd",
) -> LoadTrace:
    """A B2W-like day pattern with one sharp unexpected spike (Fig. 11)."""
    if not 0 <= spike_day < n_days:
        raise SimulationError("spike_day must fall inside the trace")
    slots_per_day = int(round(86_400.0 / slot_seconds))
    from .events import LoadEvent

    calendar = EventCalendar(
        [
            LoadEvent(
                start_slot=int(spike_day * slots_per_day),
                duration_slots=max(2, int(0.2 * slots_per_day)),
                magnitude=spike_magnitude,
                shape="spike",
                label="unexpected-spike",
            )
        ]
    )
    return b2w_like_trace(
        n_days=n_days,
        slot_seconds=slot_seconds,
        seed=seed,
        calendar=calendar,
        name=name,
    )
