"""Load events layered on top of the periodic base trace.

The paper's 4.5-month B2W window (August to mid-December 2016) contains
"Black Friday as well as several other periods of increased load (e.g.,
due to periodic promotions or load testing)".  We model each of these as a
:class:`LoadEvent` — a multiplicative disturbance with one of three
shapes — collected in an :class:`EventCalendar` that the generators apply
to a base series.

Shapes
------
``ramp``
    linear rise to the peak multiplier and symmetric fall (promotions,
    flash crowds);
``rect``
    constant multiplier for the whole duration (load tests);
``spike``
    near-instant jump followed by an exponential-style decay (the
    unexpected September spike of Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from ..errors import SimulationError

VALID_SHAPES = ("ramp", "rect", "spike")


@dataclass(frozen=True)
class LoadEvent:
    """One multiplicative load disturbance.

    Attributes
    ----------
    start_slot:
        first affected slot.
    duration_slots:
        number of affected slots (>= 1).
    magnitude:
        peak multiplier applied on top of the base load (1.0 = no-op;
        2.0 doubles the load at the event's peak).
    shape:
        one of ``ramp``, ``rect``, ``spike``.
    label:
        human-readable tag ("promo", "black-friday", ...).
    """

    start_slot: int
    duration_slots: int
    magnitude: float
    shape: str = "ramp"
    label: str = "event"

    def __post_init__(self) -> None:
        if self.start_slot < 0:
            raise SimulationError("event start_slot must be >= 0")
        if self.duration_slots < 1:
            raise SimulationError("event duration_slots must be >= 1")
        if self.magnitude < 1.0:
            raise SimulationError(
                f"event magnitude must be >= 1.0 (got {self.magnitude}); "
                "events only add load"
            )
        if self.shape not in VALID_SHAPES:
            raise SimulationError(
                f"unknown event shape {self.shape!r}; expected one of {VALID_SHAPES}"
            )

    @property
    def end_slot(self) -> int:
        return self.start_slot + self.duration_slots

    def multipliers(self) -> np.ndarray:
        """Per-slot multiplier profile of length ``duration_slots``."""
        n = self.duration_slots
        extra = self.magnitude - 1.0
        x = np.linspace(0.0, 1.0, n) if n > 1 else np.zeros(1)
        if self.shape == "rect":
            profile = np.ones(n)
        elif self.shape == "ramp":
            # Triangular: up to the peak at the midpoint, then back down.
            profile = 1.0 - np.abs(2.0 * x - 1.0)
            if n == 1:
                profile = np.ones(1)
        else:  # spike: sharp rise within the first ~10%, exponential decay
            rise = max(1, n // 10)
            profile = np.empty(n)
            profile[:rise] = np.linspace(0.3, 1.0, rise)
            decay = np.exp(-3.0 * np.linspace(0.0, 1.0, n - rise)) if n > rise else []
            profile[rise:] = decay
        return 1.0 + extra * profile


class EventCalendar:
    """An ordered collection of :class:`LoadEvent` applied multiplicatively."""

    def __init__(self, events: Iterable[LoadEvent] = ()):
        self._events: List[LoadEvent] = sorted(events, key=lambda e: e.start_slot)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    @property
    def events(self) -> Sequence[LoadEvent]:
        return tuple(self._events)

    def add(self, event: LoadEvent) -> "EventCalendar":
        self._events.append(event)
        self._events.sort(key=lambda e: e.start_slot)
        return self

    def apply(self, base: np.ndarray) -> np.ndarray:
        """Return ``base`` with every event's multiplier profile applied."""
        out = np.asarray(base, dtype=float).copy()
        for event in self._events:
            lo = event.start_slot
            hi = min(event.end_slot, out.size)
            if lo >= out.size:
                continue
            out[lo:hi] *= event.multipliers()[: hi - lo]
        return out

    def labels_in(self, lo_slot: int, hi_slot: int) -> List[str]:
        """Labels of events overlapping ``[lo_slot, hi_slot)`` (reporting)."""
        return [
            e.label
            for e in self._events
            if e.start_slot < hi_slot and e.end_slot > lo_slot
        ]


def retail_season_calendar(
    slots_per_day: int,
    n_days: int,
    rng: np.random.Generator,
    black_friday_day: int = 116,
    include_unexpected_spike: bool = True,
) -> EventCalendar:
    """The event mix of B2W's August-December window (Sec. 8.3, Fig. 13).

    * small promotions every ~2 weeks (ramp, 1.2-1.6x, a few hours);
    * occasional internal load tests (rect, ~1.3x, 1-2 hours);
    * one unexpected September flash spike (Fig. 11), ~2x within minutes;
    * Black Friday: a sustained ~2.2x surge starting the prior evening
      (day 116 after Aug 1 = Nov 25 2016, matching Fig. 13's hour ~2800).
    """
    events: List[LoadEvent] = []
    day = 10
    while day < n_days - 2:
        start = day * slots_per_day + int(0.55 * slots_per_day)
        events.append(
            LoadEvent(
                start_slot=start,
                duration_slots=max(2, int(0.18 * slots_per_day)),
                magnitude=float(rng.uniform(1.2, 1.6)),
                shape="ramp",
                label="promo",
            )
        )
        day += int(rng.integers(12, 18))

    for test_day in range(20, n_days - 5, 30):
        start = test_day * slots_per_day + int(0.15 * slots_per_day)
        events.append(
            LoadEvent(
                start_slot=start,
                duration_slots=max(1, int(0.07 * slots_per_day)),
                magnitude=1.3,
                shape="rect",
                label="load-test",
            )
        )

    if include_unexpected_spike and n_days > 45:
        # A September day (~day 40 after Aug 1), mid-afternoon flash crowd.
        start = 40 * slots_per_day + int(0.62 * slots_per_day)
        events.append(
            LoadEvent(
                start_slot=start,
                duration_slots=max(2, int(0.25 * slots_per_day)),
                magnitude=2.0,
                shape="spike",
                label="unexpected-spike",
            )
        )

    if 0 <= black_friday_day < n_days:
        start = black_friday_day * slots_per_day - int(0.2 * slots_per_day)
        events.append(
            LoadEvent(
                start_slot=max(0, start),
                duration_slots=int(1.5 * slots_per_day),
                magnitude=2.2,
                shape="ramp",
                label="black-friday",
            )
        )
    return EventCalendar(events)
