"""Drift workloads: regime changes that break fixed-period forecasting.

The paper's traces are *stationary-periodic*: tomorrow looks like
yesterday, so SPAR's fixed-period regression wins.  The predictor-zoo
shootout needs the opposite — workloads whose generating process changes
mid-trace:

* :func:`drifting_period_trace` — the daily cycle slowly stretches, so a
  model locked to ``T`` slots drifts out of phase with reality;
* :func:`growing_amplitude_trace` — the diurnal swing (and peak) grows
  steadily, so history-window averages systematically under-forecast;
* :func:`novel_spike_trace` — sharp load spikes appear only *after* the
  training window, so nothing in the fitted model anticipates them;
* :func:`level_shift_trace` — the whole level steps (e.g. a marketing
  launch multiplies traffic), stranding models fitted pre-shift.

All generators are deterministic for a given argument tuple, share the
:func:`~repro.workload.generators.diurnal_profile` day shape, default to
hourly slots (seconds-fast capacity sims), and keep an initial
*quiet* prefix regime-change-free so experiments can train on it.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError
from .generators import _rng, diurnal_profile
from .trace import LoadTrace


def _slots_per_day(slot_seconds: float) -> int:
    slots = int(round(86_400.0 / slot_seconds))
    if slots < 2:
        raise SimulationError(
            f"slot_seconds={slot_seconds} leaves fewer than 2 slots per day"
        )
    return slots


def _noise(values: np.ndarray, noise_sigma: float, rng) -> np.ndarray:
    if noise_sigma > 0:
        values = values * np.exp(rng.normal(0.0, noise_sigma, values.size))
    return values


def drifting_period_trace(
    n_days: int = 14,
    slot_seconds: float = 3600.0,
    base_level: float = 8_000.0,
    peak_to_trough: float = 6.0,
    period_drift: float = 0.35,
    quiet_days: int = 7,
    noise_sigma: float = 0.02,
    seed: int = 31,
    name: str = "period-drift",
) -> LoadTrace:
    """Diurnal load whose cycle *stretches* after the quiet prefix.

    During the first ``quiet_days`` the instantaneous period is exactly
    one day; afterwards it lengthens linearly until it is
    ``1 + period_drift`` days long at the end of the trace.  A fixed-T
    periodic model keeps forecasting yesterday's phase and slides
    steadily out of alignment.
    """
    if n_days < 1 or not 0 <= quiet_days <= n_days:
        raise SimulationError("need 1 <= n_days and 0 <= quiet_days <= n_days")
    if period_drift < 0:
        raise SimulationError("period_drift must be >= 0")
    rng = _rng(seed)
    slots_per_day = _slots_per_day(slot_seconds)
    profile = diurnal_profile(slots_per_day, 1.0 / peak_to_trough)
    total = n_days * slots_per_day
    quiet = quiet_days * slots_per_day
    # Instantaneous frequency in cycles/slot: 1/P while quiet, then the
    # period dilates linearly to (1 + drift) * P.
    t = np.arange(total, dtype=float)
    dilation = np.ones(total)
    if total > quiet:
        progress = (t[quiet:] - quiet) / max(total - quiet, 1)
        dilation[quiet:] = 1.0 + period_drift * progress
    phase = np.cumsum(1.0 / (slots_per_day * dilation))
    phase -= phase[0]
    # Sample the day profile at the (fractional, wrapped) phase position.
    pos = (phase % 1.0) * slots_per_day
    grid = np.arange(slots_per_day + 1, dtype=float)
    wrapped = np.concatenate([profile, profile[:1]])
    values = base_level * np.interp(pos, grid, wrapped)
    return LoadTrace(_noise(values, noise_sigma, rng), slot_seconds, name=name)


def growing_amplitude_trace(
    n_days: int = 14,
    slot_seconds: float = 3600.0,
    base_level: float = 8_000.0,
    peak_to_trough: float = 6.0,
    growth: float = 0.8,
    quiet_days: int = 7,
    noise_sigma: float = 0.02,
    seed: int = 37,
    name: str = "amp-growth",
) -> LoadTrace:
    """Diurnal load whose daily swing grows after the quiet prefix.

    The deviation from the daily mean is scaled by a factor ramping from
    1 to ``1 + growth``, so peaks rise while the mean level holds —
    models calibrated on the quiet prefix under-forecast every
    subsequent peak a little more.
    """
    if n_days < 1 or not 0 <= quiet_days <= n_days:
        raise SimulationError("need 1 <= n_days and 0 <= quiet_days <= n_days")
    if growth < 0:
        raise SimulationError("growth must be >= 0")
    rng = _rng(seed)
    slots_per_day = _slots_per_day(slot_seconds)
    profile = diurnal_profile(slots_per_day, 1.0 / peak_to_trough)
    total = n_days * slots_per_day
    quiet = quiet_days * slots_per_day
    t = np.arange(total, dtype=float)
    envelope = np.ones(total)
    if total > quiet:
        envelope[quiet:] = 1.0 + growth * (t[quiet:] - quiet) / max(
            total - quiet, 1
        )
    shape = np.tile(profile, n_days)
    mean = float(profile.mean())
    values = base_level * np.clip(mean + (shape - mean) * envelope, 0.02, None)
    return LoadTrace(_noise(values, noise_sigma, rng), slot_seconds, name=name)


def novel_spike_trace(
    n_days: int = 14,
    slot_seconds: float = 3600.0,
    base_level: float = 8_000.0,
    peak_to_trough: float = 6.0,
    n_spikes: int = 3,
    spike_magnitude: float = 2.2,
    spike_hours: float = 4.0,
    quiet_days: int = 7,
    noise_sigma: float = 0.02,
    seed: int = 41,
    name: str = "novel-spike",
) -> LoadTrace:
    """Diurnal load with sharp spikes that only start after the prefix.

    ``n_spikes`` multiplicative spikes (instant onset, exponential
    decay over ``spike_hours``) land at seeded-random slots past
    ``quiet_days`` — a flash-crowd pattern no model fitted on the quiet
    prefix has ever seen.
    """
    if n_days < 1 or not 0 <= quiet_days < n_days:
        raise SimulationError("need 1 <= n_days and 0 <= quiet_days < n_days")
    if n_spikes < 1 or spike_magnitude <= 1 or spike_hours <= 0:
        raise SimulationError(
            "need n_spikes >= 1, spike_magnitude > 1 and spike_hours > 0"
        )
    rng = _rng(seed)
    slots_per_day = _slots_per_day(slot_seconds)
    profile = diurnal_profile(slots_per_day, 1.0 / peak_to_trough)
    total = n_days * slots_per_day
    quiet = quiet_days * slots_per_day
    values = base_level * np.tile(profile, n_days)
    decay_slots = max(spike_hours * 3600.0 / slot_seconds, 1.0)
    starts = np.sort(rng.integers(quiet, total, size=n_spikes))
    multiplier = np.ones(total)
    for start in starts:
        length = total - int(start)
        ramp = (spike_magnitude - 1.0) * np.exp(
            -np.arange(length) / decay_slots
        )
        multiplier[start:] = np.maximum(multiplier[start:], 1.0 + ramp)
    values *= multiplier
    return LoadTrace(_noise(values, noise_sigma, rng), slot_seconds, name=name)


def level_shift_trace(
    n_days: int = 14,
    slot_seconds: float = 3600.0,
    base_level: float = 8_000.0,
    peak_to_trough: float = 6.0,
    shift_factor: float = 2.4,
    shift_day: int = 9,
    ramp_hours: float = 6.0,
    noise_sigma: float = 0.02,
    seed: int = 43,
    name: str = "level-shift",
) -> LoadTrace:
    """Diurnal load whose level steps by ``shift_factor`` mid-trace.

    The multiplier ramps linearly over ``ramp_hours`` starting at
    ``shift_day`` and then stays — the marketing-launch scenario.
    Models fitted before the shift keep forecasting the old level.
    """
    if n_days < 1 or not 0 <= shift_day < n_days:
        raise SimulationError("need 1 <= n_days and 0 <= shift_day < n_days")
    if shift_factor <= 0:
        raise SimulationError("shift_factor must be > 0")
    rng = _rng(seed)
    slots_per_day = _slots_per_day(slot_seconds)
    profile = diurnal_profile(slots_per_day, 1.0 / peak_to_trough)
    total = n_days * slots_per_day
    values = base_level * np.tile(profile, n_days)
    start = shift_day * slots_per_day
    ramp_slots = max(int(round(ramp_hours * 3600.0 / slot_seconds)), 1)
    multiplier = np.ones(total)
    ramp_end = min(start + ramp_slots, total)
    multiplier[start:ramp_end] = np.linspace(
        1.0, shift_factor, ramp_end - start, endpoint=False
    )
    multiplier[ramp_end:] = shift_factor
    values *= multiplier
    return LoadTrace(_noise(values, noise_sigma, rng), slot_seconds, name=name)
