"""Trace serialisation: CSV read/write for load traces.

Real deployments feed P-Store measured load histories; these helpers
let users round-trip traces through a simple, diff-friendly CSV format:

.. code-block:: text

    # name: b2w-shopping-cart
    # slot_seconds: 60
    slot,value
    0,18234
    1,18790
    ...

Only ``value`` matters for reconstruction; the ``slot`` column makes the
files human-auditable and guards against accidental reordering.
"""

from __future__ import annotations

import csv
import io
import pathlib
from typing import List, TextIO, Union

import numpy as np

from ..errors import SimulationError
from .trace import LoadTrace

PathOrFile = Union[str, pathlib.Path, TextIO]


def _open_for(target: PathOrFile, mode: str):
    if isinstance(target, (str, pathlib.Path)):
        return open(target, mode, newline=""), True
    return target, False


def write_trace_csv(trace: LoadTrace, target: PathOrFile) -> None:
    """Write a trace to CSV (with name/slot metadata in header comments)."""
    handle, owned = _open_for(target, "w")
    try:
        handle.write(f"# name: {trace.name}\n")
        handle.write(f"# slot_seconds: {trace.slot_seconds:g}\n")
        writer = csv.writer(handle)
        writer.writerow(["slot", "value"])
        for slot, value in enumerate(trace.values):
            writer.writerow([slot, f"{value:.6g}"])
    finally:
        if owned:
            handle.close()


def read_trace_csv(source: PathOrFile) -> LoadTrace:
    """Read a trace written by :func:`write_trace_csv`.

    Tolerates plain CSVs too: missing metadata defaults to 60-second
    slots and the name "trace"; a missing ``slot`` column is accepted as
    a single ``value`` column.
    """
    handle, owned = _open_for(source, "r")
    try:
        name = "trace"
        slot_seconds = 60.0
        rows: List[List[str]] = []
        for raw in handle:
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                meta = line.lstrip("#").strip()
                if meta.startswith("name:"):
                    name = meta.split(":", 1)[1].strip()
                elif meta.startswith("slot_seconds:"):
                    try:
                        slot_seconds = float(meta.split(":", 1)[1])
                    except ValueError as exc:
                        raise SimulationError(
                            f"bad slot_seconds metadata: {meta!r}"
                        ) from exc
                continue
            rows.append(next(csv.reader([line])))
    finally:
        if owned:
            handle.close()

    if not rows:
        raise SimulationError("trace CSV contains no data rows")
    header = [cell.strip().lower() for cell in rows[0]]
    data_rows = rows[1:] if "value" in header else rows
    value_idx = header.index("value") if "value" in header else len(rows[0]) - 1
    expected_slot = 0
    slot_idx = header.index("slot") if "slot" in header else None

    values: List[float] = []
    for row in data_rows:
        if slot_idx is not None:
            try:
                slot = int(row[slot_idx])
            except (ValueError, IndexError) as exc:
                raise SimulationError(f"bad slot cell in row {row!r}") from exc
            if slot != expected_slot:
                raise SimulationError(
                    f"trace rows out of order: expected slot {expected_slot}, "
                    f"got {slot}"
                )
            expected_slot += 1
        try:
            values.append(float(row[value_idx]))
        except (ValueError, IndexError) as exc:
            raise SimulationError(f"bad value cell in row {row!r}") from exc
    return LoadTrace(np.asarray(values), slot_seconds, name=name)


def trace_to_csv_string(trace: LoadTrace) -> str:
    """Serialise to an in-memory CSV string."""
    buffer = io.StringIO()
    write_trace_csv(trace, buffer)
    return buffer.getvalue()


def read_trace_csv_cached(path) -> LoadTrace:
    """:func:`read_trace_csv` through the per-process trace memo.

    Keyed on ``(absolute path, mtime_ns, size)``, so an edited file is
    always re-parsed while repeat loads — one per sweep cell, typically —
    share the immutable parsed trace.  Accepts paths only (file objects
    cannot be keyed); reuse counts surface via
    :func:`repro.workload.memo.stats`.
    """
    from . import memo

    key = ("csv",) + memo.file_key(path)
    return memo.memoized(key, lambda: read_trace_csv(path))


def trace_from_csv_string(text: str) -> LoadTrace:
    """Deserialise from an in-memory CSV string."""
    return read_trace_csv(io.StringIO(text))
