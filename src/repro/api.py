"""Stable high-level API for the P-Store reproduction.

Four entry points cover the common workflows without touching the
internal packages (see ``docs/API.md``):

>>> import repro
>>> result = repro.run(strategy="static:6", days=2)      # one simulation
>>> report = repro.sweep("smoke", jobs=4)                # a cached grid
>>> trace = repro.load_trace("trace.csv")                # trace I/O
>>> spar = repro.fit_predictor("spar", series, period=288)

Results are frozen dataclasses with ``.to_json()`` / ``.summary()``;
everything the CLI prints is derived from them.  The heavyweight result
objects (full per-slot series) remain reachable through ``.detail`` for
callers that need more than the headline numbers.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from .config import PStoreConfig, default_config
from .elasticity import StrategySpec
from .errors import ConfigurationError
from .prediction import Predictor, get_predictor_spec, registered_predictors
from .runner import RunSpec
from .workload import LoadTrace, b2w_like_trace

#: Training window (days) used by :func:`run`, matching the paper.
TRAIN_DAYS = 28

#: Patience the CLI's reactive baseline has always used.
REACTIVE_PATIENCE = 12


# ----------------------------------------------------------------------
# run()
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RunResult:
    """Headline numbers of one capacity simulation."""

    strategy: str                 # canonical spec, e.g. "static:machines=6"
    strategy_name: str            # the strategy's display name, "static-6"
    days: int
    seed: int
    slots: int
    cost_machine_slots: float
    average_machines: float
    pct_time_insufficient: float
    moves_started: int
    emergencies: int
    #: The full :class:`~repro.sim.CapacitySimResult` (per-slot series).
    detail: Any = field(default=None, repr=False, compare=False)

    def to_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "strategy_name": self.strategy_name,
            "days": self.days,
            "seed": self.seed,
            "slots": self.slots,
            "cost_machine_slots": self.cost_machine_slots,
            "average_machines": self.average_machines,
            "pct_time_insufficient": self.pct_time_insufficient,
            "moves_started": self.moves_started,
            "emergencies": self.emergencies,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    def summary(self) -> str:
        return (
            f"{self.strategy_name}: avg machines {self.average_machines:.2f}, "
            f"insufficient {self.pct_time_insufficient:.2f}% of time, "
            f"{self.moves_started} moves ({self.emergencies} emergency) "
            f"over {self.days} day(s)"
        )


def run(
    config: Optional[PStoreConfig] = None,
    *,
    strategy: Union[str, StrategySpec] = "p-store",
    days: int = 14,
    seed: int = 7,
    peak_tps: float = 1450.0,
    trace: Optional[LoadTrace] = None,
) -> RunResult:
    """Capacity-simulate one provisioning strategy over a B2W-like trace.

    Mirrors ``pstore simulate``: four weeks of training data precede the
    ``days``-long evaluation window; ``p-store`` specs get a SPAR model
    fitted on the training window, and ``predictive:<name>`` specs get
    the named registry predictor (``predictive:oracle`` is fed the true
    evaluation series).  ``trace``, when given, must cover
    ``TRAIN_DAYS + days`` at 300 s slots and replaces the generator.
    """
    from .sim import run_capacity_simulation

    spec = (
        strategy
        if isinstance(strategy, StrategySpec)
        else StrategySpec.parse(strategy)
    )
    config = (config or default_config()).with_interval(300.0)
    if trace is None:
        trace = b2w_like_trace(
            n_days=TRAIN_DAYS + days,
            slot_seconds=300.0,
            seed=seed,
            base_level=peak_tps * 300.0,
        )
    train = trace.slice_days(0, TRAIN_DAYS).as_rate_per_second()
    evaluation = trace.slice_days(TRAIN_DAYS, days)

    predictor = None
    history: list = []
    if spec.needs_predictor:
        pspec = get_predictor_spec(spec.predictor_name)
        if pspec.needs_truth:
            predictor = pspec.factory(
                np.concatenate([train, evaluation.as_rate_per_second()])
            )
        else:
            kwargs = {"period": 288} if pspec.accepts("period") else {}
            predictor = pspec.build(**kwargs).fit(train)
        history = [float(v) for v in train]
    if spec.kind == "reactive" and spec.param("patience") is None:
        spec = StrategySpec(
            kind="reactive",
            params=spec.params + (("patience", REACTIVE_PATIENCE),),
        )
    built = spec.build(config, predictor=predictor, slots_per_day=288)
    initial = (
        int(spec.param("machines"))
        if spec.kind == "static"
        else max(
            1,
            math.ceil(evaluation.as_rate_per_second()[0] * 1.3 / config.q),
        )
    )
    result = run_capacity_simulation(
        evaluation, built, config, initial, history_seed=history
    )
    return RunResult(
        strategy=spec.canonical(),
        strategy_name=result.strategy_name,
        days=days,
        seed=seed,
        slots=result.n_slots,
        cost_machine_slots=result.cost_machine_slots,
        average_machines=result.average_machines,
        pct_time_insufficient=result.pct_time_insufficient,
        moves_started=result.moves_started,
        emergencies=result.emergencies,
        detail=result,
    )


# ----------------------------------------------------------------------
# sweep()
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SweepResult:
    """Outcome of one (possibly cached, possibly parallel) sweep."""

    experiment: str
    config_hash: str
    result_hash: str
    jobs: int
    hits: int
    executed: int
    elapsed_seconds: float
    #: cell label -> JSON payload.
    payloads: Mapping[str, Any]
    #: Backend the dirty cells ran under (serial/process/tensor).
    backend: str = "serial"
    #: The full :class:`~repro.runner.SweepReport`.
    detail: Any = field(default=None, repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.payloads)

    def to_dict(self) -> dict:
        return {
            "experiment": self.experiment,
            "config_hash": self.config_hash,
            "result_hash": self.result_hash,
            "jobs": self.jobs,
            "backend": self.backend,
            "hits": self.hits,
            "executed": self.executed,
            "elapsed_seconds": self.elapsed_seconds,
            "payloads": dict(self.payloads),
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    def summary(self) -> str:
        bits = [
            f"{self.experiment}: {len(self.payloads)} cells, {self.hits} "
            f"cached, {self.executed} executed in "
            f"{self.elapsed_seconds:.1f}s (jobs={self.jobs}, "
            f"backend={self.backend})"
        ]
        report = self.detail
        cache = getattr(report, "cache_stats", None)
        if cache:
            bits.append(
                f"cache {cache.get('hits', 0)}h/{cache.get('misses', 0)}m/"
                f"{cache.get('corrupt', 0)}x"
            )
        trace = getattr(report, "trace_reuse", None) or {}
        if trace.get("hits"):
            bits.append(f"trace reuse {trace['hits']}")
        tensor = getattr(report, "tensor", None) or {}
        if tensor.get("tensorized"):
            bits.append(
                f"tensor {tensor['tensorized']} cells "
                f"({tensor.get('evictions', 0)} evictions)"
            )
        return ", ".join(bits) + f", result {self.result_hash[:12]}"


def sweep(
    grid: Union[str, Sequence[RunSpec]],
    *,
    config: Optional[PStoreConfig] = None,
    jobs: int = 1,
    cache_dir: Union[str, None] = None,
    force: bool = False,
    record_events: bool = False,
    grid_options: Optional[Dict[str, Any]] = None,
    backend: str = "auto",
) -> SweepResult:
    """Execute an experiment's cell grid through the cached executor.

    ``grid`` is an experiment name (its registered grid is used,
    parameterised by ``grid_options``) or an explicit list of
    :class:`~repro.runner.RunSpec` cells.  Cells already in the cache
    under the active config are served from disk; set ``force=True`` to
    re-execute everything.  ``backend`` selects how dirty cells run
    (``auto``/``serial``/``process``/``tensor``); ``auto`` batches the
    whole grid through the tensor engine when every cell supports it.
    """
    from .experiments.registry import get_experiment
    from .runner import ResultCache, SweepExecutor
    from .runner.cache import default_cache_root

    if isinstance(grid, str):
        specs = get_experiment(grid).make_grid(**(grid_options or {}))
        name = grid
    else:
        specs = list(grid)
        if not specs:
            raise ConfigurationError("sweep grid is empty")
        name = "+".join(sorted({s.experiment for s in specs}))
    cache = ResultCache(cache_dir if cache_dir else default_cache_root())
    executor = SweepExecutor(
        config or default_config(),
        cache,
        jobs=jobs,
        record_events=record_events,
        backend=backend,
    )
    report = executor.run(specs, force=force)
    payloads = {cell.spec.label: cell.payload for cell in report.cells}
    return SweepResult(
        experiment=name,
        config_hash=report.config_hash,
        result_hash=report.result_hash,
        jobs=report.jobs,
        hits=report.hits,
        executed=report.executed,
        elapsed_seconds=report.elapsed_seconds,
        payloads=payloads,
        backend=report.backend,
        detail=report,
    )


# ----------------------------------------------------------------------
# load_trace() / fit_predictor()
# ----------------------------------------------------------------------


def load_trace(path) -> LoadTrace:
    """Read a load trace from the CSV format ``pstore generate`` writes.

    Served through the per-process trace memo (keyed on path + mtime +
    size): traces are immutable, so repeat loads of the same unchanged
    file share one parsed object.
    """
    from .workload.io import read_trace_csv_cached

    return read_trace_csv_cached(path)


#: Registered predictor slugs, in registration order.  The first five
#: match the pre-registry families; the zoo extends the tuple.
PREDICTORS: Tuple[str, ...] = registered_predictors()


def fit_predictor(name: str, series, **params) -> Predictor:
    """Build and fit a predictor by registry slug.

    Resolves ``name`` through the predictor registry
    (:mod:`repro.prediction.registry`): unknown slugs raise
    :class:`~repro.errors.ConfigurationError` listing what is
    registered, and ``params`` are validated against the predictor's
    declared parameters (e.g. ``period``/``n_periods``/``m_recent`` for
    SPAR, ``rank`` for mSSA) instead of being silently ignored.  Returns
    the fitted :class:`~repro.prediction.Predictor`; the oracle is
    constructed directly from ``series`` as its ground truth.
    """
    spec = get_predictor_spec(str(name).lower())
    if spec.needs_truth:
        if params:
            raise ConfigurationError(
                f"predictor {spec.name!r} takes no parameters "
                f"(got {sorted(params)})"
            )
        return spec.factory(series)
    return spec.build(**params).fit(series)


__all__ = [
    "PREDICTORS",
    "RunResult",
    "SweepResult",
    "fit_predictor",
    "load_trace",
    "run",
    "sweep",
]
