"""A single data partition: an in-memory row store plus access statistics.

Partitions are the unit of parallelism in H-Store: each owns a disjoint
slice of every table and executes its transactions serially.  Here a
partition stores rows in per-table dictionaries keyed by primary key and
tracks the counters the elasticity machinery needs — accesses (for load
monitoring and skew reporting) and resident data volume (for migration
chunk sizing).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Mapping, Optional

from ..errors import CatalogError, TransactionAbort
from .catalog import Schema


class Partition:
    """In-memory store for one partition's slice of the database."""

    def __init__(self, partition_id: int, schema: Schema):
        if partition_id < 0:
            raise CatalogError("partition_id must be >= 0")
        self.partition_id = partition_id
        self.schema = schema
        self._rows: Dict[str, Dict[Any, Dict[str, Any]]] = {
            table.name: {} for table in schema
        }
        #: Transactions executed against this partition (monitoring).
        self.access_count = 0
        #: Resident data volume in kB (approximate, via Table.avg_row_kb).
        self.data_kb = 0.0

    # ------------------------------------------------------------------
    # Row operations
    # ------------------------------------------------------------------

    def _table_rows(self, table_name: str) -> Dict[Any, Dict[str, Any]]:
        try:
            return self._rows[table_name]
        except KeyError:
            raise CatalogError(f"unknown table {table_name!r}") from None

    def insert(self, table_name: str, row: Mapping[str, Any]) -> None:
        """Insert a validated row; aborts if the primary key exists."""
        table = self.schema.table(table_name)
        normalised = table.validate_row(row)
        key = normalised[table.primary_key]
        rows = self._table_rows(table_name)
        if key in rows:
            raise TransactionAbort(
                f"duplicate primary key {key!r} in table {table_name!r}"
            )
        rows[key] = normalised
        self.data_kb += table.avg_row_kb

    def upsert(self, table_name: str, row: Mapping[str, Any]) -> bool:
        """Insert or overwrite; returns True if a new row was created."""
        table = self.schema.table(table_name)
        normalised = table.validate_row(row)
        key = normalised[table.primary_key]
        rows = self._table_rows(table_name)
        created = key not in rows
        rows[key] = normalised
        if created:
            self.data_kb += table.avg_row_kb
        return created

    def get(self, table_name: str, key: Any) -> Optional[Dict[str, Any]]:
        """Fetch a row by primary key, or None."""
        row = self._table_rows(table_name).get(key)
        return dict(row) if row is not None else None

    def require(self, table_name: str, key: Any) -> Dict[str, Any]:
        """Fetch a row by primary key; aborts the transaction if missing."""
        row = self._table_rows(table_name).get(key)
        if row is None:
            raise TransactionAbort(
                f"no row with key {key!r} in table {table_name!r}"
            )
        return dict(row)

    def update(self, table_name: str, key: Any, changes: Mapping[str, Any]) -> None:
        """Apply column changes to an existing row; aborts if missing."""
        table = self.schema.table(table_name)
        rows = self._table_rows(table_name)
        if key not in rows:
            raise TransactionAbort(
                f"no row with key {key!r} in table {table_name!r}"
            )
        merged = dict(rows[key])
        merged.update(changes)
        rows[key] = table.validate_row(merged)

    def delete(self, table_name: str, key: Any) -> bool:
        """Delete a row; returns True if it existed."""
        table = self.schema.table(table_name)
        rows = self._table_rows(table_name)
        if key in rows:
            del rows[key]
            self.data_kb = max(0.0, self.data_kb - table.avg_row_kb)
            return True
        return False

    # ------------------------------------------------------------------
    # Bulk operations used by migration
    # ------------------------------------------------------------------

    def extract_rows(
        self, table_name: str, keys
    ) -> Dict[Any, Dict[str, Any]]:
        """Remove and return the rows with the given keys (migration send)."""
        table = self.schema.table(table_name)
        rows = self._table_rows(table_name)
        out: Dict[Any, Dict[str, Any]] = {}
        for key in keys:
            row = rows.pop(key, None)
            if row is not None:
                out[key] = row
                self.data_kb = max(0.0, self.data_kb - table.avg_row_kb)
        return out

    def install_rows(
        self, table_name: str, rows: Mapping[Any, Mapping[str, Any]]
    ) -> None:
        """Install migrated rows (migration receive); overwrites silently."""
        table = self.schema.table(table_name)
        store = self._table_rows(table_name)
        for key, row in rows.items():
            if key not in store:
                self.data_kb += table.avg_row_kb
            store[key] = dict(row)

    def iter_keys(self, table_name: str) -> Iterator[Any]:
        return iter(list(self._table_rows(table_name).keys()))

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def record_access(self, n: int = 1) -> None:
        self.access_count += n

    def reset_stats(self) -> None:
        self.access_count = 0

    def row_count(self, table_name: Optional[str] = None) -> int:
        if table_name is not None:
            return len(self._table_rows(table_name))
        return sum(len(rows) for rows in self._rows.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Partition(id={self.partition_id}, rows={self.row_count()}, "
            f"data={self.data_kb:.0f}kB)"
        )
