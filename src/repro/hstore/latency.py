"""Latency recording and per-second percentile aggregation.

The paper's evaluation reports, per second of the experiment, the 50th,
95th and 99th percentile transaction latency, and counts an SLA violation
for every second in which a percentile exceeds 500 ms (Table 2).  The
:class:`LatencyRecorder` ingests individual (time, latency) samples from
the row-level executor, while :class:`PercentileSeries` holds per-second
percentile curves regardless of which engine produced them.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Iterable, List, Sequence

import numpy as np

from ..errors import SimulationError

#: The percentiles the paper tracks.
TRACKED_PERCENTILES = (50.0, 95.0, 99.0)


class PercentileSeries:
    """Per-second latency percentiles for one experiment run."""

    def __init__(
        self,
        seconds: Sequence[int],
        percentiles: Dict[float, np.ndarray],
        throughput: Sequence[float] = (),
    ):
        self.seconds = np.asarray(seconds, dtype=np.int64)
        self.percentiles = {q: np.asarray(v, dtype=float) for q, v in percentiles.items()}
        for q, values in self.percentiles.items():
            if values.size != self.seconds.size:
                raise SimulationError(
                    f"percentile {q} series length mismatch"
                )
        self.throughput = np.asarray(throughput, dtype=float)

    def series(self, q: float) -> np.ndarray:
        try:
            return self.percentiles[q]
        except KeyError:
            raise SimulationError(
                f"percentile {q} was not tracked ({sorted(self.percentiles)})"
            ) from None

    def violations(self, q: float, threshold_ms: float = 500.0) -> int:
        """Seconds in which percentile ``q`` exceeded ``threshold_ms``."""
        return int(np.sum(self.series(q) > threshold_ms))

    def violation_summary(
        self, threshold_ms: float = 500.0
    ) -> Dict[float, int]:
        return {
            q: self.violations(q, threshold_ms) for q in sorted(self.percentiles)
        }

    def top_fraction(self, q: float, fraction: float = 0.01) -> np.ndarray:
        """The worst ``fraction`` of the per-second percentile values.

        Figure 10 plots CDFs of the top 1% of each percentile series.
        """
        if not 0 < fraction <= 1:
            raise SimulationError("fraction must be in (0, 1]")
        values = np.sort(self.series(q))
        k = max(1, int(math.ceil(values.size * fraction)))
        return values[-k:]

    def __len__(self) -> int:
        return int(self.seconds.size)


class LatencyRecorder:
    """Accumulates raw latency samples into per-second percentiles."""

    def __init__(self, percentiles: Sequence[float] = TRACKED_PERCENTILES):
        if not percentiles:
            raise SimulationError("must track at least one percentile")
        self._percentiles = tuple(sorted(percentiles))
        self._samples: Dict[int, List[float]] = defaultdict(list)

    def record(self, time_seconds: float, latency_ms: float) -> None:
        if latency_ms < 0:
            raise SimulationError("latency cannot be negative")
        self._samples[int(time_seconds)].append(latency_ms)

    def record_many(
        self, time_seconds: float, latencies_ms: Iterable[float]
    ) -> None:
        second = int(time_seconds)
        bucket = self._samples[second]
        for latency in latencies_ms:
            if latency < 0:
                raise SimulationError("latency cannot be negative")
            bucket.append(latency)

    @property
    def n_samples(self) -> int:
        return sum(len(v) for v in self._samples.values())

    def finalize(self) -> PercentileSeries:
        """Collapse the recorded samples into a :class:`PercentileSeries`.

        Seconds with no samples are skipped (no transactions completed, so
        no percentile is defined for them).
        """
        if not self._samples:
            raise SimulationError("no latency samples recorded")
        seconds = sorted(self._samples)
        series: Dict[float, List[float]] = {q: [] for q in self._percentiles}
        throughput: List[float] = []
        for second in seconds:
            samples = np.asarray(self._samples[second])
            throughput.append(float(samples.size))
            for q in self._percentiles:
                series[q].append(float(np.percentile(samples, q)))
        return PercentileSeries(
            seconds,
            {q: np.asarray(v) for q, v in series.items()},
            throughput=throughput,
        )


def merge_percentile_series(parts: Sequence[PercentileSeries]) -> PercentileSeries:
    """Concatenate runs that cover consecutive time ranges."""
    if not parts:
        raise SimulationError("nothing to merge")
    seconds = np.concatenate([p.seconds for p in parts])
    qs = set(parts[0].percentiles)
    for p in parts[1:]:
        if set(p.percentiles) != qs:
            raise SimulationError("series track different percentiles")
    percentiles = {
        q: np.concatenate([p.series(q) for p in parts]) for q in qs
    }
    throughput = (
        np.concatenate([p.throughput for p in parts])
        if all(p.throughput.size for p in parts)
        else np.array([])
    )
    return PercentileSeries(seconds, percentiles, throughput)
