"""MurmurHash3 (32-bit, x86) for partitioning keys.

The paper hashes B2W's cart/checkout keys with MurmurHash 2.0 and finds
the resulting partition-level access and data skew negligible (Sec. 8.1).
We implement Murmur3-32 — same family, same statistical behaviour — in
pure Python, plus helpers to map arbitrary keys onto hash buckets.
"""

from __future__ import annotations

from typing import Union

_MASK32 = 0xFFFFFFFF

Key = Union[str, bytes, int]


def _rotl32(x: int, r: int) -> int:
    return ((x << r) | (x >> (32 - r))) & _MASK32


def murmur3_32(data: bytes, seed: int = 0) -> int:
    """MurmurHash3 x86 32-bit of ``data`` with the given ``seed``."""
    c1, c2 = 0xCC9E2D51, 0x1B873593
    h = seed & _MASK32
    length = len(data)
    rounded = length & ~0x3

    for i in range(0, rounded, 4):
        k = int.from_bytes(data[i : i + 4], "little")
        k = (k * c1) & _MASK32
        k = _rotl32(k, 15)
        k = (k * c2) & _MASK32
        h ^= k
        h = _rotl32(h, 13)
        h = (h * 5 + 0xE6546B64) & _MASK32

    # Tail.
    k = 0
    tail = data[rounded:]
    if len(tail) >= 3:
        k ^= tail[2] << 16
    if len(tail) >= 2:
        k ^= tail[1] << 8
    if len(tail) >= 1:
        k ^= tail[0]
        k = (k * c1) & _MASK32
        k = _rotl32(k, 15)
        k = (k * c2) & _MASK32
        h ^= k

    # Finalisation mix.
    h ^= length
    h ^= h >> 16
    h = (h * 0x85EBCA6B) & _MASK32
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & _MASK32
    h ^= h >> 16
    return h


def key_bytes(key: Key) -> bytes:
    """Canonical byte encoding of a partitioning key."""
    if isinstance(key, bytes):
        return key
    if isinstance(key, str):
        return key.encode("utf-8")
    if isinstance(key, int):
        # Fixed-width little-endian so ints hash stably across runs.
        return key.to_bytes(8, "little", signed=True)
    raise TypeError(f"unhashable partitioning key type: {type(key).__name__}")


def hash_key(key: Key, seed: int = 0) -> int:
    """32-bit Murmur3 hash of a partitioning key."""
    return murmur3_32(key_bytes(key), seed)


def bucket_for_key(key: Key, n_buckets: int, seed: int = 0) -> int:
    """Map a key onto one of ``n_buckets`` hash buckets."""
    if n_buckets < 1:
        raise ValueError(f"n_buckets must be >= 1 (got {n_buckets})")
    return hash_key(key, seed) % n_buckets
