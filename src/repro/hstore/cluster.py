"""The shared-nothing cluster: nodes, partitions, plan, and routing.

Data placement follows the E-Store/Squall design: the hash space of each
partitioning key is divided into a fixed number of fine-grained *buckets*
(virtual partitions), and a :class:`PartitionPlan` maps every bucket to a
physical partition.  Reconfiguration means re-mapping buckets and moving
their rows; routing a transaction means hashing its partitioning key to a
bucket and looking up the owning partition.

The cluster can grow (``add_nodes``) and shrink (``remove_nodes``); the
Squall-like migrator in :mod:`repro.squall` produces and executes the
bucket moves needed to rebalance around such changes.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import CatalogError, RoutingError
from .catalog import Schema
from .hashing import bucket_for_key
from .node import Node
from .partition import Partition

#: Default number of hash buckets (fine-grained migration granules).
DEFAULT_BUCKETS = 1024


class PartitionPlan:
    """Mapping from hash bucket to physical partition id."""

    def __init__(self, assignment: Sequence[int]):
        if len(assignment) == 0:
            raise CatalogError("partition plan must cover at least one bucket")
        self._assignment = np.asarray(assignment, dtype=np.int64).copy()
        if np.any(self._assignment < 0):
            raise CatalogError("partition ids must be >= 0")

    @classmethod
    def round_robin(
        cls, n_buckets: int, partition_ids: Sequence[int]
    ) -> "PartitionPlan":
        """Spread buckets evenly over the given partitions, round-robin."""
        if not partition_ids:
            raise CatalogError("need at least one partition")
        ids = np.asarray(sorted(partition_ids), dtype=np.int64)
        return cls(ids[np.arange(n_buckets) % len(ids)])

    @property
    def n_buckets(self) -> int:
        return int(self._assignment.size)

    def owner(self, bucket: int) -> int:
        if not 0 <= bucket < self.n_buckets:
            raise RoutingError(f"bucket {bucket} out of range")
        return int(self._assignment[bucket])

    def buckets_of(self, partition_id: int) -> List[int]:
        return [int(b) for b in np.nonzero(self._assignment == partition_id)[0]]

    @property
    def partition_ids(self) -> List[int]:
        return [int(p) for p in np.unique(self._assignment)]

    def counts(self) -> Dict[int, int]:
        """Buckets per partition."""
        ids, counts = np.unique(self._assignment, return_counts=True)
        return {int(i): int(c) for i, c in zip(ids, counts)}

    def with_move(self, bucket: int, new_partition: int) -> "PartitionPlan":
        """Functional single-bucket move (used by tests)."""
        updated = self._assignment.copy()
        updated[bucket] = new_partition
        return PartitionPlan(updated)

    def assignment_array(self) -> np.ndarray:
        return self._assignment.copy()

    def diff(self, target: "PartitionPlan") -> List[Tuple[int, int, int]]:
        """Buckets that change owner: list of (bucket, source, destination)."""
        if target.n_buckets != self.n_buckets:
            raise CatalogError("plans cover different bucket counts")
        moved = np.nonzero(self._assignment != target._assignment)[0]
        return [
            (int(b), int(self._assignment[b]), int(target._assignment[b]))
            for b in moved
        ]

    def __eq__(self, other) -> bool:
        if not isinstance(other, PartitionPlan):
            return NotImplemented
        return np.array_equal(self._assignment, other._assignment)


class Cluster:
    """A set of nodes hosting partitions, with bucket-level routing.

    All DML goes through the cluster so it can maintain the per-bucket key
    index that migration relies on.
    """

    def __init__(
        self,
        schema: Schema,
        n_nodes: int,
        partitions_per_node: int = 6,
        n_buckets: int = DEFAULT_BUCKETS,
        hash_seed: int = 0,
    ):
        if n_nodes < 1:
            raise CatalogError("cluster needs at least one node")
        if partitions_per_node < 1:
            raise CatalogError("partitions_per_node must be >= 1")
        if n_buckets < partitions_per_node * n_nodes:
            raise CatalogError(
                "need at least one bucket per partition "
                f"({n_buckets} buckets < {partitions_per_node * n_nodes} partitions)"
            )
        self.schema = schema
        self.partitions_per_node = partitions_per_node
        self.n_buckets = n_buckets
        self.hash_seed = hash_seed
        self._partitions: Dict[int, Partition] = {}
        self._nodes: Dict[int, Node] = {}
        self._next_node_id = 0
        self._next_partition_id = 0
        for _ in range(n_nodes):
            self._create_node()
        self.plan = PartitionPlan.round_robin(
            n_buckets, list(self._partitions.keys())
        )
        # bucket -> table -> set of primary keys resident in that bucket.
        self._bucket_keys: Dict[int, Dict[str, Set[Any]]] = {
            b: {t.name: set() for t in schema} for b in range(n_buckets)
        }
        # Per-bucket transaction counters (hot-bucket detection).
        self._bucket_accesses = np.zeros(n_buckets, dtype=np.int64)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def _create_node(self) -> Node:
        partitions = []
        for _ in range(self.partitions_per_node):
            partition = Partition(self._next_partition_id, self.schema)
            self._partitions[partition.partition_id] = partition
            partitions.append(partition)
            self._next_partition_id += 1
        node = Node(self._next_node_id, partitions)
        self._nodes[node.node_id] = node
        self._next_node_id += 1
        return node

    @property
    def nodes(self) -> List[Node]:
        return [self._nodes[nid] for nid in sorted(self._nodes) if self._nodes[nid].active]

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def partition_ids(self) -> List[int]:
        """Partitions on active nodes."""
        out: List[int] = []
        for node in self.nodes:
            out.extend(node.partition_ids)
        return sorted(out)

    def partition(self, partition_id: int) -> Partition:
        try:
            return self._partitions[partition_id]
        except KeyError:
            raise CatalogError(f"unknown partition {partition_id}") from None

    def node_of_partition(self, partition_id: int) -> Node:
        for node in self._nodes.values():
            if node.hosts(partition_id):
                return node
        raise CatalogError(f"partition {partition_id} is not hosted anywhere")

    def add_nodes(self, count: int) -> List[Node]:
        """Provision ``count`` new (empty) nodes; routing is unchanged
        until a reconfiguration assigns buckets to their partitions."""
        if count < 1:
            raise CatalogError("count must be >= 1")
        return [self._create_node() for _ in range(count)]

    def remove_nodes(self, node_ids: Iterable[int]) -> None:
        """Decommission nodes; they must have been drained of buckets."""
        for node_id in node_ids:
            node = self._nodes.get(node_id)
            if node is None or not node.active:
                raise CatalogError(f"no active node {node_id}")
            for pid in node.partition_ids:
                if self.plan.buckets_of(pid):
                    raise CatalogError(
                        f"node {node_id} still owns buckets on partition {pid}; "
                        "drain it before removal"
                    )
            node.active = False

    def fail_node(self, node_id: int) -> Dict[str, Any]:
        """Kill a node and recover its buckets onto the survivors.

        Models crash recovery from replicas: every bucket owned by the
        dead node is immediately re-homed round-robin across the
        surviving partitions (rows included, so no data is lost), and the
        node is marked failed.  Returns a summary for logging/telemetry:
        ``{"node": id, "buckets_moved": n, "kb_recovered": kB,
        "survivors": n_nodes}``.
        """
        node = self._nodes.get(node_id)
        if node is None or not node.active:
            raise CatalogError(f"no active node {node_id}")
        survivors = [n for n in self.nodes if n.node_id != node_id]
        if not survivors:
            raise CatalogError(
                f"cannot fail node {node_id}: it is the last active node"
            )
        target_partitions: List[int] = []
        for survivor in survivors:
            target_partitions.extend(survivor.partition_ids)
        target_partitions.sort()
        buckets_moved = 0
        kb_recovered = 0.0
        for pid in node.partition_ids:
            for bucket in self.plan.buckets_of(pid):
                dest = target_partitions[buckets_moved % len(target_partitions)]
                kb_recovered += self.move_bucket(bucket, dest)
                buckets_moved += 1
        node.mark_failed()
        return {
            "node": node_id,
            "buckets_moved": buckets_moved,
            "kb_recovered": kb_recovered,
            "survivors": len(survivors),
        }

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def bucket_of(self, key: Any) -> int:
        return bucket_for_key(key, self.n_buckets, self.hash_seed)

    def route(self, key: Any) -> Partition:
        """The partition currently owning ``key``'s bucket."""
        return self.partition(self.plan.owner(self.bucket_of(key)))

    def record_bucket_access(self, bucket: int, n: int = 1) -> None:
        """Count a transaction against a bucket (hot-bucket detection)."""
        if not 0 <= bucket < self.n_buckets:
            raise RoutingError(f"bucket {bucket} out of range")
        self._bucket_accesses[bucket] += n

    def bucket_access_counts(self) -> np.ndarray:
        """Per-bucket transaction counts since the last reset."""
        return self._bucket_accesses.copy()

    def reset_bucket_accesses(self) -> None:
        self._bucket_accesses[:] = 0

    # ------------------------------------------------------------------
    # DML (maintains the bucket index)
    # ------------------------------------------------------------------

    def _partition_and_bucket(self, table_name: str, part_key: Any):
        bucket = self.bucket_of(part_key)
        return self.partition(self.plan.owner(bucket)), bucket

    def insert(self, table_name: str, row: Mapping[str, Any]) -> None:
        table = self.schema.table(table_name)
        part_key = row.get(table.partition_key)
        if part_key is None:
            raise RoutingError(
                f"row for {table_name!r} is missing partition key "
                f"{table.partition_key!r}"
            )
        partition, bucket = self._partition_and_bucket(table_name, part_key)
        partition.insert(table_name, row)
        self._bucket_keys[bucket][table_name].add(row[table.primary_key])

    def upsert(self, table_name: str, row: Mapping[str, Any]) -> bool:
        table = self.schema.table(table_name)
        part_key = row.get(table.partition_key)
        if part_key is None:
            raise RoutingError(
                f"row for {table_name!r} is missing partition key "
                f"{table.partition_key!r}"
            )
        partition, bucket = self._partition_and_bucket(table_name, part_key)
        created = partition.upsert(table_name, row)
        self._bucket_keys[bucket][table_name].add(row[table.primary_key])
        return created

    def get(self, table_name: str, key: Any) -> Optional[Dict[str, Any]]:
        partition, _ = self._partition_and_bucket(table_name, key)
        return partition.get(table_name, key)

    def update(self, table_name: str, key: Any, changes: Mapping[str, Any]) -> None:
        partition, _ = self._partition_and_bucket(table_name, key)
        partition.update(table_name, key, changes)

    def delete(self, table_name: str, key: Any) -> bool:
        partition, bucket = self._partition_and_bucket(table_name, key)
        existed = partition.delete(table_name, key)
        if existed:
            self._bucket_keys[bucket][table_name].discard(key)
        return existed

    # ------------------------------------------------------------------
    # Migration support
    # ------------------------------------------------------------------

    def bucket_data_kb(self, bucket: int) -> float:
        """Approximate resident data volume of one bucket."""
        total = 0.0
        for table in self.schema:
            total += len(self._bucket_keys[bucket][table.name]) * table.avg_row_kb
        return total

    def move_bucket(self, bucket: int, destination_partition: int) -> float:
        """Atomically move one bucket's rows; returns the kB moved.

        This is the primitive the Squall-like migrator drives; in the real
        system a bucket would move in multiple chunks, which the migrator
        models in simulated time before committing the move here.
        """
        source_id = self.plan.owner(bucket)
        if source_id == destination_partition:
            return 0.0
        if destination_partition not in self._partitions:
            raise CatalogError(f"unknown partition {destination_partition}")
        source = self.partition(source_id)
        destination = self.partition(destination_partition)
        moved_kb = 0.0
        for table in self.schema:
            keys = self._bucket_keys[bucket][table.name]
            rows = source.extract_rows(table.name, keys)
            destination.install_rows(table.name, rows)
            moved_kb += len(rows) * table.avg_row_kb
        self.plan = self.plan.with_move(bucket, destination_partition)
        return moved_kb

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    @property
    def total_data_kb(self) -> float:
        return sum(p.data_kb for p in self._partitions.values())

    def data_fractions_by_node(self) -> Dict[int, float]:
        """Fraction of the database resident on each active node."""
        total = self.total_data_kb
        if total <= 0:
            share = 1.0 / max(1, self.n_nodes)
            return {node.node_id: share for node in self.nodes}
        return {node.node_id: node.data_kb / total for node in self.nodes}

    def bucket_fractions_by_node(self) -> Dict[int, float]:
        """Fraction of hash buckets owned by each active node.

        With a uniform workload, a node's bucket fraction approximates
        both its data fraction and its load fraction — this drives the
        effective-capacity computation during migrations.
        """
        counts = self.plan.counts()
        out: Dict[int, float] = {}
        for node in self.nodes:
            owned = sum(counts.get(pid, 0) for pid in node.partition_ids)
            out[node.node_id] = owned / self.n_buckets
        return out

    def access_skew(self) -> Tuple[float, float]:
        """(max-over-mean excess, std-over-mean) of partition accesses.

        Sec. 8.1 reports the hottest partition at +10.15% over the mean
        with a standard deviation of 2.62% for the B2W workload.
        """
        counts = np.array(
            [self.partition(pid).access_count for pid in self.partition_ids],
            dtype=float,
        )
        mean = counts.mean()
        if mean <= 0:
            return 0.0, 0.0
        return float(counts.max() / mean - 1.0), float(counts.std() / mean)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Cluster(nodes={self.n_nodes}, partitions={len(self.partition_ids)}, "
            f"buckets={self.n_buckets}, data={self.total_data_kb:.0f}kB)"
        )
