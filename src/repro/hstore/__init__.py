"""H-Store-like partitioned main-memory DBMS substrate.

A faithful simulation of the parts of H-Store that P-Store's algorithms
interact with: a schema catalog, hash-partitioned in-memory row stores
grouped into partitions and nodes, bucket-based routing with an explicit
partition plan, stored-procedure transactions, and two execution engines
(row-level and analytic queueing).
"""

from .catalog import Column, Schema, Table
from .cluster import DEFAULT_BUCKETS, Cluster, PartitionPlan
from .engine import (
    CPU_SECONDS_PER_KB,
    DEFAULT_MU_PARTITION,
    MigrationInterference,
    QueueingEngine,
    TickStats,
    TransactionExecutor,
)
from .hashing import bucket_for_key, hash_key, murmur3_32
from .latency import (
    TRACKED_PERCENTILES,
    LatencyRecorder,
    PercentileSeries,
    merge_percentile_series,
)
from .monitor import LoadMonitor, SkewMonitor, SkewReport
from .node import Node
from .partition import Partition
from .txn import StoredProcedure, Transaction, TxnContext, TxnResult

__all__ = [
    "CPU_SECONDS_PER_KB",
    "Cluster",
    "Column",
    "DEFAULT_BUCKETS",
    "DEFAULT_MU_PARTITION",
    "LatencyRecorder",
    "LoadMonitor",
    "MigrationInterference",
    "Node",
    "Partition",
    "PartitionPlan",
    "PercentileSeries",
    "QueueingEngine",
    "Schema",
    "SkewMonitor",
    "SkewReport",
    "StoredProcedure",
    "Table",
    "TickStats",
    "TRACKED_PERCENTILES",
    "Transaction",
    "TransactionExecutor",
    "TxnContext",
    "TxnResult",
    "bucket_for_key",
    "hash_key",
    "merge_percentile_series",
    "murmur3_32",
]
