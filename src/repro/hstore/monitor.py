"""System monitoring: aggregate-load measurement and skew detection.

The Predictive Controller "uses H-Store's system calls to obtain
measurements of the aggregate load of the system" (Sec. 6), sampled into
fixed planner intervals.  :class:`LoadMonitor` provides that windowing:
transaction arrivals (or completed counts) stream in with timestamps and
come out as one aggregate rate per interval.

:class:`SkewMonitor` implements the E-Store-style two-level scheme the
paper builds on (Sec. 2): cheap continuous per-partition counters, plus
an on-demand detailed report that identifies hot partitions — which is
how a reactive system (or a future skew-aware P-Store, see the paper's
conclusion) would decide *what* to move rather than just *how many*
machines to use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..errors import SimulationError
from ..telemetry import get_telemetry
from .cluster import Cluster


class LoadMonitor:
    """Aggregates a stream of transaction counts into interval rates.

    When telemetry is enabled, every counted interval is published as a
    ``monitor.window`` span plus an ``interval`` event (both in
    simulated time), runs of *empty* intervals are batched into a single
    ``monitor.gap`` span and ``interval.gap`` event (O(1) per
    observation, not O(gap)), and the latest rate is mirrored to the
    ``monitor.load_tps`` gauge.

    Interval boundaries are derived as ``start_time + k *
    interval_seconds`` rather than by repeated addition, so they stay
    exact over arbitrarily long runs (repeated ``+=`` accumulates one
    rounding error per interval).
    """

    def __init__(self, interval_seconds: float, start_time: float = 0.0,
                 telemetry=None, min_elapsed_fraction: float = 0.05):
        if interval_seconds <= 0:
            raise SimulationError("interval_seconds must be positive")
        if not 0.0 <= min_elapsed_fraction <= 1.0:
            raise SimulationError("min_elapsed_fraction must be in [0, 1]")
        self.interval_seconds = interval_seconds
        #: Floor (as a fraction of the interval) on the elapsed time used
        #: by :meth:`current_rate_estimate`, so a burst right after a
        #: boundary cannot divide by near-zero and report absurd rates.
        self.min_elapsed_fraction = min_elapsed_fraction
        self._origin = start_time
        self._closed = 0
        self._current_count = 0.0
        self._rates: List[float] = []
        self._telemetry = telemetry if telemetry is not None else get_telemetry()

    @property
    def completed_intervals(self) -> int:
        return len(self._rates)

    def _boundary(self, k: int) -> float:
        """Exact start of interval ``k``: origin + k * interval."""
        return self._origin + k * self.interval_seconds

    @property
    def _interval_start(self) -> float:
        """Start of the open interval (derived, never accumulated)."""
        return self._boundary(self._closed)

    def _interval_index(self, timestamp: float) -> int:
        """Index of the interval containing ``timestamp``.

        ``floor`` on the quotient can misplace timestamps that sit on a
        boundary the float grid cannot represent exactly (0.1-second
        intervals, say); the correction loops pin the result to the
        canonical ``origin + k * interval`` boundaries.
        """
        k = int((timestamp - self._origin) // self.interval_seconds)
        while self._boundary(k + 1) <= timestamp:
            k += 1
        while self._boundary(k) > timestamp:
            k -= 1
        return k

    def record(self, timestamp: float, count: float = 1.0) -> int:
        """Record ``count`` transactions at ``timestamp``.

        Returns the number of intervals closed by this observation (0 in
        the common case; >= 1 when the timestamp crosses a boundary, in
        which case intervening empty intervals are appended as zero load
        and reported through one batched telemetry emission).
        """
        if count < 0:
            raise SimulationError("count must be non-negative")
        if timestamp < self._interval_start:
            raise SimulationError(
                f"timestamp {timestamp} is before the open interval "
                f"starting at {self._interval_start}"
            )
        closed = self._interval_index(timestamp) - self._closed
        if closed > 0:
            tel = self._telemetry
            # Close the open interval with whatever it counted...
            rate = self._current_count / self.interval_seconds
            start = self._interval_start
            self._rates.append(rate)
            if tel.enabled:
                slot = len(self._rates) - 1
                end = self._boundary(self._closed + 1)
                tel.tracer.record(
                    "monitor.window", start, end, slot=slot, tps=rate,
                )
                tel.events.emit("interval", time=end, slot=slot, tps=rate)
                tel.metrics.gauge("monitor.load_tps").set(rate)
                tel.accuracy.observe(slot, rate, time=end)
            # ...then batch the run of empty intervals behind it.
            gap = closed - 1
            if gap:
                first_empty = len(self._rates)
                self._rates.extend([0.0] * gap)
                if tel.enabled:
                    gap_start = self._boundary(self._closed + 1)
                    gap_end = self._boundary(self._closed + closed)
                    tel.tracer.record(
                        "monitor.gap", gap_start, gap_end,
                        first_slot=first_empty, intervals=gap,
                    )
                    tel.events.emit(
                        "interval.gap", time=gap_end,
                        first_slot=first_empty, intervals=gap, tps=0.0,
                    )
                    tel.metrics.gauge("monitor.load_tps").set(0.0)
                    for i in range(gap):
                        tel.accuracy.observe(
                            first_empty + i, 0.0,
                            time=self._boundary(self._closed + 2 + i),
                        )
            if tel.enabled:
                tel.metrics.counter("monitor.intervals_closed").inc(closed)
            self._current_count = 0.0
            self._closed += closed
        else:
            closed = 0
        self._current_count += count
        return closed

    def history_tps(self) -> np.ndarray:
        """Aggregate rate (txn/s) of every *closed* interval."""
        return np.asarray(self._rates)

    # ------------------------------------------------------------------
    # Checkpointing (``pstore serve --resume``)
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-serialisable snapshot of the windowing state."""
        return {
            "interval_seconds": self.interval_seconds,
            "origin": self._origin,
            "closed": self._closed,
            "current_count": self._current_count,
            "rates": list(self._rates),
        }

    def restore_state(self, doc: dict) -> None:
        """Rebuild from :meth:`state_dict` output.

        Restored intervals are *not* re-emitted through telemetry (no
        duplicate ``interval`` events, no accuracy re-harvest); only
        intervals closed after the restore produce new emissions.
        """
        if float(doc["interval_seconds"]) != self.interval_seconds:
            raise SimulationError(
                f"checkpointed interval {doc['interval_seconds']}s does not "
                f"match the configured {self.interval_seconds}s"
            )
        self._origin = float(doc.get("origin", 0.0))
        self._closed = int(doc["closed"])
        self._current_count = float(doc.get("current_count", 0.0))
        self._rates = [float(v) for v in doc.get("rates", [])]

    def current_rate_estimate(self, now: float) -> float:
        """Rate of the open interval so far (0 if it just opened).

        The divisor is floored at ``min_elapsed_fraction`` of the
        interval: without it, a handful of transactions arriving moments
        after a boundary divide by near-zero and feed absurd rate spikes
        into the reactive strategy.
        """
        elapsed = now - self._interval_start
        if elapsed <= 0:
            return 0.0
        floor = self.min_elapsed_fraction * self.interval_seconds
        return self._current_count / max(elapsed, floor)


@dataclass(frozen=True)
class SkewReport:
    """Detailed monitoring output (the E-Store "phase 2" report)."""

    total_accesses: int
    per_partition: Dict[int, int]
    mean: float
    #: Partition id with the most accesses, or -1 when there was no
    #: traffic at all (zero mean).
    hottest_partition: int
    hottest_excess: float      # hottest / mean - 1
    std_over_mean: float

    @property
    def is_balanced(self) -> bool:
        """Sec. 8.1's criterion: B2W's skew (~10% excess, ~2.6% std) is
        "not even close" to the 40%+ that would warrant tuple-level
        reorganisation."""
        return self.hottest_excess < 0.40


class SkewMonitor:
    """Two-level partition-skew monitoring over a row-level cluster."""

    def __init__(self, cluster: Cluster, imbalance_threshold: float = 0.25):
        if imbalance_threshold <= 0:
            raise SimulationError("imbalance_threshold must be positive")
        self.cluster = cluster
        self.imbalance_threshold = imbalance_threshold

    def snapshot(self) -> SkewReport:
        """Read the cheap per-partition counters and summarise them."""
        counts = {
            pid: self.cluster.partition(pid).access_count
            for pid in self.cluster.partition_ids
        }
        values = np.array(list(counts.values()), dtype=float)
        total = int(values.sum())
        mean = float(values.mean()) if values.size else 0.0
        if mean <= 0:
            # No traffic: there is no "hottest" partition.  Returning an
            # arbitrary partition id here (the old min(counts)) made
            # zero-traffic reports indistinguishable from a real hot
            # partition 0; -1 is the documented "none" sentinel.
            return SkewReport(
                total_accesses=total,
                per_partition=counts,
                mean=0.0,
                hottest_partition=-1,
                hottest_excess=0.0,
                std_over_mean=0.0,
            )
        hottest = max(counts, key=counts.get)
        return SkewReport(
            total_accesses=total,
            per_partition=counts,
            mean=mean,
            hottest_partition=hottest,
            hottest_excess=counts[hottest] / mean - 1.0,
            std_over_mean=float(values.std() / mean),
        )

    def imbalance_detected(self) -> bool:
        """The cheap continuous check that would trigger detailed
        monitoring in E-Store."""
        return self.snapshot().hottest_excess > self.imbalance_threshold

    def reset(self) -> None:
        for pid in self.cluster.partition_ids:
            self.cluster.partition(pid).reset_stats()
